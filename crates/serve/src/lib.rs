//! Simulation-as-a-service for the spindle toolkit.
//!
//! `spindle serve` promotes the read-only pulse telemetry endpoint
//! into a long-lived job service: clients `POST /jobs` a JSON spec
//! naming one of the existing CLI verbs (simulate / analyze /
//! generate / observe / matrix), the daemon validates it, admits it
//! into a bounded FIFO queue (HTTP 429 + `Retry-After` when full),
//! and executes it with a configurable job-level parallelism cap.
//!
//! Each accepted job gets a deterministic id (`job-0001`, ...) and a
//! per-job artifact directory holding `spec.json`, the captured
//! `stdout.txt` / `stderr.txt`, `result.json`, and whatever the spec
//! asked for (`metrics.json`, `trace.json`, `timescales.json`).
//! Because a spec maps onto the exact argv the CLI would receive, a
//! job's `stdout.txt` is byte-identical to running the same verb
//! directly.
//!
//! Jobs execute as child processes of the daemon: the `spindle`
//! binary itself for CLI verbs, the sibling `experiments` binary for
//! matrix jobs. That buys three guarantees at once — captured stdout
//! is exactly the CLI's, cancellation is a kill, and a job that
//! panics (e.g. under `--faults panic@N`, quarantined by the engine's
//! `try_map` path inside the child) burns down only its own process:
//! the job is reported `failed` and the daemon keeps serving.
//!
//! Every admission and completion is fsynced to a journal
//! (`journal.jsonl`) before the daemon acts on it, so a SIGKILLed
//! daemon restarted with `--resume-dir` re-adopts the jobs that still
//! owe work and replays finished ones as history. Execution is
//! at-least-once: a job killed mid-run re-runs from scratch on
//! resume, and because jobs are deterministic the second attempt's
//! artifacts are byte-identical to what the first would have written.
//!
//! A supervision layer hardens the lifecycle: per-job deadlines and a
//! telemetry-liveness watchdog kill hung children (`timed_out` /
//! `stalled`), transient failures retry with deterministic exponential
//! backoff (each attempt journaled, so resume replays the history),
//! specs that burn every attempt are `quarantined` behind a circuit
//! breaker that fast-rejects identical resubmissions, and
//! [`ServeHandle::drain`] turns SIGTERM into a graceful handoff:
//! admission answers 503 + `Retry-After`, running jobs get a grace
//! period, and whatever is still unfinished is left for the next
//! `--resume-dir` daemon with no terminal journal record.
//!
//! The [`loadtest`] module drives hundreds of concurrent clients
//! against a live server and reports submit-latency percentiles,
//! throughput, and rejection counts; the [`chaos`] module injects
//! seeded faults (kills, hangs, stalls, poison specs, drain) and
//! asserts every admitted job still reaches exactly one terminal
//! state that the journal explains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod client;
pub mod job;
pub mod journal;
pub mod loadtest;
pub mod queue;
mod runner;
mod server;
pub mod spec;
mod supervise;
mod telemetry;
pub mod trace;

use crate::job::{Job, JobState, JobTable};
use crate::journal::{Journal, JOURNAL_FILE};
use crate::queue::{JobQueue, PushError};
use crate::spec::{JobSpec, SpecError};
use spindle_obs::json::Json;
use spindle_obs::MetricsRegistry;
use spindle_pulse::{RunStatus, Sampler};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default bind address for the job service (one above the pulse
/// telemetry default, so a job daemon and a `--serve` run coexist).
pub const DEFAULT_ADDR: &str = "127.0.0.1:9185";

/// Default queue bound when `--queue-bound` is not given.
pub const DEFAULT_QUEUE_BOUND: usize = 16;

/// Default job-level parallelism when `--parallel` is not given.
pub const DEFAULT_PARALLEL: usize = 2;

/// Upper bound on `Retry-After` seconds advertised on a 429.
const MAX_RETRY_AFTER_SECS: u64 = 60;

/// Starting estimate of a job's wall time, until completions feed the
/// EWMA that drives `Retry-After`.
const DEFAULT_JOB_MS: u64 = 1000;

/// Default ceiling on any job deadline: one day.
pub const DEFAULT_MAX_DEADLINE_SECS: u64 = 86_400;

/// Default stall timeout (`--stall-timeout 0` disables).
pub const DEFAULT_STALL_TIMEOUT_SECS: u64 = 60;

/// Default retry budget for transient failures.
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Default base backoff between retry attempts.
pub const DEFAULT_RETRY_BASE_MS: u64 = 500;

/// Default poison-breaker cooldown.
pub const DEFAULT_BREAKER_COOLDOWN_SECS: u64 = 60;

/// Configuration for a serve daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` asks the OS for a free port).
    pub addr: String,
    /// Admission bound on the queued-job count.
    pub queue_bound: usize,
    /// How many jobs may execute concurrently.
    pub parallel: usize,
    /// Root directory for the journal and per-job artifact dirs.
    pub dir: PathBuf,
    /// Whether an existing journal in `dir` should be re-adopted
    /// (`--resume-dir`) rather than treated as an error.
    pub resume: bool,
    /// The `spindle` binary jobs run on (defaults to the current
    /// executable).
    pub spindle_bin: PathBuf,
    /// The `experiments` binary for matrix jobs; `None` rejects
    /// matrix specs at admission.
    pub experiments_bin: Option<PathBuf>,
    /// Capacity of each job's bounded event ring (the
    /// `GET /jobs/ID/events` buffer). A consumer that falls behind
    /// loses the oldest events, with the exact count reported in-band.
    pub event_ring_cap: usize,
    /// Runner heartbeat cadence in milliseconds: lifecycle events
    /// pushed while a child runs, so even children that never speak
    /// the telemetry protocol produce a live event stream.
    pub heartbeat_ms: u64,
    /// Deadline applied to jobs whose spec carries no `deadline_secs`
    /// of its own (`None` means no default: such jobs may run until
    /// they finish or stall).
    pub default_deadline_secs: Option<u64>,
    /// Ceiling clamped onto every deadline, spec-supplied or default.
    pub max_deadline_secs: u64,
    /// Kill a child whose telemetry frames go silent for this long
    /// (`None` disables stall detection). Only children that spoke the
    /// frame protocol at least once are eligible — silence from a mute
    /// child means nothing.
    pub stall_timeout_secs: Option<u64>,
    /// Retry budget for transient failures (killed child, stalled
    /// telemetry): a job gets `1 + max_retries` attempts in total.
    pub max_retries: u32,
    /// Base retry backoff in milliseconds; attempt `n` waits
    /// `base * 2^n` plus deterministic per-job jitter.
    pub retry_base_ms: u64,
    /// How long a poison spec's circuit breaker stays open before it
    /// half-opens and admits one real attempt again.
    pub breaker_cooldown_secs: u64,
}

impl ServeConfig {
    /// A config with defaults: current executable as the job binary,
    /// a sibling `experiments` binary when one exists.
    #[must_use]
    pub fn new(addr: &str, dir: impl Into<PathBuf>) -> ServeConfig {
        let spindle_bin = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("spindle"));
        let experiments_bin = spindle_bin
            .parent()
            .map(|p| p.join("experiments"))
            .filter(|p| p.is_file());
        ServeConfig {
            addr: addr.to_owned(),
            queue_bound: DEFAULT_QUEUE_BOUND,
            parallel: DEFAULT_PARALLEL,
            dir: dir.into(),
            resume: false,
            spindle_bin,
            experiments_bin,
            event_ring_cap: telemetry::DEFAULT_EVENT_RING_CAP,
            heartbeat_ms: telemetry::DEFAULT_HEARTBEAT_MS,
            default_deadline_secs: None,
            max_deadline_secs: DEFAULT_MAX_DEADLINE_SECS,
            stall_timeout_secs: Some(DEFAULT_STALL_TIMEOUT_SECS),
            max_retries: DEFAULT_MAX_RETRIES,
            retry_base_ms: DEFAULT_RETRY_BASE_MS,
            breaker_cooldown_secs: DEFAULT_BREAKER_COOLDOWN_SECS,
        }
    }
}

/// The verdict of an admission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Accepted under `id`; the job is queued.
    Accepted(String),
    /// Queue full: advertise `Retry-After`.
    Full {
        /// Seconds the client should wait before retrying.
        retry_after_secs: u64,
        /// Queue depth at rejection time.
        queued: usize,
    },
    /// The daemon is draining: no new work is admitted.
    Draining {
        /// Seconds the client should wait before retrying (against
        /// whatever daemon replaces this one).
        retry_after_secs: u64,
    },
    /// The spec matches an open poison-circuit breaker.
    Poisoned {
        /// Why the breaker opened (the quarantined twin's error).
        reason: String,
        /// Seconds until the breaker half-opens.
        retry_after_secs: u64,
    },
}

/// Shared daemon state: queue, table, journal, metrics, status.
pub(crate) struct Shared {
    pub config: ServeConfig,
    /// The advertised admission bound. The queue's own capacity can be
    /// larger after a resume (re-adopted jobs bypass admission), so
    /// `admit` checks depth against this, not [`JobQueue::bound`].
    pub admission_bound: usize,
    pub queue: JobQueue,
    pub table: JobTable,
    journal: Mutex<Journal>,
    /// Serializes id allocation + journal append + enqueue so journal
    /// order equals queue order.
    admission: Mutex<u64>,
    pub registry: &'static MetricsRegistry,
    pub status: Arc<RunStatus>,
    pub sampler: Arc<Sampler>,
    pub rollups: Arc<spindle_obs::RollupSet>,
    /// Per-job telemetry: rebuilt rollup wheels, event rings, progress.
    pub telemetry: telemetry::TelemetryMap,
    /// The daemon-wide merged wheel every job's deltas bank into.
    pub fleet: Arc<telemetry::Fleet>,
    /// Live `GET /jobs/ID/events` streams (bounded; excess gets 503).
    pub event_streams: AtomicUsize,
    /// EWMA of completed-job wall time in milliseconds (drives
    /// `Retry-After`); 0 until the first completion.
    ewma_ms: AtomicU64,
    /// Supervision state: drain flag, parked retries, poison breaker.
    pub supervisor: supervise::Supervisor,
    pub stop: AtomicBool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .field("queue_depth", &self.queue.depth())
            .finish_non_exhaustive()
    }
}

impl Shared {
    /// The artifact directory for `id`.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.config.dir.join(id)
    }

    /// Environmental validation that [`JobSpec::parse`] cannot do:
    /// input files must exist, matrix jobs need the experiments
    /// binary.
    pub fn check_runnable(&self, spec: &JobSpec) -> Result<(), SpecError> {
        if let Some(input) = &spec.input {
            if !std::path::Path::new(input).is_file() {
                return Err(SpecError {
                    field: "input".to_owned(),
                    message: format!("no such file on the server: `{input}`"),
                });
            }
        }
        if spec.uses_experiments() && self.config.experiments_bin.is_none() {
            return Err(SpecError {
                field: "kind".to_owned(),
                message: "matrix jobs unavailable: no experiments binary next to the server"
                    .to_owned(),
            });
        }
        Ok(())
    }

    /// Admits a validated spec: allocates the next id, journals the
    /// submission, inserts the table record, and enqueues — or turns
    /// a full queue into a `Retry-After` verdict.
    ///
    /// # Errors
    ///
    /// Returns a message (HTTP 500/503 material) when the artifact
    /// dir or journal cannot be written, or the daemon is stopping.
    pub fn admit(&self, spec: JobSpec) -> Result<Admission, String> {
        let admit_start = std::time::Instant::now();
        if self.supervisor.is_draining() {
            self.registry.counter("serve.jobs_rejected").inc();
            return Ok(Admission::Draining {
                retry_after_secs: self.retry_after_secs(self.queue.depth().max(1)),
            });
        }
        if let Some((reason, retry_after_secs)) =
            self.supervisor.breaker_check(supervise::fingerprint(&spec))
        {
            self.registry.counter("serve.jobs_poisoned").inc();
            return Ok(Admission::Poisoned {
                reason,
                retry_after_secs,
            });
        }
        let mut seq = self.admission.lock().expect("admission lock");
        let queued = self.queue.depth();
        if queued >= self.admission_bound {
            self.registry.counter("serve.jobs_rejected").inc();
            return Ok(Admission::Full {
                retry_after_secs: self.retry_after_secs(queued),
                queued,
            });
        }
        *seq += 1;
        let id = format!("job-{seq:04}");
        let dir = self.job_dir(&id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create artifact dir `{}`: {e}", dir.display()))?;
        std::fs::write(dir.join("spec.json"), format!("{}\n", spec.to_json()))
            .map_err(|e| format!("cannot write spec.json for `{id}`: {e}"))?;
        self.journal
            .lock()
            .expect("journal lock")
            .submitted(&id, &spec)?;
        let mut job = Job::new(id.clone(), spec);
        job.deadline_secs = self.effective_deadline(job.spec.deadline_secs);
        self.table.insert(job);
        // The event stream exists from `queued` on, so a watcher that
        // connects before the runner claims the job misses nothing.
        let tel = self.job_telemetry(&id);
        tel.event("state", vec![("state", Json::Str("queued".to_owned()))]);
        // Trace bookkeeping: the admission decision is the first span
        // on the job's daemon timeline, and the queue wait starts now.
        tel.trace_span(
            "daemon",
            "admit",
            admit_start,
            admit_start.elapsed(),
            vec![("id".to_owned(), Json::Str(id.clone()))],
        );
        tel.mark_runnable(std::time::Instant::now());
        match self.queue.push(id.clone()) {
            Ok(()) => {}
            Err(PushError::Full) => unreachable!("depth checked under the admission lock"),
            Err(PushError::Closed) => return Err("server is shutting down".to_owned()),
        }
        drop(seq);
        self.registry.counter("serve.jobs_accepted").inc();
        self.status.add_total(1);
        self.refresh_gauges();
        Ok(Admission::Accepted(id))
    }

    /// The deadline actually enforced for a job: the spec's own (or
    /// the daemon default), clamped by the configured ceiling.
    fn effective_deadline(&self, spec_deadline: Option<u64>) -> Option<u64> {
        spec_deadline
            .or(self.config.default_deadline_secs)
            .map(|d| d.min(self.config.max_deadline_secs.max(1)))
    }

    /// Re-adopts or replays one journal-loaded job (resume path);
    /// returns whether it was re-enqueued.
    fn adopt(&self, loaded: journal::LoadedJob) -> bool {
        let mut job = Job::new(loaded.id.clone(), loaded.spec);
        self.status.add_total(1);
        match loaded.finished {
            Some(f) => {
                job.state = f.state;
                job.exit = f.exit;
                job.secs = Some(f.secs);
                self.table.insert(job);
                self.status.complete_one();
                false
            }
            None => {
                job.readopted = true;
                // Resume replays the attempt history: the re-run picks
                // up at the journaled ordinal, so its backoff schedule
                // and retry budget continue where the dead daemon's
                // left off.
                job.attempt = loaded.attempts;
                job.deadline_secs = self.effective_deadline(job.spec.deadline_secs);
                self.table.insert(job);
                let tel = self.job_telemetry(&loaded.id);
                tel.event("state", vec![("state", Json::Str("queued".to_owned()))]);
                tel.mark_runnable(std::time::Instant::now());
                self.queue
                    .push(loaded.id)
                    .expect("resume queue sized for every incomplete job");
                true
            }
        }
    }

    /// Marks `id` terminal: table update, journal append, counters,
    /// EWMA feed, progress tick.
    pub fn finish_job(
        &self,
        id: &str,
        state: JobState,
        exit: Option<i32>,
        secs: f64,
        error: Option<String>,
    ) {
        // Terminal event and counter first, table second: a watcher
        // that observes the terminal state is guaranteed the `end`
        // event is already in the ring (so the stream can close
        // without losing it) and the terminal counter is already on
        // `/metrics` (so state and counters never disagree — the
        // journal fsync below is a wide window to scrape through).
        self.job_telemetry(id).event(
            "end",
            vec![
                ("state", Json::Str(state.as_str().to_owned())),
                ("exit", exit.map_or(Json::Null, |c| Json::Int(i64::from(c)))),
                ("secs", Json::Num(secs)),
                ("error", error.clone().map_or(Json::Null, Json::Str)),
            ],
        );
        let counter = match state {
            JobState::Done => "serve.jobs_completed",
            JobState::Failed => "serve.jobs_failed",
            JobState::TimedOut => "serve.jobs_timed_out",
            JobState::Stalled => "serve.jobs_stalled",
            JobState::Quarantined => "serve.jobs_quarantined",
            _ => "serve.jobs_cancelled",
        };
        self.registry.counter(counter).inc();
        self.table.update(id, |job| {
            job.state = state;
            job.exit = exit;
            job.secs = Some(secs);
            job.error = error;
        });
        if let Err(e) = self
            .journal
            .lock()
            .expect("journal lock")
            .finished(id, state, exit, secs)
        {
            eprintln!("# serve: {e}");
        }
        if state == JobState::Done {
            let ms = (secs * 1000.0).clamp(1.0, 86_400_000.0) as u64;
            let prev = self.ewma_ms.load(Ordering::Relaxed);
            let next = if prev == 0 {
                ms
            } else {
                (7 * prev + 3 * ms) / 10
            };
            self.ewma_ms.store(next.max(1), Ordering::Relaxed);
        }
        self.status.complete_one();
        self.refresh_gauges();
    }

    /// Journals a retry attempt (best effort, like `finished`: the
    /// table is authoritative for live state, the journal for resume).
    pub(crate) fn journal_attempt(
        &self,
        id: &str,
        attempt: u32,
        reason: &str,
        backoff_ms: u64,
        secs: f64,
    ) {
        if let Err(e) = self
            .journal
            .lock()
            .expect("journal lock")
            .attempt(id, attempt, reason, backoff_ms, secs)
        {
            eprintln!("# serve: {e}");
        }
    }

    /// The `Retry-After` estimate for a rejected submit: the queue's
    /// worth of EWMA job time divided across the runners.
    pub fn retry_after_secs(&self, queued: usize) -> u64 {
        let ewma = self.ewma_ms.load(Ordering::Relaxed).max(DEFAULT_JOB_MS);
        let backlog_ms = ewma * queued as u64 / self.config.parallel.max(1) as u64;
        (backlog_ms.div_ceil(1000)).clamp(1, MAX_RETRY_AFTER_SECS)
    }

    /// The job's telemetry record, created on first touch.
    pub(crate) fn job_telemetry(&self, id: &str) -> Arc<telemetry::JobTelemetry> {
        self.telemetry.ensure(id, self.config.event_ring_cap)
    }

    /// The server's ETA estimate for a running job. A job streaming
    /// its own progress frames gets a first-person estimate — rate
    /// over a steady sample window, the same clamp `/status` applies —
    /// and only jobs with no telemetry fall back to the queue-wide
    /// EWMA minus elapsed (`None` before any completion fed it).
    pub fn job_eta_secs(&self, job: &Job) -> Option<f64> {
        if job.state != JobState::Running {
            return None;
        }
        if let Some(eta) = self.telemetry.get(&job.id).and_then(|t| t.eta_secs()) {
            return Some(eta);
        }
        let ewma = self.ewma_ms.load(Ordering::Relaxed);
        if ewma == 0 {
            return None;
        }
        let elapsed = job.started.map_or(0.0, |t| t.elapsed().as_secs_f64());
        Some((ewma as f64 / 1000.0 - elapsed).max(0.0))
    }

    /// Publishes queue-depth / active-jobs gauges and flips the
    /// server-wide phase between `running` and `idle`.
    pub fn refresh_gauges(&self) {
        let (queued, running) = self.table.active_counts();
        self.registry.gauge("serve.queue_depth").set(queued as i64);
        self.registry.gauge("serve.active_jobs").set(running as i64);
        self.status.set_phase(if queued + running > 0 {
            "running"
        } else {
            "idle"
        });
    }
}

/// A running serve daemon; [`ServeHandle::stop`] shuts it down in
/// order (listener, queue, runners, sampler).
#[derive(Debug)]
pub struct ServeHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
    runner_threads: Vec<std::thread::JoinHandle<()>>,
    watchdog: std::thread::JoinHandle<()>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, drains nothing further from the queue, waits
    /// for in-flight jobs to finish, and stops the sampler.
    pub fn stop(self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.close();
        for h in self.accept_threads {
            let _ = h.join();
        }
        for h in self.runner_threads {
            let _ = h.join();
        }
        let _ = self.watchdog.join();
        self.shared.sampler.stop();
    }

    /// Flips the daemon into draining: admission answers 503 +
    /// `Retry-After`, runners stop claiming queued work, running jobs
    /// keep going. Idempotent.
    pub fn begin_drain(&self) {
        if self.shared.supervisor.begin_drain() {
            self.shared.registry.counter("serve.drains").inc();
            self.shared.status.set_phase("draining");
        }
    }

    /// Graceful shutdown: [`ServeHandle::begin_drain`], wait up to
    /// `timeout` for running jobs to finish, then request a `Drain`
    /// kill on whatever is still running and stop. Drain-killed and
    /// still-queued jobs write no terminal journal record, so a
    /// restart with `--resume-dir` re-adopts all of them losslessly.
    pub fn drain(self, timeout: std::time::Duration) {
        self.begin_drain();
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            let (_, running) = self.shared.table.active_counts();
            if running == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        for job in self.shared.table.snapshot() {
            if job.state == JobState::Running {
                job.request_kill(crate::job::KillReason::Drain);
            }
        }
        self.stop();
    }

    /// Blocks this thread for the daemon's lifetime (the CLI's serve
    /// loop; only process signals end it).
    pub fn park(&self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

/// Starts the daemon on the process-global metrics registry.
///
/// # Errors
///
/// Returns a message when the bind, directory, or journal fails —
/// including a fresh (non-`resume`) start pointed at a directory that
/// already holds a journal.
pub fn serve(config: ServeConfig) -> Result<ServeHandle, String> {
    serve_with_registry(config, spindle_obs::global())
}

/// [`serve`] with an explicit registry (tests use a private one so
/// counters don't bleed between cases).
///
/// # Errors
///
/// As [`serve`].
pub fn serve_with_registry(
    config: ServeConfig,
    registry: &'static MetricsRegistry,
) -> Result<ServeHandle, String> {
    std::fs::create_dir_all(&config.dir)
        .map_err(|e| format!("cannot create serve dir `{}`: {e}", config.dir.display()))?;
    let journal_path = config.dir.join(JOURNAL_FILE);
    let existing = journal_path.is_file();
    let (journal, adopted) = if existing {
        if !config.resume {
            return Err(format!(
                "`{}` already holds a journal from a previous server; \
                 pass --resume-dir to re-adopt its jobs or point --dir at a fresh directory",
                config.dir.display()
            ));
        }
        let loaded = journal::load(&journal_path)?;
        (Journal::open_append(&journal_path)?, loaded)
    } else {
        (Journal::create(&journal_path)?, Vec::new())
    };

    let incomplete = adopted.iter().filter(|j| j.finished.is_none()).count();
    let max_seq = adopted
        .iter()
        .filter_map(|j| j.id.strip_prefix("job-")?.parse::<u64>().ok())
        .max()
        .unwrap_or(0);
    // Seed the admission EWMA from journaled completions, replayed in
    // journal order: a resumed daemon's `Retry-After` advice reflects
    // observed job durations from the first rejection instead of
    // restarting at the cold default.
    let mut ewma_seed = 0u64;
    for loaded in &adopted {
        if let Some(f) = &loaded.finished {
            if f.state == JobState::Done {
                let ms = (f.secs * 1000.0).clamp(1.0, 86_400_000.0) as u64;
                ewma_seed = if ewma_seed == 0 {
                    ms
                } else {
                    (7 * ewma_seed + 3 * ms) / 10
                }
                .max(1);
            }
        }
    }

    let status = Arc::new(RunStatus::new(0));
    status.set_phase("idle");
    status.set_progress_counter(registry.counter(spindle_pulse::status::PROGRESS_METRIC));
    let rollups = Arc::new(spindle_obs::RollupSet::wall());
    let sampler = Sampler::start_with_rollups(
        registry,
        spindle_pulse::SAMPLE_CADENCE,
        spindle_pulse::SAMPLE_CAPACITY,
        Some(Arc::clone(&rollups)),
    );

    let shared = Arc::new(Shared {
        admission_bound: config.queue_bound.max(1),
        // Re-adopted jobs bypass admission control: the queue must
        // hold all of them plus the configured bound's worth of new
        // work.
        queue: JobQueue::new(config.queue_bound.max(1) + incomplete),
        table: JobTable::new(),
        journal: Mutex::new(journal),
        admission: Mutex::new(max_seq),
        registry,
        status,
        sampler,
        rollups,
        telemetry: telemetry::TelemetryMap::default(),
        fleet: Arc::new(telemetry::Fleet::new()),
        event_streams: AtomicUsize::new(0),
        ewma_ms: AtomicU64::new(ewma_seed),
        supervisor: supervise::Supervisor::new(),
        stop: AtomicBool::new(false),
        config,
    });
    // The admission bound stays the configured one even though the
    // deque is larger: `admit` checks depth against `admission_bound`.
    for loaded in adopted {
        shared.adopt(loaded);
    }
    shared.refresh_gauges();
    // The admission bound stays the configured one even though the
    // deque is larger; see `Shared::admission_bound`.

    let addr = shared.config.addr.clone();
    let (local, accept_threads) =
        server::start(&addr, &shared).map_err(|e| format!("cannot serve jobs on `{addr}`: {e}"))?;
    let runner_threads = runner::spawn(&shared, shared.config.parallel.max(1));
    let watchdog = supervise::spawn_watchdog(&shared);
    Ok(ServeHandle {
        addr: local,
        shared,
        accept_threads,
        runner_threads,
        watchdog,
    })
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::client::{request, Response};
    use spindle_obs::json::Json;
    use std::time::{Duration, Instant};

    /// A stand-in job binary: deterministic output from its argv, a
    /// long sleep for "blocker" jobs (span >= 1000), a synthetic
    /// failure for span 666, a SIGKILL suicide for span 888 (poison),
    /// and a once-then-fine SIGKILL for span 777 (transient, keyed on
    /// a marker file per seed). Tests never spawn the real CLI (under
    /// `cargo test` the current executable is the test harness).
    fn fake_bin(dir: &std::path::Path) -> PathBuf {
        use std::os::unix::fs::PermissionsExt;
        let path = dir.join("fake-spindle.sh");
        std::fs::write(
            &path,
            "#!/bin/sh\nspan=0\nseed=0\nprev=\"\"\nfor a in \"$@\"; do\n  \
             if [ \"$prev\" = \"--span\" ]; then span=$a; fi\n  \
             if [ \"$prev\" = \"--seed\" ]; then seed=$a; fi\n  prev=$a\ndone\n\
             if [ \"$span\" -ge 1000 ]; then sleep 20; fi\n\
             if [ \"$span\" = \"666\" ]; then echo synthetic-failure >&2; exit 3; fi\n\
             if [ \"$span\" = \"888\" ]; then kill -9 $$; fi\n\
             if [ \"$span\" = \"777\" ]; then\n  marker=\"$0.marker.$seed\"\n  \
             if [ ! -f \"$marker\" ]; then touch \"$marker\"; kill -9 $$; fi\nfi\n\
             echo \"fake:$*\"\n",
        )
        .unwrap();
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
        path
    }

    fn test_daemon(
        name: &str,
        queue_bound: usize,
        parallel: usize,
    ) -> (ServeHandle, String, PathBuf) {
        test_daemon_with(name, queue_bound, parallel, |_| {})
    }

    fn test_daemon_with(
        name: &str,
        queue_bound: usize,
        parallel: usize,
        tweak: impl FnOnce(&mut ServeConfig),
    ) -> (ServeHandle, String, PathBuf) {
        let dir = std::env::temp_dir().join(format!("spindle-serve-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = ServeConfig::new("127.0.0.1:0", dir.join("data"));
        config.queue_bound = queue_bound;
        config.parallel = parallel;
        config.spindle_bin = fake_bin(&dir);
        config.experiments_bin = None;
        tweak(&mut config);
        let registry: &'static MetricsRegistry = Box::leak(Box::default());
        let handle = serve_with_registry(config, registry).expect("daemon starts");
        let addr = handle.local_addr().to_string();
        (handle, addr, dir)
    }

    fn wait_for<F: FnMut() -> bool>(what: &str, mut f: F) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !f() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn job_state(addr: &str, id: &str) -> String {
        let r = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        spindle_obs::json::parse(r.body.trim())
            .ok()
            .and_then(|doc| doc.get("state").and_then(Json::as_str).map(str::to_owned))
            .unwrap_or_default()
    }

    fn submit(addr: &str, body: &str) -> Response {
        request(addr, "POST", "/jobs", Some(body)).unwrap()
    }

    #[test]
    fn full_queue_rejects_with_retry_after_and_drains_after_cancel() {
        let (handle, addr, dir) = test_daemon("admission", 2, 1);

        // A blocker occupies the single runner...
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        assert_eq!(r.status, 201, "{}", r.body);
        let blocker = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker to run", || job_state(&addr, &blocker) == "running");

        // ...two more fill the queue; the next is refused with advice.
        let a = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":2}"#,
        );
        let b = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":3}"#,
        );
        assert_eq!((a.status, b.status), (201, 201));
        let rejected = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":4}"#,
        );
        assert_eq!(rejected.status, 429, "{}", rejected.body);
        let retry: u64 = rejected
            .header("retry-after")
            .expect("Retry-After")
            .parse()
            .unwrap();
        assert!((1..=60).contains(&retry));
        let doc = spindle_obs::json::parse(rejected.body.trim()).unwrap();
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("queue full"));
        assert_eq!(doc.get("queued").and_then(Json::as_u64), Some(2));

        // Cancel the blocker: running -> cooperative kill.
        let c = request(&addr, "DELETE", &format!("/jobs/{blocker}"), None).unwrap();
        assert_eq!(c.status, 202, "{}", c.body);
        wait_for("blocker to cancel", || {
            job_state(&addr, &blocker) == "cancelled"
        });
        wait_for("queue to drain", || {
            let r = request(&addr, "GET", "/jobs", None).unwrap();
            let doc = spindle_obs::json::parse(r.body.trim()).unwrap();
            doc.get("queued").and_then(Json::as_u64) == Some(0)
                && doc.get("running").and_then(Json::as_u64) == Some(0)
        });

        // The accepted jobs completed with deterministic artifacts.
        let a_id = spindle_obs::json::parse(a.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        assert_eq!(job_state(&addr, &a_id), "done");
        let result = request(&addr, "GET", &format!("/jobs/{a_id}/result"), None).unwrap();
        assert_eq!(result.status, 200);
        let stdout = request(
            &addr,
            "GET",
            &format!("/jobs/{a_id}/artifacts/stdout.txt"),
            None,
        )
        .unwrap();
        assert_eq!(stdout.status, 200);
        assert_eq!(stdout.body, "fake:generate --env web --span 10 --seed 2\n");

        // Cancelling a terminal job is a conflict; traversal is refused.
        let again = request(&addr, "DELETE", &format!("/jobs/{blocker}"), None).unwrap();
        assert_eq!(again.status, 409);
        let escape = request(
            &addr,
            "GET",
            &format!("/jobs/{a_id}/artifacts/..%2Fjournal.jsonl"),
            None,
        )
        .unwrap();
        assert_ne!(escape.status, 200, "traversal must not serve files");

        // Idle again, and the serve counters made it to /metrics.
        wait_for("phase idle", || {
            let r = request(&addr, "GET", "/status", None).unwrap();
            r.body.contains("\"idle\"")
        });
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(metrics.contains("serve_jobs_accepted 3"), "{metrics}");
        assert!(metrics.contains("serve_jobs_rejected 1"), "{metrics}");
        assert!(metrics.contains("serve_jobs_cancelled 1"), "{metrics}");
        assert!(metrics.contains("serve_jobs_completed 2"), "{metrics}");
        spindle_obs::prom::check_exposition(&metrics).expect("valid exposition");

        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_submissions_get_structured_errors_and_never_kill_the_server() {
        let (handle, addr, dir) = test_daemon("hostile", 4, 1);
        for (body, field) in [
            ("{", "(body)"),
            ("", "(body)"),
            ("[1,2,3]", "(body)"),
            (r#"{"kind":"demolish"}"#, "kind"),
            (r#"{"kind":"generate"}"#, "env"),
            (r#"{"kind":"generate","env":"web","bogus":true}"#, "bogus"),
            (r#"{"kind":"simulate","input":"/no/such/file"}"#, "input"),
            (r#"{"kind":"matrix","quick":true}"#, "kind"),
        ] {
            let r = submit(&addr, body);
            assert_eq!(r.status, 400, "body {body} -> {}", r.body);
            let doc = spindle_obs::json::parse(r.body.trim()).expect("structured error");
            assert_eq!(
                doc.get("field").and_then(Json::as_str),
                Some(field),
                "body {body} -> {}",
                r.body
            );
        }
        // A failing job is reported failed, with the stderr tail.
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":666,"seed":1}"#,
        );
        assert_eq!(r.status, 201);
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("failure to land", || job_state(&addr, &id) == "failed");
        let detail = request(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert!(detail.body.contains("synthetic-failure"), "{}", detail.body);
        let health = request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(health.status, 200, "server survived the hostility");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_readopts_incomplete_jobs_and_fresh_start_refuses_them() {
        let dir = std::env::temp_dir().join(format!("spindle-serve-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("data")).unwrap();
        let spec =
            spec::JobSpec::parse(r#"{"kind":"generate","env":"dev","span":10,"seed":9}"#).unwrap();
        // A journal a killed daemon would leave: one finished job, one
        // submitted-but-unfinished.
        let mut journal = Journal::create(&dir.join("data").join(JOURNAL_FILE)).unwrap();
        journal.submitted("job-0001", &spec).unwrap();
        journal
            .finished("job-0001", JobState::Done, Some(0), 0.5)
            .unwrap();
        journal.submitted("job-0002", &spec).unwrap();
        drop(journal);

        let mut config = ServeConfig::new("127.0.0.1:0", dir.join("data"));
        config.queue_bound = 2;
        config.parallel = 1;
        config.spindle_bin = fake_bin(&dir);
        config.experiments_bin = None;

        // Without --resume-dir the stale journal is an error...
        let registry: &'static MetricsRegistry = Box::leak(Box::default());
        let err = serve_with_registry(config.clone(), registry).expect_err("stale journal refused");
        assert!(err.contains("--resume-dir"), "{err}");

        // ...with it, the orphan re-runs to completion.
        config.resume = true;
        let registry: &'static MetricsRegistry = Box::leak(Box::default());
        let handle = serve_with_registry(config, registry).expect("resume starts");
        let addr = handle.local_addr().to_string();
        wait_for("orphan to complete", || {
            job_state(&addr, "job-0002") == "done"
        });
        let detail = request(&addr, "GET", "/jobs/job-0002", None).unwrap();
        let doc = spindle_obs::json::parse(detail.body.trim()).unwrap();
        assert_eq!(doc.get("readopted"), Some(&Json::Bool(true)));
        // The replayed job kept its history without re-running.
        let old = spindle_obs::json::parse(
            request(&addr, "GET", "/jobs/job-0001", None)
                .unwrap()
                .body
                .trim(),
        )
        .unwrap();
        assert_eq!(old.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(old.get("readopted"), Some(&Json::Bool(false)));
        // New ids continue past the journaled ones.
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"dev","span":10,"seed":1}"#,
        );
        assert_eq!(r.status, 201);
        assert!(r.body.contains("job-0003"), "{}", r.body);
        wait_for("new job done", || job_state(&addr, "job-0003") == "done");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        let (handle, addr, dir) = test_daemon("cancel-queued", 4, 1);
        let blocker = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        assert_eq!(blocker.status, 201);
        let blocker_id = spindle_obs::json::parse(blocker.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker running", || {
            job_state(&addr, &blocker_id) == "running"
        });
        let queued = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":2}"#,
        );
        let queued_id = spindle_obs::json::parse(queued.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        let r = request(&addr, "DELETE", &format!("/jobs/{queued_id}"), None).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(job_state(&addr, &queued_id), "cancelled");
        let missing = request(&addr, "DELETE", "/jobs/job-9999", None).unwrap();
        assert_eq!(missing.status, 404);
        request(&addr, "DELETE", &format!("/jobs/{blocker_id}"), None).unwrap();
        wait_for("blocker cancelled", || {
            job_state(&addr, &blocker_id) == "cancelled"
        });
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Reads an SSE stream off a raw socket until the `end` sentinel
    /// (or `deadline`), returning the raw text.
    fn read_sse(stream: &mut std::net::TcpStream, deadline: Instant) -> String {
        use std::io::Read;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut raw = String::new();
        let mut buf = [0u8; 4096];
        while Instant::now() < deadline && !raw.contains("event: end") {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.push_str(&String::from_utf8_lossy(&buf[..n])),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
        }
        raw
    }

    #[test]
    fn event_stream_bounds_memory_and_accounts_every_drop() {
        // A tiny ring and a fast heartbeat force drops no matter how
        // fast the watcher reads: more events are produced between
        // stream polls than the ring retains.
        let (handle, addr, dir) = test_daemon_with("events-drop", 4, 1, |c| {
            c.event_ring_cap = 2;
            c.heartbeat_ms = 1;
        });
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        assert_eq!(r.status, 201, "{}", r.body);
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker running", || job_state(&addr, &id) == "running");

        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        {
            use std::io::Write;
            write!(stream, "GET /jobs/{id}/events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        }
        // Let heartbeats overflow the ring for a while, then cancel so
        // the stream terminates.
        std::thread::sleep(Duration::from_millis(1200));
        request(&addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
        let raw = read_sse(&mut stream, Instant::now() + Duration::from_secs(20));
        assert!(raw.contains("event: end"), "stream must end:\n{raw}");

        // Exact accounting: every produced event was either received
        // or announced as dropped. Sequence ids are contiguous from 0,
        // so produced == max_id + 1.
        let ids: Vec<u64> = raw
            .lines()
            .filter_map(|l| l.strip_prefix("id: ")?.trim().parse().ok())
            .collect();
        let dropped: u64 = raw
            .lines()
            .filter_map(|l| {
                l.strip_prefix("data: {\"dropped\":")?
                    .trim_end_matches('}')
                    .parse::<u64>()
                    .ok()
            })
            .sum();
        let max_id = *ids.iter().max().expect("events received");
        assert!(dropped > 0, "tiny ring must have dropped:\n{raw}");
        assert_eq!(
            ids.len() as u64 + dropped,
            max_id + 1,
            "received + dropped == produced:\n{raw}"
        );
        // The stream carried real content: lifecycle + heartbeats +
        // the terminal event.
        assert!(raw.contains("\"type\":\"heartbeat\""), "{raw}");
        assert!(raw.contains("\"type\":\"end\""), "{raw}");
        assert!(raw.contains("\"state\":\"cancelled\""), "{raw}");
        // The daemon counted exactly what this (sole) watcher lost.
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(
            metrics.contains(&format!("serve_events_dropped {dropped}")),
            "counter must match in-band accounting ({dropped}):\n{metrics}"
        );
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn job_metric_labels_exist_only_while_the_job_is_active() {
        let (handle, addr, dir) = test_daemon("job-labels", 4, 1);
        let idle = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(!idle.contains("serve_job_state{"), "{idle}");
        spindle_obs::prom::check_exposition(&idle).expect("idle exposition");

        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker running", || job_state(&addr, &id) == "running");
        let active = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(
            active.contains(&format!(
                "serve_job_state{{job=\"{id}\",state=\"running\"}} 1"
            )),
            "{active}"
        );
        assert!(
            active.contains(&format!("serve_job_progress{{job=\"{id}\"}}")),
            "{active}"
        );
        spindle_obs::prom::check_exposition(&active).expect("active exposition");

        request(&addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
        wait_for("cancelled", || job_state(&addr, &id) == "cancelled");
        let after = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(
            !after.contains("serve_job_state{"),
            "terminal jobs must leave the exposition:\n{after}"
        );
        spindle_obs::prom::check_exposition(&after).expect("post-terminal exposition");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timescale_endpoints_serve_job_and_fleet_documents() {
        let (handle, addr, dir) = test_daemon("timescales", 4, 1);
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":1}"#,
        );
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("job done", || job_state(&addr, &id) == "done");

        let r = request(&addr, "GET", &format!("/jobs/{id}/timescales"), None).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = spindle_obs::json::parse(r.body.trim()).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_str), Some(id.as_str()));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("done"));
        // The fake job binary never speaks the frame protocol: zero
        // frames, no torn stream, an empty (but well-formed) wheel.
        assert_eq!(doc.get("frames").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("torn"), Some(&Json::Bool(false)));
        let rollups = doc.get("rollups").expect("rollups document");
        assert_eq!(rollups.get("axis").and_then(Json::as_str), Some("wall"));

        let r = request(&addr, "GET", "/timescales", None).unwrap();
        let doc = spindle_obs::json::parse(r.body.trim()).unwrap();
        let fleet = doc.get("fleet").expect("fleet document");
        assert_eq!(fleet.get("axis").and_then(Json::as_str), Some("wall"));

        let missing = request(&addr, "GET", "/jobs/job-9999/timescales", None).unwrap();
        assert_eq!(missing.status, 404);
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_kills_retry_with_journaled_attempts_then_succeed() {
        let (handle, addr, dir) = test_daemon_with("retry", 4, 1, |c| {
            c.retry_base_ms = 10;
        });
        // Span 777 SIGKILLs itself once (per seed), then behaves.
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":777,"seed":5}"#,
        );
        assert_eq!(r.status, 201, "{}", r.body);
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("retried job to finish", || job_state(&addr, &id) == "done");
        let detail = request(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        let doc = spindle_obs::json::parse(detail.body.trim()).unwrap();
        assert_eq!(
            doc.get("attempt").and_then(Json::as_u64),
            Some(1),
            "{}",
            detail.body
        );
        // The second attempt's stdout is exactly what a clean run
        // writes: the retry path preserved determinism.
        let stdout = request(
            &addr,
            "GET",
            &format!("/jobs/{id}/artifacts/stdout.txt"),
            None,
        )
        .unwrap();
        assert_eq!(stdout.body, "fake:generate --env web --span 777 --seed 5\n");
        // The retry is durable history: an `attempt` record with the
        // failure's reason, so resume replays the same ordinal.
        let journal = std::fs::read_to_string(dir.join("data").join(JOURNAL_FILE)).unwrap();
        assert!(journal.contains("\"event\":\"attempt\""), "{journal}");
        assert!(journal.contains("child killed by a signal"), "{journal}");
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(metrics.contains("serve_jobs_retried 1"), "{metrics}");
        assert!(metrics.contains("serve_jobs_completed 1"), "{metrics}");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retried_job_trace_carries_both_attempts_and_matches_the_journal() {
        let (handle, addr, dir) = test_daemon_with("trace-retry", 4, 1, |c| {
            c.retry_base_ms = 10;
        });
        // Span 777 SIGKILLs itself once (per seed), then behaves, so
        // the job runs exactly two attempts.
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":777,"seed":11}"#,
        );
        assert_eq!(r.status, 201, "{}", r.body);
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("retried job to finish", || job_state(&addr, &id) == "done");

        let resp = request(&addr, "GET", &format!("/jobs/{id}/trace"), None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = spindle_obs::json::parse(resp.body.trim()).unwrap();
        spindle_obs::trace_event::check_document(&doc)
            .unwrap_or_else(|e| panic!("trace endpoint produced a bad document: {e}"));

        // The document must record both attempts plus the queue wait
        // that preceded each of them.
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let name_of = |e: &Json| e.get("name").and_then(Json::as_str).map(str::to_owned);
        let attempts: Vec<f64> = events
            .iter()
            .filter(|e| name_of(e).as_deref() == Some("attempt"))
            .map(|e| e.get("dur").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(
            attempts.len() >= 2,
            "expected >=2 attempt spans, got {attempts:?} in {}",
            resp.body
        );
        let queue_waits = events
            .iter()
            .filter(|e| name_of(e).as_deref() == Some("queue.wait"))
            .count();
        assert!(queue_waits >= 1, "no queue.wait span in {}", resp.body);

        // Attempt durations must agree with the journal's recorded
        // attempt wall times (failed attempts carry `secs` on their
        // attempt record; the final one lands on `finished`).
        let journal = std::fs::read_to_string(dir.join("data").join(JOURNAL_FILE)).unwrap();
        let mut journal_secs = 0.0;
        for line in journal.lines() {
            let rec = spindle_obs::json::parse(line).unwrap();
            match rec.get("event").and_then(Json::as_str) {
                Some("attempt") | Some("finished") => {
                    journal_secs += rec.get("secs").and_then(Json::as_f64).unwrap_or(0.0);
                }
                _ => {}
            }
        }
        let traced_secs: f64 = attempts.iter().sum::<f64>() / 1e6;
        assert!(
            (traced_secs - journal_secs).abs() < 2.0,
            "trace attempts sum to {traced_secs}s but journal records {journal_secs}s"
        );

        // The daemon-wide merge view is also well formed.
        let merged = request(&addr, "GET", "/trace", None).unwrap();
        assert_eq!(merged.status, 200);
        let merged_doc = spindle_obs::json::parse(merged.body.trim()).unwrap();
        spindle_obs::trace_event::check_document(&merged_doc)
            .unwrap_or_else(|e| panic!("daemon trace produced a bad document: {e}"));

        // Every request above flowed through the per-endpoint HTTP
        // metrics, including the trace routes themselves.
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(
            metrics.contains("serve_http_job_trace_requests"),
            "{metrics}"
        );
        assert!(metrics.contains("serve_http_trace_requests"), "{metrics}");
        assert!(metrics.contains("serve_http_submit_2xx"), "{metrics}");

        // The spans were persisted alongside the artifacts, and the
        // offline assembler rebuilds an equally valid document.
        let job_dir = dir.join("data").join(&id);
        assert!(job_dir.join(crate::trace::SPANS_FILE).is_file());
        let rebuilt = crate::trace::assemble_dir(&job_dir).unwrap();
        spindle_obs::trace_event::check_document(&rebuilt)
            .unwrap_or_else(|e| panic!("offline assembly produced a bad document: {e}"));

        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poison_specs_quarantine_and_open_the_breaker() {
        let (handle, addr, dir) = test_daemon_with("poison", 4, 1, |c| {
            c.retry_base_ms = 1;
            c.max_retries = 1;
        });
        // Span 888 SIGKILLs itself on every attempt.
        let body = r#"{"kind":"generate","env":"web","span":888,"seed":1}"#;
        let r = submit(&addr, body);
        assert_eq!(r.status, 201, "{}", r.body);
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("quarantine", || job_state(&addr, &id) == "quarantined");
        let detail = request(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert!(
            detail.body.contains("retries exhausted after 2 attempt(s)"),
            "{}",
            detail.body
        );
        // The identical spec is now fast-rejected with advice...
        let again = submit(&addr, body);
        assert_eq!(again.status, 409, "{}", again.body);
        let retry: u64 = again
            .header("retry-after")
            .expect("breaker Retry-After")
            .parse()
            .unwrap();
        assert!(retry >= 1, "{retry}");
        assert!(again.body.contains("retries exhausted"), "{}", again.body);
        // ...while any other spec still passes admission.
        let other = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":2}"#,
        );
        assert_eq!(other.status, 201, "{}", other.body);
        let other_id = spindle_obs::json::parse(other.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("healthy job done", || job_state(&addr, &other_id) == "done");
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(metrics.contains("serve_jobs_quarantined 1"), "{metrics}");
        assert!(metrics.contains("serve_jobs_poisoned 1"), "{metrics}");
        assert!(metrics.contains("serve_jobs_retried 1"), "{metrics}");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadlines_kill_overrunning_jobs_terminally() {
        let (handle, addr, dir) = test_daemon_with("deadline", 4, 2, |c| {
            c.default_deadline_secs = Some(1);
            c.max_deadline_secs = 2;
        });
        // One blocker rides the 1s default; the other asks for 600s
        // and gets clamped to the 2s ceiling.
        let a = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        let b = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":2,"deadline_secs":600}"#,
        );
        assert_eq!((a.status, b.status), (201, 201));
        let id_of = |r: &Response| {
            spindle_obs::json::parse(r.body.trim())
                .unwrap()
                .get("id")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned()
        };
        let (a_id, b_id) = (id_of(&a), id_of(&b));
        wait_for("default deadline", || {
            job_state(&addr, &a_id) == "timed_out"
        });
        wait_for("clamped deadline", || {
            job_state(&addr, &b_id) == "timed_out"
        });
        let detail = request(&addr, "GET", &format!("/jobs/{a_id}"), None).unwrap();
        let doc = spindle_obs::json::parse(detail.body.trim()).unwrap();
        assert!(
            doc.get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.contains("deadline of 1s exceeded")),
            "{}",
            detail.body
        );
        // Deadline kills are terminal, never retried.
        assert_eq!(doc.get("attempt").and_then(Json::as_u64), Some(0));
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(metrics.contains("serve_jobs_timed_out 2"), "{metrics}");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_stops_admission_and_leaves_unfinished_work_for_resume() {
        let (handle, addr, dir) = test_daemon("drain", 4, 1);
        let blocker = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        assert_eq!(blocker.status, 201);
        let blocker_id = spindle_obs::json::parse(blocker.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker running", || {
            job_state(&addr, &blocker_id) == "running"
        });
        let queued = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":2}"#,
        );
        assert_eq!(queued.status, 201);

        handle.begin_drain();
        let refused = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":3}"#,
        );
        assert_eq!(refused.status, 503, "{}", refused.body);
        assert!(refused.header("retry-after").is_some(), "{refused:?}");
        assert!(refused.body.contains("draining"), "{}", refused.body);

        // The blocker outlives the grace period and is drain-killed;
        // the queued job is never claimed. Neither gets a terminal
        // journal record.
        handle.drain(Duration::from_millis(300));
        let loaded = journal::load(&dir.join("data").join(JOURNAL_FILE)).unwrap();
        let unfinished = loaded.iter().filter(|j| j.finished.is_none()).count();
        assert_eq!((loaded.len(), unfinished), (2, 2));

        // A resume restart re-adopts both losslessly.
        let mut config = ServeConfig::new("127.0.0.1:0", dir.join("data"));
        config.queue_bound = 4;
        config.parallel = 1;
        config.spindle_bin = fake_bin(&dir);
        config.experiments_bin = None;
        config.resume = true;
        let registry: &'static MetricsRegistry = Box::leak(Box::default());
        let handle = serve_with_registry(config, registry).expect("resume starts");
        let addr = handle.local_addr().to_string();
        // The re-run blocker would sleep 20s; cancel it so the small
        // job behind it completes.
        wait_for("blocker re-running", || {
            job_state(&addr, &blocker_id) == "running"
        });
        request(&addr, "DELETE", &format!("/jobs/{blocker_id}"), None).unwrap();
        wait_for("drained job completes on resume", || {
            job_state(&addr, "job-0002") == "done"
        });
        let stdout = request(&addr, "GET", "/jobs/job-0002/artifacts/stdout.txt", None).unwrap();
        assert_eq!(stdout.body, "fake:generate --env web --span 10 --seed 2\n");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_seeds_retry_after_from_journaled_durations() {
        let dir = std::env::temp_dir().join(format!("spindle-serve-ewma-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("data")).unwrap();
        let spec =
            spec::JobSpec::parse(r#"{"kind":"generate","env":"dev","span":10,"seed":9}"#).unwrap();
        // History says jobs take ~30s each.
        let mut journal = Journal::create(&dir.join("data").join(JOURNAL_FILE)).unwrap();
        journal.submitted("job-0001", &spec).unwrap();
        journal
            .finished("job-0001", JobState::Done, Some(0), 30.0)
            .unwrap();
        drop(journal);

        let mut config = ServeConfig::new("127.0.0.1:0", dir.join("data"));
        config.queue_bound = 1;
        config.parallel = 1;
        config.spindle_bin = fake_bin(&dir);
        config.experiments_bin = None;
        config.resume = true;
        let registry: &'static MetricsRegistry = Box::leak(Box::default());
        let handle = serve_with_registry(config, registry).expect("resume starts");
        let addr = handle.local_addr().to_string();

        let blocker = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        assert_eq!(blocker.status, 201);
        let blocker_id = spindle_obs::json::parse(blocker.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker running", || {
            job_state(&addr, &blocker_id) == "running"
        });
        let fill = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":2}"#,
        );
        assert_eq!(fill.status, 201);
        let rejected = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":10,"seed":3}"#,
        );
        assert_eq!(rejected.status, 429, "{}", rejected.body);
        let retry: u64 = rejected
            .header("retry-after")
            .expect("Retry-After")
            .parse()
            .unwrap();
        // Cold-start advice would be 1s (DEFAULT_JOB_MS); the seeded
        // EWMA knows jobs take ~30s.
        assert!(
            retry >= 10,
            "seeded Retry-After should reflect history: {retry}"
        );
        request(&addr, "DELETE", &format!("/jobs/{blocker_id}"), None).unwrap();
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_stream_limit_gets_503_with_retry_after_and_counter() {
        use std::io::{Read, Write};
        let (handle, addr, dir) = test_daemon("sse-limit", 4, 1);
        let r = submit(
            &addr,
            r#"{"kind":"generate","env":"web","span":2000,"seed":1}"#,
        );
        assert_eq!(r.status, 201);
        let id = spindle_obs::json::parse(r.body.trim())
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        wait_for("blocker running", || job_state(&addr, &id) == "running");

        // Fill every stream slot, confirming each registered by
        // reading its response header off the wire.
        let mut streams = Vec::new();
        for _ in 0..8 {
            let mut s = std::net::TcpStream::connect(&addr).unwrap();
            write!(s, "GET /jobs/{id}/events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut head = [0u8; 15];
            s.read_exact(&mut head).unwrap();
            assert!(
                String::from_utf8_lossy(&head).contains("200"),
                "stream should open: {}",
                String::from_utf8_lossy(&head)
            );
            streams.push(s);
        }
        // The ninth watcher is refused with advice, and the refusal is
        // counted.
        let ninth = request(&addr, "GET", &format!("/jobs/{id}/events"), None).unwrap();
        assert_eq!(ninth.status, 503, "{}", ninth.body);
        let retry: u64 = ninth
            .header("retry-after")
            .expect("SSE 503 Retry-After")
            .parse()
            .unwrap();
        assert!(retry >= 1, "{retry}");
        assert!(ninth.body.contains("event streams"), "{}", ninth.body);
        let metrics = request(&addr, "GET", "/metrics", None).unwrap().body;
        assert!(metrics.contains("serve_events_rejected 1"), "{metrics}");

        request(&addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
        wait_for("cancelled", || job_state(&addr, &id) == "cancelled");
        drop(streams);
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }
}
