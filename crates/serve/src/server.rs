//! The job service's HTTP front end.
//!
//! Built on the shared [`spindle_pulse::http`] parser (Content-Length
//! body framing, 1 MiB cap, structured 400s on malformed input). A
//! small pool of handler threads accepts on a cloned non-blocking
//! listener — submissions and lifecycle queries are cheap; the heavy
//! work happens on the runner threads.
//!
//! Routes:
//!
//! * `POST /jobs` — submit a spec; 201 accepted, 400 structured
//!   validation error, 429 + `Retry-After` when the queue is full.
//! * `GET /jobs` — every job in submit order plus queue counters.
//! * `GET /jobs/ID` — one job's state/progress/ETA.
//! * `GET /jobs/ID/result` — terminal outcome (409 while pending).
//! * `GET /jobs/ID/artifacts/NAME` — one artifact file.
//! * `DELETE /jobs/ID` — cancel (queued → cancelled immediately,
//!   running → cooperative kill, terminal → 409).
//! * `GET /jobs/ID/events` — live Server-Sent Events: the job's
//!   lifecycle, heartbeat, progress, and log-tail events as they
//!   happen, ending with `event: end` once the job is terminal. Runs
//!   on a dedicated thread (bounded count, 503 beyond it) so slow
//!   watchers cannot starve the handler pool; a watcher that falls
//!   behind the bounded ring gets `event: dropped` with the exact
//!   count of what it missed.
//! * `GET /jobs/ID/timescales` — the job's multi-resolution rollup
//!   document rebuilt from its telemetry stream, plus the child's own
//!   final window flush.
//! * `GET /jobs/ID/trace` — the job's causal trace as a self-contained
//!   Chrome trace-event document: daemon lifecycle spans, the child's
//!   offset-aligned wall spans, and its sim-time tracks, with flow
//!   arrows parenting each attempt to the child work it spawned.
//! * `GET /trace` — the daemon-wide document: every job's spans merged
//!   onto one timeline, tracks prefixed by job id.
//! * `GET /metrics`, `/healthz`, `/status`, `/timescales` — the same
//!   telemetry surface the pulse endpoint serves, for the daemon
//!   itself — plus per-active-job labeled series on `/metrics` and
//!   the merged fleet wheel on `/timescales`.
//!
//! Every request is observed per endpoint: `serve.http.<route>.micros`
//! latency histograms plus request and status-class counters, with
//! route cardinality bounded to the known route set (anything else is
//! `other`).

use crate::job::{CancelVerdict, JobState};
use crate::{Admission, Shared};
use spindle_obs::json::Json;
use spindle_obs::MetricsSink;
use spindle_pulse::http::{read_request, respond, respond_with_headers, HttpError, Request};
use spindle_pulse::status_json;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handler threads sharing the listener.
const HANDLER_THREADS: usize = 4;

/// Accept-poll interval while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-connection socket timeout.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(2000);

/// Event-ring poll cadence for `GET /jobs/ID/events`.
const EVENTS_POLL: Duration = Duration::from_millis(100);

/// Write timeout on an event stream: a dead or wedged watcher is cut
/// off rather than pinning its thread.
const EVENTS_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Concurrent event streams; beyond this, `/jobs/ID/events` gets 503.
const MAX_EVENT_STREAMS: usize = 8;

/// `Retry-After` advertised on an event-stream 503: streams churn
/// fast, so a short pause usually frees a slot.
const EVENTS_RETRY_AFTER_SECS: u64 = 2;

const JSON_TYPE: &str = "application/json; charset=utf-8";
const TEXT_TYPE: &str = "text/plain; charset=utf-8";

/// Binds `addr` and spawns the handler pool.
pub(crate) fn start(
    addr: &str,
    shared: &Arc<Shared>,
) -> io::Result<(SocketAddr, Vec<JoinHandle<()>>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let mut threads = Vec::new();
    for i in 0..HANDLER_THREADS {
        let listener = listener.try_clone()?;
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-http-{i}"))
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    Ok((local, threads))
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One request per connection; a broken client never
                // takes the handler down.
                let _ = handle(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Responders hand their status line back so the caller can feed the
/// per-endpoint observability without every handler threading it.
fn json_response(
    stream: &mut TcpStream,
    status: &'static str,
    doc: &Json,
) -> io::Result<&'static str> {
    respond(stream, status, JSON_TYPE, &format!("{doc}\n")).map(|()| status)
}

fn error_response(
    stream: &mut TcpStream,
    status: &'static str,
    message: &str,
) -> io::Result<&'static str> {
    let doc = Json::Obj(vec![("error".to_owned(), Json::Str(message.to_owned()))]);
    json_response(stream, status, &doc)
}

/// Maps a request onto the bounded route vocabulary the per-endpoint
/// metrics use. Unknown paths and methods all collapse into `other`,
/// so hostile traffic cannot inflate metric cardinality.
fn classify(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/jobs") => "submit",
        ("GET", "/jobs") => "jobs",
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/status") => "status",
        ("GET", "/timescales") => "timescales",
        ("GET", "/trace") => "trace",
        _ => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                let tail = rest.split_once('/').map(|(_, t)| t);
                return match (method, tail) {
                    ("GET", None) => "job",
                    ("DELETE", None) => "cancel",
                    ("GET", Some("result")) => "result",
                    ("GET", Some("events")) => "events",
                    ("GET", Some("timescales")) => "job_timescales",
                    ("GET", Some("trace")) => "job_trace",
                    ("GET", Some(t)) if t.starts_with("artifacts/") => "artifact",
                    _ => "other",
                };
            }
            "other"
        }
    }
}

/// Records one handled request: latency histogram plus request and
/// status-class counters, all keyed by the bounded route label.
fn observe_http(shared: &Shared, route: &'static str, started: Instant, status: &str) {
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared
        .registry
        .histogram(&format!("serve.http.{route}.micros"))
        .record(micros);
    shared
        .registry
        .counter(&format!("serve.http.{route}.requests"))
        .inc();
    let class = match status.as_bytes().first() {
        Some(b'2') => "2xx",
        Some(b'3') => "3xx",
        Some(b'4') => "4xx",
        _ => "5xx",
    };
    shared
        .registry
        .counter(&format!("serve.http.{route}.{class}"))
        .inc();
}

fn handle(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let started = Instant::now();
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Io(e)) => return Err(e),
        Err(HttpError::BodyTooLarge(n)) => {
            let status = error_response(
                &mut stream,
                "413 Payload Too Large",
                &format!("request body of {n} bytes exceeds the 1 MiB limit"),
            )?;
            observe_http(shared, "other", started, status);
            return Ok(());
        }
        Err(e) => {
            let status = error_response(&mut stream, "400 Bad Request", &format!("{e}"))?;
            observe_http(shared, "other", started, status);
            return Ok(());
        }
    };
    let label = classify(&request.method, &request.path);
    // Event streams live as long as the job runs; they move off the
    // small handler pool onto dedicated (bounded) threads.
    if request.method == "GET" {
        if let Some(id) = request
            .path
            .strip_prefix("/jobs/")
            .and_then(|rest| rest.strip_suffix("/events"))
        {
            if !id.is_empty() && !id.contains('/') {
                let status = events(stream, shared, id)?;
                observe_http(shared, label, started, status);
                return Ok(());
            }
        }
    }
    let status = route(&mut stream, shared, &request)?;
    observe_http(shared, label, started, status);
    Ok(())
}

fn route(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
) -> io::Result<&'static str> {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("POST", "/jobs") => return submit(stream, shared, request),
        ("GET", "/jobs") => return list_jobs(stream, shared),
        ("GET", "/healthz") => {
            return respond(stream, "200 OK", TEXT_TYPE, "ok\n").map(|()| "200 OK")
        }
        ("GET", "/metrics") => return metrics(stream, shared),
        ("GET", "/trace") => return daemon_trace(stream, shared),
        ("GET", "/status") => {
            let doc = status_json(&shared.status, &shared.registry.snapshot(), &shared.sampler);
            return json_response(stream, "200 OK", &doc);
        }
        ("GET", "/timescales") => {
            let doc = Json::Obj(vec![
                ("rollups".to_owned(), shared.rollups.to_json()),
                // The merged fleet wheel: every job's lifetime totals,
                // summed bucket-for-bucket.
                ("fleet".to_owned(), shared.fleet.rollups.to_json()),
                (
                    "exemplars".to_owned(),
                    shared.registry.exemplars().to_json(),
                ),
            ]);
            return json_response(stream, "200 OK", &doc);
        }
        _ => {}
    }
    // /jobs/ID[/result | /artifacts/NAME]
    if let Some(rest) = path.strip_prefix("/jobs/") {
        let (id, tail) = match rest.split_once('/') {
            Some((id, tail)) => (id, Some(tail)),
            None => (rest, None),
        };
        return match (method, tail) {
            ("GET", None) => job_detail(stream, shared, id),
            ("DELETE", None) => cancel(stream, shared, id),
            ("GET", Some("result")) => job_result(stream, shared, id),
            ("GET", Some("timescales")) => job_timescales(stream, shared, id),
            ("GET", Some("trace")) => job_trace(stream, shared, id),
            ("GET", Some(tail)) if tail.strip_prefix("artifacts/").is_some() => {
                let name = tail.strip_prefix("artifacts/").expect("guard");
                artifact(stream, shared, id, name)
            }
            _ => error_response(stream, "405 Method Not Allowed", "method not allowed"),
        };
    }
    if matches!(method, "GET" | "POST" | "DELETE") {
        error_response(stream, "404 Not Found", "not found")
    } else {
        error_response(stream, "405 Method Not Allowed", "method not allowed")
    }
}

fn submit(stream: &mut TcpStream, shared: &Shared, request: &Request) -> io::Result<&'static str> {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(stream, "400 Bad Request", "job spec must be UTF-8 JSON");
    };
    let spec = match crate::spec::JobSpec::parse(body).and_then(|spec| {
        shared.check_runnable(&spec)?;
        Ok(spec)
    }) {
        Ok(spec) => spec,
        Err(e) => return json_response(stream, "400 Bad Request", &e.to_json()),
    };
    match shared.admit(spec) {
        Ok(Admission::Accepted(id)) => {
            let doc = Json::Obj(vec![
                ("id".to_owned(), Json::Str(id)),
                ("state".to_owned(), Json::Str("queued".to_owned())),
            ]);
            json_response(stream, "201 Created", &doc)
        }
        Ok(Admission::Full {
            retry_after_secs,
            queued,
        }) => {
            let doc = Json::Obj(vec![
                ("error".to_owned(), Json::Str("queue full".to_owned())),
                ("queued".to_owned(), Json::Uint(queued as u64)),
                (
                    "bound".to_owned(),
                    Json::Uint(shared.admission_bound as u64),
                ),
                ("retry_after_secs".to_owned(), Json::Uint(retry_after_secs)),
            ]);
            respond_with_headers(
                stream,
                "429 Too Many Requests",
                JSON_TYPE,
                &[("Retry-After", &retry_after_secs.to_string())],
                &format!("{doc}\n"),
            )
            .map(|()| "429 Too Many Requests")
        }
        Ok(Admission::Draining { retry_after_secs }) => {
            let doc = Json::Obj(vec![
                (
                    "error".to_owned(),
                    Json::Str("server is draining".to_owned()),
                ),
                ("retry_after_secs".to_owned(), Json::Uint(retry_after_secs)),
            ]);
            respond_with_headers(
                stream,
                "503 Service Unavailable",
                JSON_TYPE,
                &[("Retry-After", &retry_after_secs.to_string())],
                &format!("{doc}\n"),
            )
            .map(|()| "503 Service Unavailable")
        }
        Ok(Admission::Poisoned {
            reason,
            retry_after_secs,
        }) => {
            let doc = Json::Obj(vec![
                (
                    "error".to_owned(),
                    Json::Str("spec quarantined by the poison breaker".to_owned()),
                ),
                ("reason".to_owned(), Json::Str(reason)),
                ("retry_after_secs".to_owned(), Json::Uint(retry_after_secs)),
            ]);
            respond_with_headers(
                stream,
                "409 Conflict",
                JSON_TYPE,
                &[("Retry-After", &retry_after_secs.to_string())],
                &format!("{doc}\n"),
            )
            .map(|()| "409 Conflict")
        }
        Err(e) => error_response(stream, "503 Service Unavailable", &e),
    }
}

fn list_jobs(stream: &mut TcpStream, shared: &Shared) -> io::Result<&'static str> {
    let jobs = shared.table.snapshot();
    let (queued, running) = shared.table.active_counts();
    let doc = Json::Obj(vec![
        (
            "jobs".to_owned(),
            Json::Arr(
                jobs.iter()
                    .map(|j| j.to_json(shared.job_eta_secs(j)))
                    .collect(),
            ),
        ),
        ("queued".to_owned(), Json::Uint(queued as u64)),
        ("running".to_owned(), Json::Uint(running as u64)),
        (
            "bound".to_owned(),
            Json::Uint(shared.admission_bound as u64),
        ),
    ]);
    json_response(stream, "200 OK", &doc)
}

fn job_detail(stream: &mut TcpStream, shared: &Shared, id: &str) -> io::Result<&'static str> {
    let Some(job) = shared.table.get(id) else {
        return error_response(stream, "404 Not Found", &format!("no such job `{id}`"));
    };
    let mut doc = job.to_json(shared.job_eta_secs(&job));
    if let Json::Obj(members) = &mut doc {
        members.push(("artifacts".to_owned(), artifact_names(shared, id)));
        members.push(("spec".to_owned(), job.spec.to_json()));
    }
    json_response(stream, "200 OK", &doc)
}

fn artifact_names(shared: &Shared, id: &str) -> Json {
    let mut names: Vec<String> = std::fs::read_dir(shared.job_dir(id))
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n != "stdout.partial")
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    Json::Arr(names.into_iter().map(Json::Str).collect())
}

fn job_result(stream: &mut TcpStream, shared: &Shared, id: &str) -> io::Result<&'static str> {
    let Some(job) = shared.table.get(id) else {
        return error_response(stream, "404 Not Found", &format!("no such job `{id}`"));
    };
    if !job.state.is_terminal() {
        return error_response(
            stream,
            "409 Conflict",
            &format!("job `{id}` is still {}", job.state.as_str()),
        );
    }
    let mut doc = job.to_json(None);
    if let Json::Obj(members) = &mut doc {
        members.push(("artifacts".to_owned(), artifact_names(shared, id)));
    }
    json_response(stream, "200 OK", &doc)
}

fn artifact(
    stream: &mut TcpStream,
    shared: &Shared,
    id: &str,
    name: &str,
) -> io::Result<&'static str> {
    if shared.table.get(id).is_none() {
        return error_response(stream, "404 Not Found", &format!("no such job `{id}`"));
    }
    // Artifact names are flat files inside the job dir; anything that
    // could traverse out is refused outright.
    let safe = !name.is_empty()
        && name != "."
        && name != ".."
        && !name.contains(['/', '\\'])
        && !name.contains('\0');
    if !safe {
        return error_response(stream, "400 Bad Request", "invalid artifact name");
    }
    let path = shared.job_dir(id).join(name);
    let Ok(bytes) = std::fs::read(&path) else {
        return error_response(
            stream,
            "404 Not Found",
            &format!("job `{id}` has no artifact `{name}`"),
        );
    };
    let content_type = if name.ends_with(".json") {
        JSON_TYPE
    } else if name.ends_with(".html") {
        "text/html; charset=utf-8"
    } else if name.ends_with(".bin") {
        "application/octet-stream"
    } else {
        TEXT_TYPE
    };
    // Artifacts can be binary (trace .bin); bypass the string-typed
    // responder.
    use std::io::Write;
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        bytes.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush().map(|()| "200 OK")
}

fn cancel(stream: &mut TcpStream, shared: &Shared, id: &str) -> io::Result<&'static str> {
    if shared.table.get(id).is_none() {
        return error_response(stream, "404 Not Found", &format!("no such job `{id}`"));
    }
    // Queued and still in the run queue: remove it (so no runner can
    // claim it from here on) and finish immediately.
    if shared.queue.remove(id) {
        shared.finish_job(id, JobState::Cancelled, None, 0.0, None);
        let doc = Json::Obj(vec![
            ("id".to_owned(), Json::Str(id.to_owned())),
            ("state".to_owned(), Json::Str("cancelled".to_owned())),
        ]);
        return json_response(stream, "200 OK", &doc);
    }
    // Claimed by a runner, parked for a retry, or racing completion:
    // the table decides under its own lock, so a cancel can never be
    // requested after the job went terminal (the DELETE/completion
    // race resolves to exactly one of 202 or 409).
    match shared.table.request_cancel(id) {
        CancelVerdict::NotFound => {
            error_response(stream, "404 Not Found", &format!("no such job `{id}`"))
        }
        CancelVerdict::Terminal(state) => error_response(
            stream,
            "409 Conflict",
            &format!("job `{id}` already {}", state.as_str()),
        ),
        CancelVerdict::Requested => {
            let doc = Json::Obj(vec![
                ("id".to_owned(), Json::Str(id.to_owned())),
                ("state".to_owned(), Json::Str("cancelling".to_owned())),
            ]);
            json_response(stream, "202 Accepted", &doc)
        }
    }
}

fn metrics(stream: &mut TcpStream, shared: &Shared) -> io::Result<&'static str> {
    let mut body = spindle_obs::PromSink
        .export_string(&shared.registry.snapshot())
        .unwrap_or_default();
    let mut appendix = Vec::new();
    if spindle_obs::prom::write_windowed(&mut appendix, &shared.rollups.snapshot()).is_ok() {
        body.push_str(&String::from_utf8_lossy(&appendix));
    }
    body.push_str(&job_series(shared));
    respond(stream, "200 OK", spindle_obs::prom::CONTENT_TYPE, &body).map(|()| "200 OK")
}

/// Per-job labeled series, *active jobs only*: cardinality is bounded
/// by queue bound plus parallelism, and a job's series vanish from the
/// exposition on the first scrape after it goes terminal.
fn job_series(shared: &Shared) -> String {
    use spindle_obs::prom::label_value;
    use std::fmt::Write as _;
    let jobs = shared.table.snapshot();
    let active: Vec<_> = jobs.iter().filter(|j| !j.state.is_terminal()).collect();
    if active.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("# TYPE serve_job_state gauge\n");
    for j in &active {
        let _ = writeln!(
            out,
            "serve_job_state{{job=\"{}\",state=\"{}\"}} 1",
            label_value(&j.id),
            j.state.as_str()
        );
    }
    let tels: Vec<_> = active
        .iter()
        .map(|j| (label_value(&j.id), shared.telemetry.get(&j.id)))
        .collect();
    out.push_str("# TYPE serve_job_progress gauge\n");
    for (id, tel) in &tels {
        let completed = tel.as_ref().map_or(0, |t| t.progress().1);
        let _ = writeln!(out, "serve_job_progress{{job=\"{id}\"}} {completed}");
    }
    out.push_str("# TYPE serve_job_progress_total gauge\n");
    for (id, tel) in &tels {
        let total = tel.as_ref().map_or(0, |t| t.progress().2);
        let _ = writeln!(out, "serve_job_progress_total{{job=\"{id}\"}} {total}");
    }
    out.push_str("# TYPE serve_job_telemetry_frames gauge\n");
    for (id, tel) in &tels {
        let frames = tel.as_ref().map_or(0, |t| t.frames.load(Ordering::Relaxed));
        let _ = writeln!(out, "serve_job_telemetry_frames{{job=\"{id}\"}} {frames}");
    }
    out
}

/// The retained span set of one job, packaged for trace assembly.
fn collect_spans(id: &str, tel: &crate::telemetry::JobTelemetry) -> crate::trace::JobSpans {
    let (spans, dropped) = tel.trace_spans();
    crate::trace::JobSpans {
        id: id.to_owned(),
        spans,
        offset_ns: tel.child_offset_ns(),
        dropped,
    }
}

/// `GET /jobs/ID/trace`: the job's causal trace as a self-contained
/// Chrome trace-event document, loadable in Perfetto as-is.
fn job_trace(stream: &mut TcpStream, shared: &Shared, id: &str) -> io::Result<&'static str> {
    if shared.table.get(id).is_none() {
        return error_response(stream, "404 Not Found", &format!("no such job `{id}`"));
    }
    let doc = crate::trace::job_trace_doc(&collect_spans(id, &shared.job_telemetry(id)));
    json_response(stream, "200 OK", &doc)
}

/// `GET /trace`: every job's spans merged onto the daemon timeline,
/// each job shifted by its telemetry epoch's distance from the fleet
/// epoch, tracks prefixed with the job id.
fn daemon_trace(stream: &mut TcpStream, shared: &Shared) -> io::Result<&'static str> {
    let mut jobs = Vec::new();
    for job in shared.table.snapshot() {
        let Some(tel) = shared.telemetry.get(&job.id) else {
            continue;
        };
        let collected = collect_spans(&job.id, &tel);
        if collected.spans.is_empty() && collected.dropped == 0 {
            continue;
        }
        let shift_ns = tel
            .epoch()
            .checked_duration_since(shared.fleet.epoch())
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        jobs.push((collected, shift_ns));
    }
    let doc = crate::trace::daemon_trace_doc(&jobs);
    json_response(stream, "200 OK", &doc)
}

fn job_timescales(stream: &mut TcpStream, shared: &Shared, id: &str) -> io::Result<&'static str> {
    let Some(job) = shared.table.get(id) else {
        return error_response(stream, "404 Not Found", &format!("no such job `{id}`"));
    };
    let tel = shared.job_telemetry(id);
    let doc = Json::Obj(vec![
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("state".to_owned(), Json::Str(job.state.as_str().to_owned())),
        (
            "frames".to_owned(),
            Json::Uint(tel.frames.load(Ordering::Relaxed)),
        ),
        (
            "bytes".to_owned(),
            Json::Uint(tel.bytes.load(Ordering::Relaxed)),
        ),
        (
            "decode_errors".to_owned(),
            Json::Uint(tel.decode_errors.load(Ordering::Relaxed)),
        ),
        (
            "torn".to_owned(),
            Json::Bool(tel.torn.load(Ordering::Relaxed)),
        ),
        ("rollups".to_owned(), tel.rollups_json()),
        ("reported".to_owned(), tel.reported_json()),
    ]);
    json_response(stream, "200 OK", &doc)
}

/// `GET /jobs/ID/events`: takes the connection onto a dedicated
/// thread and streams Server-Sent Events until the job is terminal
/// (or the daemon stops, or the watcher goes away).
fn events(mut stream: TcpStream, shared: &Arc<Shared>, id: &str) -> io::Result<&'static str> {
    if shared.table.get(id).is_none() {
        return error_response(&mut stream, "404 Not Found", &format!("no such job `{id}`"));
    }
    if shared.event_streams.fetch_add(1, Ordering::AcqRel) >= MAX_EVENT_STREAMS {
        shared.event_streams.fetch_sub(1, Ordering::AcqRel);
        shared.registry.counter("serve.events.rejected").inc();
        let doc = Json::Obj(vec![(
            "error".to_owned(),
            Json::Str("too many concurrent event streams".to_owned()),
        )]);
        return respond_with_headers(
            &mut stream,
            "503 Service Unavailable",
            JSON_TYPE,
            &[("Retry-After", &EVENTS_RETRY_AFTER_SECS.to_string())],
            &format!("{doc}\n"),
        )
        .map(|()| "503 Service Unavailable");
    }
    let shared = Arc::clone(shared);
    let id = id.to_owned();
    let spawned = std::thread::Builder::new()
        .name("serve-events".to_owned())
        .spawn({
            let shared = Arc::clone(&shared);
            move || {
                let _ = stream_events(&mut stream, &shared, &id);
                shared.event_streams.fetch_sub(1, Ordering::AcqRel);
            }
        });
    if let Err(e) = spawned {
        shared.event_streams.fetch_sub(1, Ordering::AcqRel);
        return Err(e);
    }
    Ok("200 OK")
}

fn stream_events(stream: &mut TcpStream, shared: &Shared, id: &str) -> io::Result<()> {
    use std::io::Write;
    stream.set_write_timeout(Some(EVENTS_WRITE_TIMEOUT))?;
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    let tel = shared.job_telemetry(id);
    let mut cursor = 0u64;
    loop {
        let (dropped, batch, next) = tel.events_since(cursor);
        cursor = next;
        if dropped > 0 {
            // Exact loss accounting, in-band: for any watcher,
            // received + dropped == events produced.
            shared.registry.counter("serve.events.dropped").add(dropped);
            stream.write_all(
                format!("event: dropped\ndata: {{\"dropped\":{dropped}}}\n\n").as_bytes(),
            )?;
        }
        for (seq, event) in &batch {
            stream.write_all(format!("id: {seq}\ndata: {event}\n\n").as_bytes())?;
        }
        stream.flush()?;
        if batch.is_empty() {
            // The terminal `end` event is pushed before the table
            // flips terminal, so "terminal and fully drained" means
            // the watcher has seen it.
            let terminal = shared.table.get(id).is_none_or(|j| j.state.is_terminal());
            if terminal {
                stream.write_all(b"event: end\ndata: {}\n\n")?;
                return stream.flush();
            }
            if shared.stop.load(Ordering::Acquire) {
                return Ok(());
            }
            std::thread::sleep(EVENTS_POLL);
        }
    }
}
