//! Per-job supervision: the watchdog thread, retry scheduling with
//! deterministic backoff, the poison-spec circuit breaker, and
//! graceful-drain state.
//!
//! The runner stays the sole owner of each child process; supervision
//! only ever *requests* kills by setting a job's [`KillReason`] flag
//! and decides what happens after an attempt ends:
//!
//! * **Deadlines** — a running job past its effective `deadline_secs`
//!   is killed and finished `timed_out` (terminal; a deadline is a
//!   budget, not a transient).
//! * **Stalls** — a child that spoke the telemetry frame protocol and
//!   then went silent for `--stall-timeout` seconds is killed; stalls
//!   are treated as transient and retried.
//! * **Retries** — transient failures (killed child, stall) re-enqueue
//!   with exponential backoff plus deterministic jitter derived from
//!   the job id and attempt ordinal, so a resumed daemon replays the
//!   same schedule. Each retry is journaled as an `attempt` record
//!   before the job re-queues.
//! * **Quarantine + breaker** — a spec that burns every attempt
//!   finishes `quarantined` (or `stalled` when the last failure was a
//!   stall) and opens a circuit breaker keyed by the spec fingerprint:
//!   identical resubmissions are fast-rejected (409) until a cooldown
//!   elapses, at which point the breaker half-opens and one attempt is
//!   admitted again.
//! * **Drain** — `begin_drain` stops admission (503 + `Retry-After`)
//!   and stops runners from claiming queued work; running jobs get up
//!   to the drain timeout before a `Drain` kill. Drain-killed and
//!   still-queued jobs write no terminal journal record, so a restart
//!   with `--resume-dir` re-adopts every one of them.

use crate::job::{JobState, KillReason};
use crate::queue::PushError;
use crate::Shared;
use spindle_obs::json::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Watchdog cadence: how often deadlines, stalls, and due retries are
/// checked. Coarse enough to be free, fine enough that a 1-second
/// deadline means roughly one second.
const WATCHDOG_TICK: Duration = Duration::from_millis(100);

/// Ceiling on a computed retry backoff.
const MAX_BACKOFF_MS: u64 = 30_000;

/// Bound on tracked poison fingerprints; oldest entries fall off so a
/// hostile client cannot grow the breaker table without bound.
const BREAKER_CAP: usize = 64;

/// A job waiting out its retry backoff (it is in the table as
/// `queued` but deliberately not in the run queue yet).
struct PendingRetry {
    id: String,
    due: Instant,
}

/// One open breaker entry: a spec fingerprint and when it half-opens.
struct BreakerEntry {
    fingerprint: u64,
    open_until: Instant,
    reason: String,
}

/// Supervision state shared across the daemon.
pub(crate) struct Supervisor {
    draining: AtomicBool,
    pending: Mutex<Vec<PendingRetry>>,
    breaker: Mutex<Vec<BreakerEntry>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    pub(crate) fn new() -> Supervisor {
        Supervisor {
            draining: AtomicBool::new(false),
            pending: Mutex::new(Vec::new()),
            breaker: Mutex::new(Vec::new()),
        }
    }

    /// Whether the daemon is draining (admission and runner claims
    /// both check this).
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Flips to draining; `true` on the first call.
    pub(crate) fn begin_drain(&self) -> bool {
        !self.draining.swap(true, Ordering::AcqRel)
    }

    /// Parks a retry until `due`.
    fn schedule(&self, id: String, due: Instant) {
        self.pending
            .lock()
            .expect("pending retries lock")
            .push(PendingRetry { id, due });
    }

    /// Opens (or re-opens) the breaker for a fingerprint.
    pub(crate) fn breaker_open(&self, fingerprint: u64, reason: String, cooldown: Duration) {
        let mut breaker = self.breaker.lock().expect("breaker lock");
        breaker.retain(|e| e.fingerprint != fingerprint);
        breaker.push(BreakerEntry {
            fingerprint,
            open_until: Instant::now() + cooldown,
            reason,
        });
        while breaker.len() > BREAKER_CAP {
            breaker.remove(0);
        }
    }

    /// Checks a fingerprint against open breakers. Returns the stored
    /// reason and the seconds until half-open when the breaker is
    /// still open; an expired entry is removed (half-open: the next
    /// identical spec gets one real attempt again).
    pub(crate) fn breaker_check(&self, fingerprint: u64) -> Option<(String, u64)> {
        let mut breaker = self.breaker.lock().expect("breaker lock");
        let now = Instant::now();
        breaker.retain(|e| e.fingerprint != fingerprint || e.open_until > now);
        breaker
            .iter()
            .find(|e| e.fingerprint == fingerprint)
            .map(|e| {
                let secs = e.open_until.saturating_duration_since(now).as_secs().max(1);
                (e.reason.clone(), secs)
            })
    }
}

/// FNV-1a over a spec's canonical JSON: the breaker's identity key.
/// Canonical rendering means field order cannot disguise a poison
/// spec.
#[must_use]
pub(crate) fn fingerprint(spec: &crate::spec::JobSpec) -> u64 {
    fnv1a(spec.to_json().to_string().as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `base * 2^attempt` plus deterministic jitter in `[0, base)` mixed
/// from the job id and attempt ordinal, capped at
/// [`MAX_BACKOFF_MS`]. Same id + attempt always backs off the same
/// amount, so a replayed journal reproduces the schedule exactly.
#[must_use]
pub(crate) fn backoff_ms(base_ms: u64, attempt: u32, id: &str) -> u64 {
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(16));
    let mut mix = fnv1a(id.as_bytes()) ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // splitmix64 finalizer: spreads the low bits the modulo keeps.
    mix = (mix ^ (mix >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    mix = (mix ^ (mix >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    mix ^= mix >> 31;
    let jitter = mix % base;
    exp.saturating_add(jitter).min(MAX_BACKOFF_MS)
}

/// Decides what a retryable failure becomes. `None` means another
/// attempt was scheduled: the `attempt` record is journaled, the table
/// record reset to `queued`, and the job parked until its backoff
/// elapses. `Some((state, detail))` means the retry budget is spent:
/// the breaker is already open and the caller finishes the job as
/// `state` — [`JobState::Stalled`] for stall kills,
/// [`JobState::Quarantined`] otherwise — with `detail` as the error.
pub(crate) fn handle_retryable(
    shared: &Shared,
    id: &str,
    exhausted: JobState,
    reason: &str,
    error: Option<&str>,
    attempt_secs: f64,
) -> Option<(JobState, String)> {
    let job = shared.table.get(id)?;
    let attempt = job.attempt;
    if attempt >= shared.config.max_retries {
        let detail = format!(
            "{reason}; retries exhausted after {} attempt(s){}",
            u64::from(attempt) + 1,
            error.map(|e| format!(": {e}")).unwrap_or_default()
        );
        shared.supervisor.breaker_open(
            fingerprint(&job.spec),
            detail.clone(),
            Duration::from_secs(shared.config.breaker_cooldown_secs),
        );
        shared.job_telemetry(id).trace_instant(
            "daemon",
            "retries.exhausted",
            vec![
                ("reason".to_owned(), Json::Str(reason.to_owned())),
                ("state".to_owned(), Json::Str(exhausted.as_str().to_owned())),
            ],
        );
        return Some((exhausted, detail));
    }
    let next = attempt + 1;
    let backoff = backoff_ms(shared.config.retry_base_ms, attempt, id);
    shared.journal_attempt(id, next, reason, backoff, attempt_secs);
    shared.table.update(id, |j| {
        j.attempt = next;
        j.state = JobState::Queued;
        j.started = None;
        j.exit = None;
        j.secs = None;
        j.error = None;
        j.clear_kill();
    });
    shared.job_telemetry(id).event(
        "retry",
        vec![
            ("attempt", Json::Uint(u64::from(next))),
            ("reason", Json::Str(reason.to_owned())),
            ("backoff_ms", Json::Uint(backoff)),
        ],
    );
    shared.registry.counter("serve.jobs_retried").inc();
    let due = Instant::now() + Duration::from_millis(backoff);
    // The backoff itself shows up on the trace as a span, and the next
    // attempt's queue wait starts at the due time, not now.
    let tel = shared.job_telemetry(id);
    tel.trace_span(
        "daemon",
        "retry.backoff",
        Instant::now(),
        Duration::from_millis(backoff),
        vec![
            ("attempt".to_owned(), Json::Uint(u64::from(next))),
            ("reason".to_owned(), Json::Str(reason.to_owned())),
            ("backoff_ms".to_owned(), Json::Uint(backoff)),
        ],
    );
    tel.mark_runnable(due);
    shared.supervisor.schedule(id.to_owned(), due);
    shared.refresh_gauges();
    None
}

/// The watchdog thread body: promotes due retries into the run queue,
/// kills running jobs past their deadline, and kills children whose
/// telemetry went silent.
pub(crate) fn spawn_watchdog(shared: &Arc<Shared>) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("serve-watchdog".to_owned())
        .spawn(move || {
            while !shared.stop.load(Ordering::Acquire) {
                promote_due_retries(&shared);
                check_running(&shared);
                std::thread::sleep(WATCHDOG_TICK);
            }
        })
        .expect("spawn watchdog thread")
}

fn promote_due_retries(shared: &Shared) {
    let now = Instant::now();
    let due: Vec<String> = {
        let mut pending = shared
            .supervisor
            .pending
            .lock()
            .expect("pending retries lock");
        let mut due = Vec::new();
        pending.retain(|p| {
            if p.due <= now {
                due.push(p.id.clone());
                false
            } else {
                true
            }
        });
        due
    };
    for id in due {
        let Some(job) = shared.table.get(&id) else {
            continue;
        };
        if job.kill_reason() == Some(KillReason::Cancel) {
            // Cancelled while waiting out the backoff: finish without
            // ever re-running.
            shared.finish_job(&id, JobState::Cancelled, None, 0.0, None);
            continue;
        }
        if shared.supervisor.is_draining() {
            // Deliberately dropped on the floor: the journal has no
            // terminal record for it, so a resume restart re-adopts.
            continue;
        }
        match shared.queue.push(id.clone()) {
            Ok(()) => {}
            // Queue momentarily full of fresh admissions: try again
            // next tick.
            Err(PushError::Full) => shared.supervisor.schedule(id, now),
            Err(PushError::Closed) => {}
        }
    }
}

fn check_running(shared: &Shared) {
    for job in shared.table.snapshot() {
        if job.state != JobState::Running || job.kill_reason().is_some() {
            continue;
        }
        if let (Some(deadline), Some(t0)) = (job.deadline_secs, job.started) {
            if t0.elapsed().as_secs_f64() > deadline as f64 {
                if job.request_kill(KillReason::Deadline) {
                    shared.job_telemetry(&job.id).event(
                        "watchdog",
                        vec![
                            ("action", Json::Str("deadline-kill".to_owned())),
                            ("deadline_secs", Json::Uint(deadline)),
                        ],
                    );
                }
                continue;
            }
        }
        if let Some(stall) = shared.config.stall_timeout_secs {
            let Some(tel) = shared.telemetry.get(&job.id) else {
                continue;
            };
            // Only children that spoke the frame protocol can stall;
            // silence from a mute child means nothing.
            if let Some(silence) = tel.frame_silence_secs() {
                if silence > stall as f64 && job.request_kill(KillReason::Stall) {
                    tel.event(
                        "watchdog",
                        vec![
                            ("action", Json::Str("stall-kill".to_owned())),
                            ("silence_secs", Json::Num(silence)),
                        ],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_deterministically_and_caps() {
        let b0 = backoff_ms(500, 0, "job-0001");
        let b1 = backoff_ms(500, 1, "job-0001");
        let b2 = backoff_ms(500, 2, "job-0001");
        assert!((500..1000).contains(&b0), "{b0}");
        assert!((1000..1500).contains(&b1), "{b1}");
        assert!((2000..2500).contains(&b2), "{b2}");
        assert_eq!(b1, backoff_ms(500, 1, "job-0001"), "deterministic");
        assert_ne!(
            backoff_ms(500, 1, "job-0001") - 1000,
            backoff_ms(500, 1, "job-0002") - 1000,
            "different ids jitter differently"
        );
        assert_eq!(backoff_ms(500, 32, "job-0001"), MAX_BACKOFF_MS, "capped");
        assert!(backoff_ms(0, 0, "job-0001") >= 1, "zero base never spins");
    }

    #[test]
    fn breaker_opens_rejects_then_half_opens() {
        let sup = Supervisor::new();
        assert_eq!(sup.breaker_check(42), None, "closed by default");
        sup.breaker_open(42, "poison".to_owned(), Duration::from_secs(60));
        let (reason, retry_after) = sup.breaker_check(42).expect("open");
        assert_eq!(reason, "poison");
        assert!((1..=60).contains(&retry_after), "{retry_after}");
        assert_eq!(sup.breaker_check(43), None, "other fingerprints pass");
        // Cooldown elapsed: the entry half-opens (is removed) and the
        // next identical spec gets a real attempt.
        sup.breaker_open(42, "poison".to_owned(), Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sup.breaker_check(42), None, "half-open after cooldown");
        // The table is bounded.
        for fp in 0..200u64 {
            sup.breaker_open(fp, "x".to_owned(), Duration::from_secs(60));
        }
        assert!(sup.breaker.lock().unwrap().len() <= BREAKER_CAP);
    }

    #[test]
    fn fingerprints_are_stable_and_field_order_blind() {
        let a =
            crate::spec::JobSpec::parse(r#"{"kind":"generate","env":"web","span":10,"seed":1}"#)
                .unwrap();
        let b =
            crate::spec::JobSpec::parse(r#"{"seed":1,"span":10,"env":"web","kind":"generate"}"#)
                .unwrap();
        let c =
            crate::spec::JobSpec::parse(r#"{"kind":"generate","env":"web","span":10,"seed":2}"#)
                .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "canonical rendering");
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn drain_flag_flips_once() {
        let sup = Supervisor::new();
        assert!(!sup.is_draining());
        assert!(sup.begin_drain(), "first call flips");
        assert!(!sup.begin_drain(), "second call is a no-op");
        assert!(sup.is_draining());
    }
}
