//! Load-test harness: many concurrent clients against a live server.
//!
//! `spindle loadtest URL --clients N --jobs M` spawns `N` client
//! threads that race to submit `M` small generate jobs, recording
//! per-submit latency and the admission verdict, then waits for the
//! server to drain and reports latency percentiles, throughput, and
//! rejection counts. Rejected (429) submissions are *expected* under
//! load — the point of admission control — and are reported, not
//! retried.

use crate::client;
use spindle_obs::json::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-test parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`HOST:PORT` or `http://HOST:PORT`).
    pub url: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total submissions across all clients.
    pub jobs: usize,
    /// `span` seconds of each submitted generate job (small keeps the
    /// drain fast).
    pub span_secs: u64,
    /// How long to wait for the server to drain accepted jobs.
    pub drain_timeout: Duration,
    /// `--watch`: print a live fleet line to stderr while the test
    /// runs (queued / running / done / failed, polled from `/jobs`).
    pub watch: bool,
}

impl LoadConfig {
    /// Defaults: 100 clients, 200 jobs, 5-second spans.
    #[must_use]
    pub fn new(url: &str) -> LoadConfig {
        LoadConfig {
            url: url.to_owned(),
            clients: 100,
            jobs: 200,
            span_secs: 5,
            drain_timeout: Duration::from_secs(180),
            watch: false,
        }
    }
}

/// The harness's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Client threads used.
    pub clients: usize,
    /// Submissions attempted.
    pub jobs: usize,
    /// 201 responses.
    pub accepted: usize,
    /// 429 responses (admission control working as intended).
    pub rejected: usize,
    /// Transport failures or unexpected statuses.
    pub errors: usize,
    /// Submit-latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst submit.
    pub max_ms: f64,
    /// Wall seconds the submission phase took.
    pub submit_secs: f64,
    /// Submissions per wall second.
    pub submits_per_sec: f64,
    /// Whether every accepted job reached a terminal state before the
    /// drain timeout.
    pub drained: bool,
    /// Terminal `done` jobs on the server after the drain.
    pub done: usize,
    /// Terminal `failed` jobs on the server after the drain.
    pub failed: usize,
}

impl LoadReport {
    /// The report as JSON (the `--out` artifact).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clients".to_owned(), Json::Uint(self.clients as u64)),
            ("jobs".to_owned(), Json::Uint(self.jobs as u64)),
            ("accepted".to_owned(), Json::Uint(self.accepted as u64)),
            ("rejected".to_owned(), Json::Uint(self.rejected as u64)),
            ("errors".to_owned(), Json::Uint(self.errors as u64)),
            ("p50_ms".to_owned(), Json::Num(self.p50_ms)),
            ("p90_ms".to_owned(), Json::Num(self.p90_ms)),
            ("p99_ms".to_owned(), Json::Num(self.p99_ms)),
            ("max_ms".to_owned(), Json::Num(self.max_ms)),
            ("submit_secs".to_owned(), Json::Num(self.submit_secs)),
            (
                "submits_per_sec".to_owned(),
                Json::Num(self.submits_per_sec),
            ),
            ("drained".to_owned(), Json::Bool(self.drained)),
            ("done".to_owned(), Json::Uint(self.done as u64)),
            ("failed".to_owned(), Json::Uint(self.failed as u64)),
        ])
    }

    /// A human-readable multi-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "loadtest: {} clients, {} submissions in {:.2}s ({:.0}/s)\n\
               accepted   {:>6}\n\
               rejected   {:>6}  (429 + Retry-After)\n\
               errors     {:>6}\n\
             submit latency: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms\n\
             server drain: done {}, failed {}, drained={}",
            self.clients,
            self.jobs,
            self.submit_secs,
            self.submits_per_sec,
            self.accepted,
            self.rejected,
            self.errors,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.done,
            self.failed,
            self.drained,
        )
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct ClientTally {
    latencies_ms: Vec<f64>,
    accepted: usize,
    rejected: usize,
    errors: usize,
}

/// `--watch`: a background thread that repaints one stderr line with
/// the server's live fleet counts until stopped. Strictly read-only
/// over the server (`GET /jobs`) and entirely on stderr, so report
/// output and artifacts are unchanged by watching.
struct Watcher {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Watcher {
    const POLL: Duration = Duration::from_millis(300);

    fn start(addr: String) -> Watcher {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            use std::io::Write;
            while !stop_flag.load(Ordering::Acquire) {
                if let Ok(listing) = client::request(&addr, "GET", "/jobs", None) {
                    if let Ok(doc) = spindle_obs::json::parse(listing.body.trim()) {
                        let count = |state: &str| {
                            doc.get("jobs")
                                .and_then(|j| match j {
                                    Json::Arr(jobs) => Some(jobs),
                                    _ => None,
                                })
                                .map_or(0, |jobs| {
                                    jobs.iter()
                                        .filter(|j| {
                                            j.get("state").and_then(Json::as_str) == Some(state)
                                        })
                                        .count()
                                })
                        };
                        let queued = doc.get("queued").and_then(Json::as_u64).unwrap_or(0);
                        let running = doc.get("running").and_then(Json::as_u64).unwrap_or(0);
                        eprint!(
                            "\r# watch: queued {queued:>4}  running {running:>3}  \
                             done {:>5}  failed {:>3}  cancelled {:>3}   ",
                            count("done"),
                            count("failed"),
                            count("cancelled"),
                        );
                        let _ = std::io::stderr().flush();
                    }
                }
                std::thread::sleep(Watcher::POLL);
            }
            eprintln!();
        });
        Watcher { stop, handle }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.handle.join();
    }
}

/// Runs the load test.
///
/// # Errors
///
/// Fails when the server is unreachable before the test starts.
pub fn run(config: &LoadConfig) -> Result<LoadReport, String> {
    let addr = client::normalize_addr(&config.url);
    let health = client::request(&addr, "GET", "/healthz", None)
        .map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
    if health.status != 200 {
        return Err(format!(
            "`{addr}` is not healthy (status {})",
            health.status
        ));
    }

    let watcher = config.watch.then(|| Watcher::start(addr.clone()));
    let next = Arc::new(AtomicUsize::new(0));
    let total = config.jobs;
    let span = config.span_secs.max(1);
    let submit_start = Instant::now();
    let workers: Vec<_> = (0..config.clients.max(1))
        .map(|_| {
            let next = Arc::clone(&next);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut tally = ClientTally {
                    latencies_ms: Vec::new(),
                    accepted: 0,
                    rejected: 0,
                    errors: 0,
                };
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        return tally;
                    }
                    // Per-index seeds keep every accepted job's output
                    // distinct and deterministic.
                    let body = format!(
                        "{{\"kind\":\"generate\",\"env\":\"web\",\"span\":{span},\"seed\":{idx}}}"
                    );
                    let t0 = Instant::now();
                    let outcome = client::request(&addr, "POST", "/jobs", Some(&body));
                    tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
                    match outcome {
                        Ok(r) if r.status == 201 => tally.accepted += 1,
                        Ok(r) if r.status == 429 => {
                            // Admission control must come with advice.
                            if r.header("retry-after").is_some() {
                                tally.rejected += 1;
                            } else {
                                tally.errors += 1;
                            }
                        }
                        Ok(_) | Err(_) => tally.errors += 1,
                    }
                }
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let (mut accepted, mut rejected, mut errors) = (0, 0, 0);
    for worker in workers {
        let tally = worker.join().map_err(|_| "client thread panicked")?;
        latencies.extend(tally.latencies_ms);
        accepted += tally.accepted;
        rejected += tally.rejected;
        errors += tally.errors;
    }
    let submit_secs = submit_start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    // Wait for the server to drain everything it accepted.
    let deadline = Instant::now() + config.drain_timeout;
    let (mut drained, mut done, mut failed) = (false, 0, 0);
    while Instant::now() < deadline {
        let Ok(listing) = client::request(&addr, "GET", "/jobs", None) else {
            std::thread::sleep(Duration::from_millis(200));
            continue;
        };
        if let Ok(doc) = spindle_obs::json::parse(listing.body.trim()) {
            let queued = doc.get("queued").and_then(Json::as_u64).unwrap_or(0);
            let running = doc.get("running").and_then(Json::as_u64).unwrap_or(0);
            if queued == 0 && running == 0 {
                drained = true;
                let empty = Vec::new();
                let jobs = match doc.get("jobs") {
                    Some(Json::Arr(jobs)) => jobs,
                    _ => &empty,
                };
                done = jobs
                    .iter()
                    .filter(|j| j.get("state").and_then(Json::as_str) == Some("done"))
                    .count();
                failed = jobs
                    .iter()
                    .filter(|j| j.get("state").and_then(Json::as_str) == Some("failed"))
                    .count();
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    if let Some(watcher) = watcher {
        watcher.stop();
    }

    Ok(LoadReport {
        clients: config.clients.max(1),
        jobs: total,
        accepted,
        rejected,
        errors,
        p50_ms: percentile(&latencies, 0.50),
        p90_ms: percentile(&latencies, 0.90),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        submit_secs,
        submits_per_sec: if submit_secs > 0.0 {
            total as f64 / submit_secs
        } else {
            0.0
        },
        drained,
        done,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_from_the_sorted_tail() {
        let lat = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&lat, 0.50), 3.0);
        assert_eq!(percentile(&lat, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = LoadReport {
            clients: 10,
            jobs: 20,
            accepted: 15,
            rejected: 5,
            errors: 0,
            p50_ms: 1.5,
            p90_ms: 2.5,
            p99_ms: 3.5,
            max_ms: 4.5,
            submit_secs: 0.5,
            submits_per_sec: 40.0,
            drained: true,
            done: 15,
            failed: 0,
        };
        let text = report.render();
        assert!(text.contains("accepted"), "{text}");
        assert!(text.contains("429"), "{text}");
        let doc = report.to_json();
        assert_eq!(doc.get("rejected").and_then(Json::as_u64), Some(5));
        let parsed = spindle_obs::json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("drained"), Some(&Json::Bool(true)));
    }
}
