//! Job runners: N threads draining the queue into child processes.

use crate::job::{JobState, KillReason};
use crate::telemetry::Sink;
use crate::{supervise, Shared};
use spindle_obs::json::Json;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a runner polls its child for exit and for a cancel
/// request.
const CHILD_POLL: Duration = Duration::from_millis(25);

/// How long a runner blocks on the queue before re-checking the stop
/// flag.
const QUEUE_POLL: Duration = Duration::from_millis(200);

/// Bytes of stderr tail attached to a failed job's error field.
const ERROR_TAIL_BYTES: usize = 600;

/// Spawns `n` runner threads.
pub(crate) fn spawn(shared: &Arc<Shared>, n: usize) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("serve-runner-{i}"))
                .spawn(move || runner_loop(&shared))
                .expect("spawn runner thread")
        })
        .collect()
}

fn runner_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::Acquire) {
        if shared.supervisor.is_draining() {
            // Draining: queued work is the next daemon's. It stays in
            // the table as `queued` with no terminal journal record,
            // so a restart with --resume-dir re-adopts it.
            std::thread::sleep(QUEUE_POLL);
            continue;
        }
        let Some(id) = shared.queue.pop(QUEUE_POLL) else {
            if shared.queue.depth() == 0 && shared.stop.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        run_job(shared, &id);
    }
    if shared.supervisor.is_draining() {
        return;
    }
    // Drain what admission already accepted before the stop: those
    // jobs were journaled as submitted and clients were told 201.
    while let Some(id) = shared.queue.pop(Duration::ZERO) {
        run_job(shared, &id);
    }
}

/// How one attempt at a job ended, before supervision classifies it.
enum Attempt {
    /// The child exited on its own with this code (`None`: a signal
    /// nobody here asked for).
    Exited(Option<i32>),
    /// A supervision kill was requested and carried out.
    Killed(KillReason),
    /// The child became unpollable; it was killed defensively.
    Broken,
}

/// Executes one job to a terminal state. Never panics the runner: a
/// failure to spawn or to write artifacts lands the job in `failed`.
fn run_job(shared: &Shared, id: &str) {
    let Some(job) = shared.table.get(id) else {
        return;
    };
    let started = Instant::now();
    shared.table.update(id, |j| {
        j.state = JobState::Running;
        j.started = Some(started);
    });
    shared.refresh_gauges();

    // A kill request that raced the pop: honor it before spawning.
    match job.kill_reason() {
        Some(KillReason::Cancel) => {
            shared.finish_job(id, JobState::Cancelled, None, 0.0, None);
            return;
        }
        Some(KillReason::Drain) => {
            requeue_for_resume(shared, id);
            return;
        }
        _ => {}
    }

    let tel = shared.job_telemetry(id);
    // Each attempt gets a fresh liveness clock: a retry must not be
    // judged stalled by the previous attempt's last frame time.
    tel.mark_alive();
    tel.event("state", vec![("state", Json::Str("running".to_owned()))]);
    let attempt_no = job.attempt;
    // Queue wait: from the instant the job last became runnable
    // (admission, or a retry's due time) to this attempt's start.
    if let Some(runnable) = tel.runnable_at() {
        tel.trace_span(
            "daemon",
            "queue.wait",
            runnable,
            started.saturating_duration_since(runnable),
            vec![("attempt".to_owned(), Json::Uint(u64::from(attempt_no)))],
        );
    }

    let dir = shared.job_dir(id);
    let program = if job.spec.uses_experiments() {
        shared
            .config
            .experiments_bin
            .clone()
            .expect("matrix admission requires the experiments binary")
    } else {
        shared.config.spindle_bin.clone()
    };
    // Each child gets a private loopback telemetry sink; a child built
    // on the pulse exporter connects back and streams progress, one
    // that isn't just leaves the listener idle for the job's lifetime.
    let sink = Sink::bind().ok();
    let sink_addr = sink.as_ref().map(Sink::addr);
    // The trace context is minted deterministically per (job, attempt):
    // a resumed daemon reproduces the same ids, so offline assembly can
    // re-derive the flow parents without any extra state.
    let trace_ctx = spindle_obs::TraceContext::mint(id, attempt_no);
    let spawn = || -> Result<std::process::Child, String> {
        // Admission created this for locally-submitted jobs; a
        // re-adopted job from another daemon's journal may not have
        // one yet.
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create artifact dir `{}`: {e}", dir.display()))?;
        let stdout = std::fs::File::create(dir.join("stdout.partial"))
            .map_err(|e| format!("cannot create stdout capture: {e}"))?;
        let stderr = std::fs::File::create(dir.join("stderr.txt"))
            .map_err(|e| format!("cannot create stderr capture: {e}"))?;
        let mut cmd = Command::new(&program);
        cmd.args(job.spec.argv(&dir))
            .stdin(Stdio::null())
            .stdout(Stdio::from(stdout))
            .stderr(Stdio::from(stderr))
            // The child's fault/telemetry environment is the spec's
            // business, not inherited daemon state.
            .env_remove(spindle_harden::FAULTS_ENV)
            .env_remove(spindle_pulse::SERVE_ENV)
            .env_remove(spindle_pulse::LINGER_ENV)
            .env_remove(spindle_obs::frame::SINK_ENV)
            .env_remove(spindle_obs::context::TRACE_CONTEXT_ENV);
        if let Some(addr) = &sink_addr {
            cmd.env(spindle_obs::frame::SINK_ENV, addr);
            // Only meaningful alongside a sink: the context tells the
            // child its spans belong to this trace and will be
            // collected, so it installs a flight recorder.
            cmd.env(
                spindle_obs::context::TRACE_CONTEXT_ENV,
                trace_ctx.to_string(),
            );
        }
        cmd.spawn()
            .map_err(|e| format!("cannot spawn `{}`: {e}", program.display()))
    };
    let spawn_start = Instant::now();
    let mut child = match spawn() {
        Ok(c) => c,
        Err(e) => {
            tel.trace_instant(
                "daemon",
                "spawn.failed",
                vec![("error".to_owned(), Json::Str(e.clone()))],
            );
            persist_spans(shared, id, &tel);
            shared.finish_job(
                id,
                JobState::Failed,
                None,
                started.elapsed().as_secs_f64(),
                Some(e),
            );
            return;
        }
    };
    tel.trace_span(
        "daemon",
        "spawn",
        spawn_start,
        spawn_start.elapsed(),
        vec![("attempt".to_owned(), Json::Uint(u64::from(attempt_no)))],
    );
    let child_done = Arc::new(AtomicBool::new(false));
    let ingest = sink.map(|s| {
        s.spawn_ingest(
            Arc::clone(&tel),
            Arc::clone(&shared.fleet),
            shared.registry,
            Arc::clone(&child_done),
        )
    });

    let heartbeat = Duration::from_millis(shared.config.heartbeat_ms.max(1));
    let mut last_beat = Instant::now();
    let outcome = loop {
        // A finished child beats a pending kill request: the work is
        // already done, so a racing DELETE or drain changes nothing.
        match child.try_wait() {
            Ok(Some(status)) => break Attempt::Exited(status.code()),
            Ok(None) => {}
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                break Attempt::Broken;
            }
        }
        if let Some(reason) = job.kill_reason() {
            let _ = child.kill();
            let _ = child.wait();
            break Attempt::Killed(reason);
        }
        if last_beat.elapsed() >= heartbeat {
            last_beat = Instant::now();
            tel.event(
                "heartbeat",
                vec![("elapsed_secs", Json::Num(started.elapsed().as_secs_f64()))],
            );
        }
        std::thread::sleep(CHILD_POLL);
    };
    let secs = started.elapsed().as_secs_f64();
    // Let ingest drain the child's final flush (the socket EOFs once
    // the child is gone) before the terminal event is published.
    child_done.store(true, Ordering::Release);
    if let Some(handle) = ingest {
        let _ = handle.join();
    }
    // One `attempt` span per run, spawn to exit, recorded after ingest
    // joins so child spans (and the Hello clock offset) are already in
    // the store when a terminal attempt persists it. Retried attempts
    // accumulate in the same store, so the final trace shows them all.
    tel.trace_span(
        "daemon",
        "attempt",
        started,
        Duration::from_secs_f64(secs.max(0.0)),
        vec![("attempt".to_owned(), Json::Uint(u64::from(attempt_no)))],
    );

    // A drain kill ends the attempt, not the job: no terminal journal
    // record, no artifact promotion. The next --resume-dir daemon
    // re-adopts and re-runs it; determinism makes that lossless.
    if matches!(outcome, Attempt::Killed(KillReason::Drain)) {
        requeue_for_resume(shared, id);
        return;
    }

    let (state, exit, error) = match outcome {
        Attempt::Exited(Some(0)) => (JobState::Done, Some(0), None),
        // A signal death (no code) or the 128+SIGKILL convention is a
        // transient the job didn't choose: retry it.
        Attempt::Exited(code @ (None | Some(KILLED_EXIT))) => {
            let reason = code.map_or_else(
                || "child killed by a signal".to_owned(),
                |c| format!("child killed (exit {c})"),
            );
            match supervise::handle_retryable(
                shared,
                id,
                JobState::Quarantined,
                &reason,
                Some(&stderr_tail(&dir)),
                secs,
            ) {
                None => return,
                Some((state, detail)) => (state, code, Some(detail)),
            }
        }
        Attempt::Exited(code) => (JobState::Failed, code, Some(stderr_tail(&dir))),
        Attempt::Killed(KillReason::Cancel) => (JobState::Cancelled, None, None),
        Attempt::Killed(KillReason::Deadline) => (
            JobState::TimedOut,
            None,
            Some(format!(
                "deadline of {}s exceeded",
                job.deadline_secs.unwrap_or_default()
            )),
        ),
        Attempt::Killed(KillReason::Stall) => {
            match supervise::handle_retryable(
                shared,
                id,
                JobState::Stalled,
                "telemetry stalled",
                None,
                secs,
            ) {
                None => return,
                Some((state, detail)) => (state, None, Some(detail)),
            }
        }
        Attempt::Killed(KillReason::Drain) => unreachable!("drain handled above"),
        Attempt::Broken => (
            JobState::Failed,
            None,
            Some("cannot poll the child process".to_owned()),
        ),
    };
    // Promote the capture to its final name only now, so a crashed
    // daemon's leftover `stdout.partial` is never mistaken for a
    // completed job's output.
    let finalize_start = Instant::now();
    let _ = std::fs::rename(dir.join("stdout.partial"), dir.join("stdout.txt"));
    tel.trace_span(
        "daemon",
        "finalize",
        finalize_start,
        finalize_start.elapsed(),
        vec![("state".to_owned(), Json::Str(state.as_str().to_owned()))],
    );
    // Spans persist before result.json is written so the artifact list
    // includes spans.jsonl, and offline `trace assemble` sees the whole
    // lifecycle through finalization.
    persist_spans(shared, id, &tel);
    write_result(shared, id, state, exit, secs);
    shared.finish_job(id, state, exit, secs, error);
}

/// Persists the job's accumulated trace spans as `spans.jsonl` (best
/// effort, like `result.json`: the journal stays authoritative).
fn persist_spans(shared: &Shared, id: &str, tel: &crate::telemetry::JobTelemetry) {
    let (spans, dropped) = tel.trace_spans();
    if spans.is_empty() && dropped == 0 {
        return;
    }
    let job = crate::trace::JobSpans {
        id: id.to_owned(),
        spans,
        offset_ns: tel.child_offset_ns(),
        dropped,
    };
    let path = shared.job_dir(id).join(crate::trace::SPANS_FILE);
    if let Err(e) = crate::trace::write_spans(&path, &job) {
        eprintln!("# serve: {e}");
    }
}

/// The 128+SIGKILL exit convention: treated like a signal death.
const KILLED_EXIT: i32 = 137;

/// Puts a drain-interrupted job back to `queued` in the table (it is
/// deliberately *not* re-enqueued: the run queue dies with this
/// daemon, the journal's missing terminal record survives).
fn requeue_for_resume(shared: &Shared, id: &str) {
    shared.table.update(id, |j| {
        j.state = JobState::Queued;
        j.started = None;
        j.clear_kill();
    });
    shared
        .job_telemetry(id)
        .event("state", vec![("state", Json::Str("drained".to_owned()))]);
    shared.refresh_gauges();
}

/// A bounded tail of the job's stderr, for the failure report.
fn stderr_tail(dir: &std::path::Path) -> String {
    let text = std::fs::read_to_string(dir.join("stderr.txt")).unwrap_or_default();
    let trimmed = text.trim_end();
    if trimmed.is_empty() {
        return "job exited unsuccessfully (no stderr)".to_owned();
    }
    let tail_start = trimmed
        .char_indices()
        .rev()
        .take(ERROR_TAIL_BYTES)
        .last()
        .map_or(0, |(i, _)| i);
    trimmed[tail_start..].to_owned()
}

/// Writes the `result.json` artifact (best effort; the journal is the
/// durable record).
fn write_result(shared: &Shared, id: &str, state: JobState, exit: Option<i32>, secs: f64) {
    use spindle_obs::json::Json;
    let dir = shared.job_dir(id);
    let mut artifacts: Vec<String> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|name| name != "result.json" && name != "stdout.partial")
                .collect()
        })
        .unwrap_or_default();
    artifacts.sort();
    let doc = Json::Obj(vec![
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("state".to_owned(), Json::Str(state.as_str().to_owned())),
        (
            "exit".to_owned(),
            exit.map_or(Json::Null, |c| Json::Int(i64::from(c))),
        ),
        ("secs".to_owned(), Json::Num(secs)),
        (
            "artifacts".to_owned(),
            Json::Arr(artifacts.into_iter().map(Json::Str).collect()),
        ),
    ]);
    let _ = std::fs::write(dir.join("result.json"), format!("{doc}\n"));
}
