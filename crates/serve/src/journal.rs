//! Crash-recovery journal for the job service.
//!
//! The daemon appends one fsynced JSON line per lifecycle event:
//! `submitted` when a job is admitted (carrying the full spec),
//! `attempt` when supervision re-enqueues it after a transient
//! failure (carrying the retry ordinal, reason, and backoff), and
//! `finished` when it reaches a terminal state. A daemon killed
//! mid-job therefore leaves a journal whose `submitted`-without-
//! `finished` entries are exactly the jobs that still owe work; a
//! restart with `--resume-dir` re-adopts them (re-enqueues, in the
//! original submit order, with their retry budget already spent)
//! and replays terminal entries into the job table as history.
//!
//! Same damage policy as the bench checkpoint journal: a torn *final*
//! line (what SIGKILL mid-write leaves) is ignored, damage before the
//! last well-formed record is an error.

use crate::job::JobState;
use crate::spec::JobSpec;
use spindle_obs::json::{parse, Json};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Schema tag on the journal's header line.
pub const JOURNAL_SCHEMA: &str = "spindle-serve-journal/v1";

/// File name of the journal inside the serve directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One job reconstructed from the journal, in submit order.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJob {
    /// The job id (`job-0001`, ...).
    pub id: String,
    /// The spec it was admitted with.
    pub spec: JobSpec,
    /// Retries the job had consumed (highest journaled `attempt`).
    pub attempts: u32,
    /// Terminal outcome, `None` for jobs still owing work.
    pub finished: Option<Finished>,
}

/// A journaled terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Finished {
    /// The terminal state (done/failed/cancelled).
    pub state: JobState,
    /// Child exit code when one was observed.
    pub exit: Option<i32>,
    /// Wall seconds the job ran.
    pub secs: f64,
}

/// Append-side journal handle; every event is fsynced before the
/// daemon acts on it.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating nothing: the
    /// caller decides whether an existing file is an error).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and header-write failures.
    pub fn create(path: &Path) -> Result<Journal, String> {
        let file = File::create(path)
            .map_err(|e| format!("cannot create journal `{}`: {e}", path.display()))?;
        let mut journal = Journal {
            writer: BufWriter::new(file),
        };
        let header = Json::Obj(vec![(
            "schema".to_owned(),
            Json::Str(JOURNAL_SCHEMA.to_owned()),
        )]);
        journal
            .write_line(&format!("{header}\n"))
            .map_err(|e| format!("cannot write journal header `{}`: {e}", path.display()))?;
        Ok(journal)
    }

    /// Opens an existing journal for appending (resume path).
    ///
    /// # Errors
    ///
    /// Propagates open failures.
    pub fn open_append(path: &Path) -> Result<Journal, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal `{}`: {e}", path.display()))?;
        Ok(Journal {
            writer: BufWriter::new(file),
        })
    }

    /// Journals an admission.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn submitted(&mut self, id: &str, spec: &JobSpec) -> Result<(), String> {
        let doc = Json::Obj(vec![
            ("event".to_owned(), Json::Str("submitted".to_owned())),
            ("id".to_owned(), Json::Str(id.to_owned())),
            ("spec".to_owned(), spec.to_json()),
        ]);
        self.write_line(&format!("{doc}\n"))
            .map_err(|e| format!("cannot journal submission of `{id}`: {e}"))
    }

    /// Journals a retry: the job is back in the queue for attempt
    /// number `attempt` (1-based count of retries consumed), after
    /// `backoff_ms` of delay, because of `reason`.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn attempt(
        &mut self,
        id: &str,
        attempt: u32,
        reason: &str,
        backoff_ms: u64,
        secs: f64,
    ) -> Result<(), String> {
        let doc = Json::Obj(vec![
            ("event".to_owned(), Json::Str("attempt".to_owned())),
            ("id".to_owned(), Json::Str(id.to_owned())),
            ("attempt".to_owned(), Json::Uint(u64::from(attempt))),
            ("reason".to_owned(), Json::Str(reason.to_owned())),
            ("backoff_ms".to_owned(), Json::Uint(backoff_ms)),
            // Wall seconds the failed attempt ran — lets `/jobs/ID/trace`
            // consumers cross-check attempt spans against the journal.
            // Replay ignores it (parse reads only id + attempt), so the
            // schema stays forward- and backward-compatible.
            ("secs".to_owned(), Json::Num(secs)),
        ]);
        self.write_line(&format!("{doc}\n"))
            .map_err(|e| format!("cannot journal retry of `{id}`: {e}"))
    }

    /// Journals a terminal outcome.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn finished(
        &mut self,
        id: &str,
        state: JobState,
        exit: Option<i32>,
        secs: f64,
    ) -> Result<(), String> {
        let doc = Json::Obj(vec![
            ("event".to_owned(), Json::Str("finished".to_owned())),
            ("id".to_owned(), Json::Str(id.to_owned())),
            ("state".to_owned(), Json::Str(state.as_str().to_owned())),
            (
                "exit".to_owned(),
                exit.map_or(Json::Null, |c| Json::Int(i64::from(c))),
            ),
            ("secs".to_owned(), Json::Num(secs)),
        ]);
        self.write_line(&format!("{doc}\n"))
            .map_err(|e| format!("cannot journal completion of `{id}`: {e}"))
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }
}

/// Loads a journal: jobs in submit order, terminal outcomes attached.
///
/// # Errors
///
/// Fails on a missing/invalid header, on damage before the final line,
/// and on events referencing unknown job ids.
pub fn load(path: &Path) -> Result<Vec<LoadedJob>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal `{}`: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("journal `{}` is empty (no header line)", path.display()))?;
    let doc = parse(header).map_err(|e| format!("journal `{}` header: {e}", path.display()))?;
    if doc.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
        return Err(format!(
            "journal `{}` has an unrecognized schema (expected {JOURNAL_SCHEMA})",
            path.display()
        ));
    }
    let mut jobs: Vec<LoadedJob> = Vec::new();
    let mut damaged: Option<u64> = None;
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i as u64 + 2;
        let Some(event) = parse(line).ok().and_then(|doc| parse_event(&doc)) else {
            damaged = Some(line_no);
            continue;
        };
        if let Some(bad) = damaged {
            return Err(format!(
                "journal `{}` line {bad} is damaged but records follow it \
                 — refusing to silently drop a journaled event",
                path.display()
            ));
        }
        match event {
            Event::Submitted(id, spec) => {
                if jobs.iter().any(|j| j.id == id) {
                    return Err(format!(
                        "journal `{}` line {line_no}: job `{id}` submitted twice",
                        path.display()
                    ));
                }
                jobs.push(LoadedJob {
                    id,
                    spec: *spec,
                    attempts: 0,
                    finished: None,
                });
            }
            Event::Attempt(id, attempt) => {
                let Some(job) = jobs.iter_mut().find(|j| j.id == id) else {
                    return Err(format!(
                        "journal `{}` line {line_no}: job `{id}` retried but never submitted",
                        path.display()
                    ));
                };
                job.attempts = job.attempts.max(attempt);
            }
            Event::Finished(id, finished) => {
                let Some(job) = jobs.iter_mut().find(|j| j.id == id) else {
                    return Err(format!(
                        "journal `{}` line {line_no}: job `{id}` finished but never submitted",
                        path.display()
                    ));
                };
                // Last outcome wins (a re-adopted job finishes again).
                job.finished = Some(finished);
            }
        }
    }
    Ok(jobs)
}

enum Event {
    Submitted(String, Box<JobSpec>),
    Attempt(String, u32),
    Finished(String, Finished),
}

fn parse_event(doc: &Json) -> Option<Event> {
    let id = doc.get("id")?.as_str()?.to_owned();
    match doc.get("event")?.as_str()? {
        "submitted" => {
            let spec = JobSpec::from_json(doc.get("spec")?).ok()?;
            Some(Event::Submitted(id, Box::new(spec)))
        }
        "attempt" => {
            let attempt = u32::try_from(doc.get("attempt")?.as_u64()?).ok()?;
            Some(Event::Attempt(id, attempt))
        }
        "finished" => {
            let state = JobState::parse(doc.get("state")?.as_str()?)?;
            if !state.is_terminal() {
                return None;
            }
            let exit = doc.get("exit").and_then(|v| match v {
                Json::Int(c) => i32::try_from(*c).ok(),
                Json::Uint(c) => i32::try_from(*c).ok(),
                _ => None,
            });
            let secs = doc.get("secs")?.as_f64()?;
            Some(Event::Finished(id, Finished { state, exit, secs }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::parse(r#"{"kind":"generate","env":"web","span":30,"seed":5}"#).unwrap()
    }

    #[test]
    fn round_trips_submissions_and_outcomes() {
        let dir = std::env::temp_dir().join(format!("serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let mut journal = Journal::create(&path).unwrap();
        journal.submitted("job-0001", &spec()).unwrap();
        journal.submitted("job-0002", &spec()).unwrap();
        journal
            .finished("job-0001", JobState::Done, Some(0), 1.5)
            .unwrap();
        drop(journal);

        let jobs = load(&path).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "job-0001");
        assert_eq!(
            jobs[0].finished,
            Some(Finished {
                state: JobState::Done,
                exit: Some(0),
                secs: 1.5
            })
        );
        assert_eq!(jobs[1].id, "job-0002");
        assert_eq!(jobs[1].finished, None, "job-0002 still owes work");
        assert_eq!(jobs[1].spec, spec());

        // Re-open for append (the resume path) and finish the orphan.
        let mut journal = Journal::open_append(&path).unwrap();
        journal
            .finished("job-0002", JobState::Failed, Some(101), 0.5)
            .unwrap();
        drop(journal);
        let jobs = load(&path).unwrap();
        assert_eq!(
            jobs[1].finished.as_ref().map(|f| f.state),
            Some(JobState::Failed)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_ignored_but_mid_file_damage_is_an_error() {
        let dir = std::env::temp_dir().join(format!("serve-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let mut journal = Journal::create(&path).unwrap();
        journal.submitted("job-0001", &spec()).unwrap();
        drop(journal);

        // A SIGKILL mid-write leaves a torn final line: harmless.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"event\":\"submitted\",\"id\":\"job-00");
        std::fs::write(&path, &text).unwrap();
        let jobs = load(&path).unwrap();
        assert_eq!(jobs.len(), 1);

        // Damage *before* a well-formed record must refuse to load.
        let good_line = "{\"event\":\"finished\",\"id\":\"job-0001\",\
                         \"state\":\"done\",\"exit\":0,\"secs\":1.0}\n";
        text.push('\n');
        text.push_str(good_line);
        std::fs::write(&path, &text).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("damaged"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attempt_records_replay_and_tolerate_a_torn_tail() {
        let dir =
            std::env::temp_dir().join(format!("serve-journal-attempt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let mut journal = Journal::create(&path).unwrap();
        journal.submitted("job-0001", &spec()).unwrap();
        journal
            .attempt("job-0001", 1, "child killed by signal", 512, 1.25)
            .unwrap();
        journal
            .attempt("job-0001", 2, "telemetry stalled", 1024, 0.75)
            .unwrap();
        drop(journal);

        let jobs = load(&path).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].attempts, 2, "highest attempt ordinal wins");
        assert_eq!(jobs[0].finished, None);

        // SIGKILL mid-append can tear the *attempt* record too: the
        // torn tail is dropped, the replayed retry count is what the
        // intact prefix says, and the surviving bytes are untouched.
        let intact = std::fs::read_to_string(&path).unwrap();
        let torn = format!("{intact}{{\"event\":\"attempt\",\"id\":\"job-0001\",\"atte");
        std::fs::write(&path, &torn).unwrap();
        let jobs = load(&path).unwrap();
        assert_eq!(jobs[0].attempts, 2, "torn attempt record is ignored");
        let reread = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            reread.as_bytes(),
            torn.as_bytes(),
            "loading never rewrites the journal"
        );
        assert!(reread.as_bytes().starts_with(intact.as_bytes()));

        // An attempt for an unknown id is a structured refusal.
        let mut bad = Journal::create(&path).unwrap();
        bad.attempt("job-0404", 1, "ghost", 1, 0.0).unwrap();
        drop(bad);
        assert!(load(&path).unwrap_err().contains("never submitted"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_and_reference_damage_are_structured_errors() {
        let dir = std::env::temp_dir().join(format!("serve-journal-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);

        std::fs::write(&path, "").unwrap();
        assert!(load(&path).unwrap_err().contains("empty"));
        std::fs::write(&path, "{\"schema\":\"other/v9\"}\n").unwrap();
        assert!(load(&path).unwrap_err().contains("unrecognized schema"));
        std::fs::write(
            &path,
            format!(
                "{{\"schema\":\"{JOURNAL_SCHEMA}\"}}\n{{\"event\":\"finished\",\
                 \"id\":\"job-0009\",\"state\":\"done\",\"exit\":0,\"secs\":1.0}}\n"
            ),
        )
        .unwrap();
        assert!(load(&path).unwrap_err().contains("never submitted"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
