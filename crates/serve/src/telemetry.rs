//! Daemon-side half of the cross-process telemetry plane.
//!
//! Every job child the runner spawns gets a private loopback sink
//! address in [`SINK_ENV`](spindle_obs::frame::SINK_ENV); a child
//! built on `spindle-pulse` connects back and streams
//! [`Frame`](spindle_obs::frame::Frame)s — registry snapshots,
//! progress, log-tail lines, and a final rollup-window flush. This
//! module owns everything the daemon keeps per job:
//!
//! * [`JobTelemetry`] — a wall-axis [`RollupSet`] rebuilt from the
//!   child's snapshots, a bounded [`EventRing`] feeding
//!   `GET /jobs/ID/events`, progress state driving the job ETA, and
//!   the child's own reported window batches.
//! * [`Fleet`] — the daemon-wide merged wheel: every per-job snapshot
//!   delta is banked into it as well, so the fleet's lifetime totals
//!   equal the sum of the per-job totals bucket-for-bucket (the same
//!   exact-merge invariant the in-process wheel keeps on eviction).
//! * [`Sink`] — the per-job listener plus the ingest thread that
//!   decodes the stream. Hostile bytes can never hurt the daemon: a
//!   decode error is counted, noted on the event stream, and ends
//!   ingest for that job (the framing has no resync point), nothing
//!   more.
//!
//! Backpressure policy, receiver side: the event ring is bounded, and
//! a consumer that falls behind loses the oldest events — never the
//! newest — with the exact count of what it missed reported in-band.
//! `received + dropped == produced` always holds, so a watcher can
//! tell silence from loss.

use crate::trace::{SpanOrigin, TraceSpan};
use spindle_obs::frame::{Frame, FrameDecoder, WindowBatch};
use spindle_obs::json::Json;
use spindle_obs::rollup::{snapshot_delta, WindowAccum};
use spindle_obs::{MetricsRegistry, RollupSet, Snapshot};
use std::collections::{BTreeMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default per-job event ring capacity ([`crate::ServeConfig`] can
/// lower it; tests do, to force drops deterministically).
pub(crate) const DEFAULT_EVENT_RING_CAP: usize = 256;

/// Default runner heartbeat cadence in milliseconds: lifecycle events
/// pushed while a child runs, so even a child that never speaks the
/// frame protocol produces a live event stream.
pub(crate) const DEFAULT_HEARTBEAT_MS: u64 = 250;

/// Accept-poll interval on the per-job sink listener.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read timeout on an accepted ingest stream (bounds how long the
/// ingest thread takes to notice the child is gone).
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// How long ingest keeps draining after the child exited — the final
/// flush races process death, and loopback delivery is fast.
const DRAIN_GRACE: Duration = Duration::from_millis(2000);

/// Progress samples required before the per-job ETA is published —
/// the same steady-window clamp the `/status` rate estimator applies
/// (`spindle_pulse::sampler::MIN_STEADY_SAMPLES`), so one early burst
/// cannot fabricate a wildly optimistic ETA.
const MIN_ETA_SAMPLES: usize = 4;

/// Bounded progress-sample window per job.
const ETA_SAMPLE_WINDOW: usize = 64;

/// Bound on trace spans retained per job — daemon lifecycle spans plus
/// whatever the child ships. Overflow is counted, never silently lost:
/// `retained + dropped == produced` holds for spans exactly as it does
/// for the event ring.
pub(crate) const TRACE_SPAN_CAP: usize = 4096;

/// Slice of [`TRACE_SPAN_CAP`] held back for daemon-origin spans. A
/// chatty child can ship tens of thousands of sim spans; if they could
/// fill the whole store, the handful of lifecycle spans recorded at
/// the *end* of an attempt (the attempt span itself, finalize) would
/// be the first casualties — and they are the part of the trace only
/// the daemon can tell.
pub(crate) const DAEMON_SPAN_RESERVE: usize = 256;

/// Bounded span buffer with exact drop accounting. Child (bulk) spans
/// may use at most `cap - reserve` slots; daemon spans may use any
/// slot up to `cap`.
struct SpanStore {
    cap: usize,
    reserve: usize,
    bulk: usize,
    spans: Vec<TraceSpan>,
    dropped: u64,
}

impl SpanStore {
    fn new(cap: usize) -> SpanStore {
        let cap = cap.max(2);
        SpanStore {
            cap,
            reserve: DAEMON_SPAN_RESERVE.min(cap / 2),
            bulk: 0,
            spans: Vec::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, span: TraceSpan) {
        let fits = if span.origin == SpanOrigin::Daemon {
            self.spans.len() < self.cap
        } else {
            self.spans.len() < self.cap && self.bulk < self.cap - self.reserve
        };
        if fits {
            if span.origin != SpanOrigin::Daemon {
                self.bulk += 1;
            }
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }
}

/// A bounded, sequence-numbered event buffer. Producers never block:
/// when full, the oldest event is evicted and the gap stays visible as
/// a sequence-number hole, so every consumer can compute exactly how
/// many events it missed.
pub(crate) struct EventRing {
    cap: usize,
    next_seq: u64,
    events: VecDeque<(u64, String)>,
}

impl EventRing {
    fn new(cap: usize) -> EventRing {
        EventRing {
            cap: cap.max(1),
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    fn push(&mut self, rendered: String) {
        self.events.push_back((self.next_seq, rendered));
        self.next_seq += 1;
        while self.events.len() > self.cap {
            self.events.pop_front();
        }
    }

    /// Everything at or after `cursor`, plus the exact count of events
    /// in `[cursor, oldest_retained)` that were evicted before this
    /// consumer saw them. The caller's next cursor is [`next_seq`].
    ///
    /// [`next_seq`]: EventRing::next_seq
    fn since(&self, cursor: u64) -> (u64, Vec<(u64, String)>) {
        let dropped = match self.events.front() {
            Some(&(front, _)) if front > cursor => front - cursor,
            Some(_) => 0,
            None => self.next_seq.saturating_sub(cursor),
        };
        let out = self
            .events
            .iter()
            .filter(|(seq, _)| *seq >= cursor)
            .cloned()
            .collect();
        (dropped, out)
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("cap", &self.cap)
            .field("next_seq", &self.next_seq)
            .field("retained", &self.events.len())
            .finish()
    }
}

/// Progress reported by the job's own frames, with the sample window
/// the ETA is derived from.
#[derive(Default)]
struct ProgressState {
    phase: String,
    completed: u64,
    total: u64,
    /// `(daemon seconds since telemetry epoch, completed)` samples.
    samples: VecDeque<(f64, u64)>,
}

impl ProgressState {
    /// Remaining work over the observed recent rate; `None` until the
    /// steady window fills (or when the job reports no total).
    fn eta_secs(&self) -> Option<f64> {
        if self.total == 0 || self.completed >= self.total || self.samples.len() < MIN_ETA_SAMPLES {
            return None;
        }
        let (t0, c0) = *self.samples.front()?;
        let (t1, c1) = *self.samples.back()?;
        let dt = t1 - t0;
        let dc = c1.saturating_sub(c0);
        if dt <= 0.0 || dc == 0 {
            return None;
        }
        let rate = dc as f64 / dt;
        Some((self.total - self.completed) as f64 / rate)
    }
}

/// Everything the daemon holds for one job's telemetry.
pub(crate) struct JobTelemetry {
    epoch: Instant,
    /// The job's wall-axis wheel, rebuilt from the child's snapshots.
    rollups: RollupSet,
    events: Mutex<EventRing>,
    progress: Mutex<ProgressState>,
    prev: Mutex<Option<Snapshot>>,
    reported: Mutex<Vec<WindowBatch>>,
    pub(crate) frames: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) decode_errors: AtomicU64,
    pub(crate) torn: AtomicBool,
    closed: AtomicBool,
    /// Milliseconds since `epoch` when the last frame was decoded —
    /// the liveness signal the watchdog's stall detector reads.
    last_frame_ms: AtomicU64,
    /// Trace spans: daemon lifecycle spans plus whatever the child
    /// ships over the frame protocol.
    spans: Mutex<SpanStore>,
    /// `daemon elapsed at Hello decode − child span-clock elapsed at
    /// Hello encode`, valid only when `offset_known`; shifts child
    /// wall spans onto the daemon timeline.
    clock_offset_ns: AtomicI64,
    offset_known: AtomicBool,
    /// When the job last became runnable (admission, or a retry's due
    /// time); the queue-wait span runs from here to attempt start.
    runnable_at: Mutex<Option<Instant>>,
}

impl JobTelemetry {
    pub(crate) fn new(ring_cap: usize) -> JobTelemetry {
        JobTelemetry {
            epoch: Instant::now(),
            rollups: RollupSet::wall(),
            events: Mutex::new(EventRing::new(ring_cap)),
            progress: Mutex::new(ProgressState::default()),
            prev: Mutex::new(None),
            reported: Mutex::new(Vec::new()),
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            torn: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            last_frame_ms: AtomicU64::new(0),
            spans: Mutex::new(SpanStore::new(TRACE_SPAN_CAP)),
            clock_offset_ns: AtomicI64::new(0),
            offset_known: AtomicBool::new(false),
            runnable_at: Mutex::new(None),
        }
    }

    /// The instant daemon-side trace spans are measured against.
    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Marks the instant the job became runnable (admission, or a
    /// retry's scheduled due time).
    pub(crate) fn mark_runnable(&self, at: Instant) {
        *self.runnable_at.lock().expect("runnable lock") = Some(at);
    }

    /// The last recorded runnable instant, if any.
    pub(crate) fn runnable_at(&self) -> Option<Instant> {
        *self.runnable_at.lock().expect("runnable lock")
    }

    /// Records one daemon-side lifecycle span on the daemon timeline.
    pub(crate) fn trace_span(
        &self,
        track: &str,
        name: &str,
        begin: Instant,
        dur: Duration,
        args: Vec<(String, Json)>,
    ) {
        let begin_ns = begin
            .checked_duration_since(self.epoch)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        self.push_span(TraceSpan {
            origin: SpanOrigin::Daemon,
            track: track.to_owned(),
            name: name.to_owned(),
            begin_ns,
            dur_ns: Some(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)),
            args: render_args(&args),
        });
    }

    /// Records one daemon-side instant event ("now", zero duration).
    pub(crate) fn trace_instant(&self, track: &str, name: &str, args: Vec<(String, Json)>) {
        let begin_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.push_span(TraceSpan {
            origin: SpanOrigin::Daemon,
            track: track.to_owned(),
            name: name.to_owned(),
            begin_ns,
            dur_ns: None,
            args: render_args(&args),
        });
    }

    fn push_span(&self, span: TraceSpan) {
        self.spans.lock().expect("span store lock").push(span);
    }

    /// `(spans, dropped)` — everything retained for trace assembly,
    /// with the exact count of spans the bound shed.
    pub(crate) fn trace_spans(&self) -> (Vec<TraceSpan>, u64) {
        let store = self.spans.lock().expect("span store lock");
        (store.spans.clone(), store.dropped)
    }

    /// The Hello-derived clock offset, once a child has said hello.
    pub(crate) fn child_offset_ns(&self) -> Option<i64> {
        if self.offset_known.load(Ordering::Acquire) {
            Some(self.clock_offset_ns.load(Ordering::Acquire))
        } else {
            None
        }
    }

    /// Seconds since the last decoded frame; `None` until the child
    /// speaks the frame protocol at all (a mute child is not a stalled
    /// one — plenty of job binaries never connect the exporter).
    pub(crate) fn frame_silence_secs(&self) -> Option<f64> {
        if self.frames.load(Ordering::Acquire) == 0 {
            return None;
        }
        let last = self.last_frame_ms.load(Ordering::Acquire);
        let now = self.t_ms();
        Some(now.saturating_sub(last) as f64 / 1000.0)
    }

    /// Marks the liveness clock; called per decoded frame.
    fn touch(&self) {
        self.last_frame_ms.store(self.t_ms(), Ordering::Release);
    }

    /// Resets the liveness clock at an attempt start, so a retry is
    /// not judged stalled by the previous attempt's last frame time.
    pub(crate) fn mark_alive(&self) {
        self.touch();
    }

    fn t_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Pushes one event: `{"type":KIND,"t_ms":...,FIELDS...}`.
    pub(crate) fn event(&self, kind: &str, fields: Vec<(&'static str, Json)>) {
        let mut members = vec![
            ("type".to_owned(), Json::Str(kind.to_owned())),
            ("t_ms".to_owned(), Json::Uint(self.t_ms())),
        ];
        members.extend(fields.into_iter().map(|(k, v)| (k.to_owned(), v)));
        let rendered = Json::Obj(members).to_string();
        self.events.lock().expect("event ring lock").push(rendered);
    }

    /// `(dropped, events, next_cursor)` for a consumer at `cursor`.
    pub(crate) fn events_since(&self, cursor: u64) -> (u64, Vec<(u64, String)>, u64) {
        let ring = self.events.lock().expect("event ring lock");
        let (dropped, events) = ring.since(cursor);
        (dropped, events, ring.next_seq())
    }

    /// `(phase, completed, total)` from the job's own frames.
    pub(crate) fn progress(&self) -> (String, u64, u64) {
        let p = self.progress.lock().expect("progress lock");
        (p.phase.clone(), p.completed, p.total)
    }

    /// The job's own steady-window ETA (see [`ProgressState::eta_secs`]).
    pub(crate) fn eta_secs(&self) -> Option<f64> {
        self.progress.lock().expect("progress lock").eta_secs()
    }

    /// The rebuilt multi-resolution rollup document.
    pub(crate) fn rollups_json(&self) -> Json {
        self.rollups.to_json()
    }

    /// The child's own final window flush, one entry per resolution.
    pub(crate) fn reported_json(&self) -> Json {
        let batches = self.reported.lock().expect("reported lock");
        Json::Arr(batches.iter().map(WindowBatch::to_json).collect())
    }

    /// Exact lifetime totals of the rebuilt wheel (the `run`
    /// resolution's merge) — what the fleet-sum invariant is checked
    /// against.
    #[cfg(test)]
    pub(crate) fn lifetime_totals(&self) -> WindowAccum {
        self.rollups
            .snapshot()
            .resolution("run")
            .map(|r| r.merged())
            .unwrap_or_default()
    }

    /// Applies one decoded frame: snapshots bank into the job wheel
    /// and the fleet wheel, progress/log frames become events, window
    /// batches are kept verbatim.
    pub(crate) fn apply_frame(&self, fleet: &Fleet, frame: Frame) {
        match frame {
            Frame::Hello {
                pid,
                label,
                epoch_ns,
                ..
            } => {
                // Both clocks are read "now" (encode races decode by
                // one loopback hop): daemon elapsed minus child
                // elapsed is the shift that puts the child's wall
                // spans on the daemon timeline. A v1 child reports
                // epoch 0, degrading the offset to "Hello arrival".
                let here = i64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(i64::MAX);
                let there = i64::try_from(epoch_ns).unwrap_or(i64::MAX);
                self.clock_offset_ns
                    .store(here.saturating_sub(there), Ordering::Release);
                self.offset_known.store(true, Ordering::Release);
                self.event(
                    "hello",
                    vec![
                        ("pid", Json::Uint(u64::from(pid))),
                        ("label", Json::Str(label)),
                    ],
                );
            }
            Frame::Snapshot { t_ns, snapshot } => {
                let delta = {
                    let mut prev = self.prev.lock().expect("prev snapshot lock");
                    let delta = snapshot_delta(prev.as_ref(), &snapshot);
                    *prev = Some(snapshot);
                    delta
                };
                // The same delta feeds both wheels, each on its own
                // epoch: the job wheel keyed by the child's clock, the
                // fleet wheel by the daemon's. Totals stay exact under
                // window eviction on both sides.
                self.rollups.ingest_accum(t_ns, &delta);
                fleet.ingest(&delta);
            }
            Frame::Windows(batch) => {
                self.reported.lock().expect("reported lock").push(batch);
            }
            Frame::Span(batch) => {
                let mut store = self.spans.lock().expect("span store lock");
                // The child's own shed count carries through, so
                // end-to-end `retained + dropped == produced` holds
                // across the process boundary.
                store.dropped = store.dropped.saturating_add(batch.dropped);
                for rec in batch.spans {
                    store.push(TraceSpan {
                        origin: if rec.sim {
                            SpanOrigin::ChildSim
                        } else {
                            SpanOrigin::ChildWall
                        },
                        track: rec.track,
                        name: rec.name,
                        begin_ns: rec.begin_ns,
                        dur_ns: rec.dur_ns,
                        args: rec.args,
                    });
                }
            }
            Frame::Progress {
                completed,
                total,
                phase,
                ..
            } => {
                let now = self.epoch.elapsed().as_secs_f64();
                {
                    let mut p = self.progress.lock().expect("progress lock");
                    p.phase.clone_from(&phase);
                    p.completed = completed;
                    p.total = total;
                    p.samples.push_back((now, completed));
                    while p.samples.len() > ETA_SAMPLE_WINDOW {
                        p.samples.pop_front();
                    }
                }
                self.event(
                    "progress",
                    vec![
                        ("phase", Json::Str(phase)),
                        ("completed", Json::Uint(completed)),
                        ("total", Json::Uint(total)),
                    ],
                );
            }
            Frame::Log { line, .. } => {
                self.event("log", vec![("line", Json::Str(line))]);
            }
            Frame::Bye { frames_sent, .. } => {
                self.closed.store(true, Ordering::Release);
                self.event("bye", vec![("frames", Json::Uint(frames_sent))]);
            }
        }
    }
}

/// Renders span args to the stored wire form: a JSON object string,
/// or empty when there are none.
fn render_args(args: &[(String, Json)]) -> String {
    if args.is_empty() {
        String::new()
    } else {
        Json::Obj(args.to_vec()).to_string()
    }
}

impl std::fmt::Debug for JobTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTelemetry")
            .field("frames", &self.frames.load(Ordering::Relaxed))
            .field("bytes", &self.bytes.load(Ordering::Relaxed))
            .field("decode_errors", &self.decode_errors.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The daemon-wide merged wheel: one wall-axis [`RollupSet`] every
/// job's snapshot deltas are banked into, on the daemon's own epoch.
pub(crate) struct Fleet {
    pub(crate) rollups: RollupSet,
    epoch: Instant,
}

impl Fleet {
    pub(crate) fn new() -> Fleet {
        Fleet {
            rollups: RollupSet::wall(),
            epoch: Instant::now(),
        }
    }

    fn t_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The daemon-wide timeline origin the merged `/trace` document
    /// aligns per-job epochs against.
    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn ingest(&self, delta: &WindowAccum) {
        self.rollups.ingest_accum(self.t_ns(), delta);
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet").finish_non_exhaustive()
    }
}

/// The per-job telemetry table. Entries are created at admission (so
/// the event stream exists from `queued` on) and live as long as the
/// job record does.
#[derive(Default, Debug)]
pub(crate) struct TelemetryMap {
    jobs: Mutex<BTreeMap<String, Arc<JobTelemetry>>>,
}

impl TelemetryMap {
    pub(crate) fn ensure(&self, id: &str, ring_cap: usize) -> Arc<JobTelemetry> {
        Arc::clone(
            self.jobs
                .lock()
                .expect("telemetry map lock")
                .entry(id.to_owned())
                .or_insert_with(|| Arc::new(JobTelemetry::new(ring_cap))),
        )
    }

    pub(crate) fn get(&self, id: &str) -> Option<Arc<JobTelemetry>> {
        self.jobs
            .lock()
            .expect("telemetry map lock")
            .get(id)
            .cloned()
    }
}

/// The per-job telemetry sink: a loopback listener whose address the
/// runner hands the child via `SPINDLE_TELEMETRY_SINK`, plus the
/// ingest thread that decodes whatever connects.
pub(crate) struct Sink {
    listener: TcpListener,
    addr: std::net::SocketAddr,
}

impl Sink {
    pub(crate) fn bind() -> std::io::Result<Sink> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Sink { listener, addr })
    }

    pub(crate) fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Accepts the child's single connection and ingests it to EOF.
    /// `child_done` flips when the child process exits; the thread
    /// stops waiting shortly after (children that never connect —
    /// e.g. specs on binaries without the exporter — cost nothing).
    pub(crate) fn spawn_ingest(
        self,
        tel: Arc<JobTelemetry>,
        fleet: Arc<Fleet>,
        registry: &'static MetricsRegistry,
        child_done: Arc<AtomicBool>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("serve-ingest".to_owned())
            .spawn(move || {
                let mut done_polls = 0u32;
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            ingest_stream(stream, &tel, &fleet, registry, &child_done);
                            return;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if child_done.load(Ordering::Acquire) {
                                // A connect that raced the exit lands
                                // in the accept queue; two more polls
                                // cover it.
                                done_polls += 1;
                                if done_polls > 2 {
                                    return;
                                }
                            }
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn ingest thread")
    }
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink").field("addr", &self.addr).finish()
    }
}

/// Decodes one child's frame stream to EOF. Never panics on hostile
/// input: a decode error is counted, surfaced as a `telemetry-error`
/// event, and ends ingest (length-prefixed framing has no resync
/// point). A stream that ends without a clean `Bye` — a killed child,
/// a torn final frame — is counted as torn.
pub(crate) fn ingest_stream(
    mut stream: TcpStream,
    tel: &JobTelemetry,
    fleet: &Fleet,
    registry: &MetricsRegistry,
    child_done: &AtomicBool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut done_since: Option<Instant> = None;
    let mut skipped_seen = 0u64;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                registry.counter("serve.telemetry.bytes").add(n as u64);
                tel.bytes.fetch_add(n as u64, Ordering::Relaxed);
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            registry.counter("serve.telemetry.frames").inc();
                            tel.touch();
                            tel.frames.fetch_add(1, Ordering::Relaxed);
                            tel.apply_frame(fleet, frame);
                        }
                        Ok(None) => break,
                        Err(e) => {
                            registry.counter("serve.telemetry.frame_errors").inc();
                            tel.decode_errors.fetch_add(1, Ordering::Relaxed);
                            tel.event("telemetry-error", vec![("error", Json::Str(e.to_string()))]);
                            return;
                        }
                    }
                }
                // Unknown kinds are skipped inside the decoder (a
                // newer child talking to an older daemon); surface the
                // running count so forward-compat loss is visible.
                let skipped = decoder.skipped();
                if skipped > skipped_seen {
                    registry
                        .counter("serve.telemetry.frames_skipped")
                        .add(skipped - skipped_seen);
                    skipped_seen = skipped;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if child_done.load(Ordering::Acquire) {
                    let since = done_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > DRAIN_GRACE {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    let clean = tel.closed.load(Ordering::Acquire) && decoder.buffered() == 0;
    let spoke = tel.frames.load(Ordering::Relaxed) > 0 || decoder.buffered() > 0;
    if spoke && !clean {
        tel.torn.store(true, Ordering::Release);
        registry.counter("serve.telemetry.torn_streams").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_obs::registry::HistogramSnapshot;
    use std::io::Write;

    #[test]
    fn event_ring_is_bounded_with_exact_drop_accounting() {
        let mut ring = EventRing::new(8);
        for i in 0..100 {
            ring.push(format!("e{i}"));
        }
        assert_eq!(ring.events.len(), 8, "bounded at cap");
        let (dropped, events) = ring.since(0);
        assert_eq!(dropped, 92);
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().0, 92);
        // The accounting invariant a consumer relies on:
        // received + dropped == total produced.
        assert_eq!(dropped + events.len() as u64, ring.next_seq());
        // A caught-up consumer sees no drops and no events.
        let (dropped, events) = ring.since(ring.next_seq());
        assert_eq!((dropped, events.len()), (0, 0));
    }

    #[test]
    fn incremental_consumer_never_sees_phantom_drops() {
        let mut ring = EventRing::new(4);
        let mut cursor = 0;
        let mut received = 0u64;
        let mut dropped_total = 0u64;
        for round in 0..25 {
            // Push fewer than cap per round; a consumer that keeps up
            // loses nothing.
            ring.push(format!("r{round}a"));
            ring.push(format!("r{round}b"));
            let (dropped, events) = ring.since(cursor);
            assert_eq!(dropped, 0, "keeping up loses nothing");
            received += events.len() as u64;
            dropped_total += dropped;
            cursor = ring.next_seq();
        }
        assert_eq!(received + dropped_total, ring.next_seq());
    }

    #[test]
    fn eta_needs_a_steady_window_then_tracks_the_rate() {
        let fleet = Fleet::new();
        let tel = JobTelemetry::new(64);
        // Fewer than MIN_ETA_SAMPLES progress frames: clamped to None,
        // however fast the first burst looked.
        for (i, completed) in (0..3).enumerate() {
            tel.apply_frame(
                &fleet,
                Frame::Progress {
                    t_ns: i as u64,
                    completed,
                    total: 100,
                    phase: "running".to_owned(),
                },
            );
            std::thread::sleep(Duration::from_millis(15));
        }
        assert_eq!(tel.eta_secs(), None, "steady window not yet filled");
        for completed in 3..8 {
            tel.apply_frame(
                &fleet,
                Frame::Progress {
                    t_ns: completed,
                    completed,
                    total: 100,
                    phase: "running".to_owned(),
                },
            );
            std::thread::sleep(Duration::from_millis(15));
        }
        let eta = tel.eta_secs().expect("window filled");
        assert!(eta > 0.0 && eta.is_finite(), "eta {eta}");
        let (phase, completed, total) = tel.progress();
        assert_eq!((phase.as_str(), completed, total), ("running", 7, 100));
        // A finished job stops advertising an ETA.
        tel.apply_frame(
            &fleet,
            Frame::Progress {
                t_ns: 9,
                completed: 100,
                total: 100,
                phase: "done".to_owned(),
            },
        );
        assert_eq!(tel.eta_secs(), None, "complete means no ETA");
    }

    /// Drives raw bytes through a real socket into `ingest_stream`.
    fn ingest_bytes(bytes: &[u8], tel: &JobTelemetry, registry: &MetricsRegistry) {
        let fleet = Fleet::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let done = AtomicBool::new(true);
        ingest_stream(stream, tel, &fleet, registry, &done);
        writer.join().unwrap();
    }

    #[test]
    fn hostile_streams_never_panic_and_are_counted() {
        let hello = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
            epoch_ns: 0,
        }
        .encode();

        // Pure garbage: huge bogus length prefix -> one typed error.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        ingest_bytes(&[0xff; 64], &tel, &registry);
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 1);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.telemetry.frame_errors"), Some(1));

        // A single flipped bit in a valid frame: checksum error, no
        // frame delivered.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let mut flipped = hello.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        ingest_bytes(&flipped, &tel, &registry);
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 1);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 0);

        // Version skew: typed error, counted, stream over.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let future = Frame::Hello {
            version: 99,
            pid: 7,
            label: "t".to_owned(),
            epoch_ns: 0,
        }
        .encode();
        ingest_bytes(&future, &tel, &registry);
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 1);
        let (_, events, _) = tel.events_since(0);
        assert!(
            events.iter().any(|(_, e)| e.contains("telemetry-error")),
            "{events:?}"
        );
    }

    #[test]
    fn span_store_stays_bounded_with_exact_drop_accounting() {
        use spindle_obs::frame::{SpanBatch, SpanRec};
        let fleet = Fleet::new();
        let tel = JobTelemetry::new(16);
        let rec = |i: u64| SpanRec {
            sim: i.is_multiple_of(2),
            track: "t".to_owned(),
            name: format!("s{i}"),
            begin_ns: i,
            dur_ns: Some(1),
            args: String::new(),
        };
        // A slow consumer never reads; the producer ships far more
        // spans than the store holds, including a batch that already
        // shed spans child-side.
        let total_sent = TRACE_SPAN_CAP as u64 + 500;
        let child_shed = 7u64;
        let mut sent = 0u64;
        while sent < total_sent {
            let n = (total_sent - sent).min(300);
            tel.apply_frame(
                &fleet,
                Frame::Span(SpanBatch {
                    t_ns: sent,
                    dropped: if sent == 0 { child_shed } else { 0 },
                    spans: (sent..sent + n).map(rec).collect(),
                }),
            );
            sent += n;
        }
        let (spans, dropped) = tel.trace_spans();
        let bulk_cap = TRACE_SPAN_CAP - DAEMON_SPAN_RESERVE;
        assert_eq!(spans.len(), bulk_cap, "bulk retention is bounded");
        assert_eq!(
            spans.len() as u64 + dropped,
            total_sent + child_shed,
            "retained + dropped == produced, across the process boundary"
        );
        // Daemon lifecycle spans recorded *after* the flood still land:
        // the reserve exists precisely so a chatty child cannot evict
        // the attempt/finalize story told at the end of a run.
        for i in 0..DAEMON_SPAN_RESERVE {
            tel.trace_instant("daemon", &format!("late{i}"), Vec::new());
        }
        let (spans2, dropped2) = tel.trace_spans();
        assert_eq!(spans2.len(), TRACE_SPAN_CAP, "reserve filled to cap");
        assert_eq!(dropped2, dropped, "no daemon span was shed");
        assert!(spans2
            .iter()
            .any(|s| s.origin == SpanOrigin::Daemon && s.name == "late0"));
        // Past the cap even daemon spans drop — but still exactly
        // accounted.
        tel.trace_instant("daemon", "overflow", Vec::new());
        let (spans3, dropped3) = tel.trace_spans();
        assert_eq!(spans3.len(), TRACE_SPAN_CAP);
        assert_eq!(dropped3, dropped + 1);
    }

    #[test]
    fn hello_epoch_yields_a_clock_offset_for_child_wall_spans() {
        let fleet = Fleet::new();
        let tel = JobTelemetry::new(16);
        assert_eq!(tel.child_offset_ns(), None, "no hello, no offset");
        // A child whose span clock started 5 s before its Hello: the
        // offset must place its spans ~5 s in the daemon's past.
        tel.apply_frame(
            &fleet,
            Frame::Hello {
                version: spindle_obs::frame::PROTOCOL_VERSION,
                pid: 1,
                label: "old-clock".to_owned(),
                epoch_ns: 5_000_000_000,
            },
        );
        let offset = tel.child_offset_ns().expect("hello landed");
        assert!(
            (-5_000_000_000..=-4_000_000_000).contains(&offset),
            "offset ≈ -5s: {offset}"
        );
        // A child epoch ≈ 0 (clock started at Hello): offset ≈ the
        // tiny daemon elapsed, i.e. near zero but non-negative.
        let tel2 = JobTelemetry::new(16);
        tel2.apply_frame(
            &fleet,
            Frame::Hello {
                version: spindle_obs::frame::PROTOCOL_VERSION,
                pid: 2,
                label: "fresh".to_owned(),
                epoch_ns: 0,
            },
        );
        let offset2 = tel2.child_offset_ns().expect("hello landed");
        assert!(
            (0..1_000_000_000).contains(&offset2),
            "fresh clock, small positive offset: {offset2}"
        );
    }

    #[test]
    fn unknown_frame_kinds_are_skipped_and_counted_not_fatal() {
        fn fnv1a(bytes: &[u8]) -> u32 {
            let mut hash: u32 = 0x811c_9dc5;
            for &b in bytes {
                hash ^= u32::from(b);
                hash = hash.wrapping_mul(0x0100_0193);
            }
            hash
        }
        // A checksum-valid frame of a future kind between two known
        // frames: the stream survives, the skip is visible.
        let mut wire = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
            epoch_ns: 0,
        }
        .encode();
        let body = [200u8, 1, 2, 3];
        wire.extend_from_slice(&u32::try_from(body.len()).unwrap().to_le_bytes());
        wire.extend_from_slice(&fnv1a(&body).to_le_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(
            &Frame::Bye {
                t_ns: 9,
                frames_sent: 1,
            }
            .encode(),
        );
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        ingest_bytes(&wire, &tel, &registry);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 2, "hello + bye landed");
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 0);
        assert!(!tel.torn.load(Ordering::Relaxed), "clean bye, not torn");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.telemetry.frames_skipped"), Some(1));
    }

    #[test]
    fn frame_silence_is_none_for_mute_children_then_tracks_arrivals() {
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        assert_eq!(
            tel.frame_silence_secs(),
            None,
            "a child that never speaks frames cannot stall"
        );
        let hello = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
            epoch_ns: 0,
        }
        .encode();
        ingest_bytes(&hello, &tel, &registry);
        let silence = tel.frame_silence_secs().expect("spoke once");
        assert!(silence < 30.0, "fresh frame, tiny silence: {silence}");
        std::thread::sleep(Duration::from_millis(30));
        let later = tel.frame_silence_secs().expect("still spoke");
        assert!(later >= silence, "silence grows monotonically");
    }

    #[test]
    fn mid_stream_kill_is_torn_but_harmless() {
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let hello = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
            epoch_ns: 0,
        }
        .encode();
        let progress = Frame::Progress {
            t_ns: 1,
            completed: 1,
            total: 4,
            phase: "running".to_owned(),
        }
        .encode();
        // Hello, one progress frame, then the process dies mid-frame.
        let mut wire = hello;
        wire.extend_from_slice(&progress);
        wire.extend_from_slice(&progress[..progress.len() / 2]);
        ingest_bytes(&wire, &tel, &registry);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 2, "whole frames landed");
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 0);
        assert!(tel.torn.load(Ordering::Relaxed), "no Bye + torn tail");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.telemetry.torn_streams"), Some(1));
        // A clean stream (Bye, no tail) is not torn.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let mut wire = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
            epoch_ns: 0,
        }
        .encode();
        wire.extend_from_slice(
            &Frame::Bye {
                t_ns: 2,
                frames_sent: 1,
            }
            .encode(),
        );
        ingest_bytes(&wire, &tel, &registry);
        assert!(!tel.torn.load(Ordering::Relaxed));
        assert_eq!(
            registry.snapshot().counter("serve.telemetry.torn_streams"),
            None
        );
    }

    fn snapshot_frame(t_ns: u64, counters: &[(&str, u64)], hist: &[(&str, u64, u64)]) -> Frame {
        let snapshot = Snapshot {
            counters: counters
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
            gauges: Vec::new(),
            histograms: hist
                .iter()
                .map(|(n, count, value)| {
                    let mut h = HistogramSnapshot::empty_with_bounds(vec![10, 100, 1000]);
                    for _ in 0..*count {
                        h.record(*value);
                    }
                    ((*n).to_owned(), h)
                })
                .collect(),
            spans: Vec::new(),
        };
        Frame::Snapshot { t_ns, snapshot }
    }

    #[test]
    fn fleet_totals_equal_the_sum_of_per_job_totals() {
        let fleet = Fleet::new();
        let jobs: Vec<JobTelemetry> = (0..3).map(|_| JobTelemetry::new(16)).collect();
        // Each job ships cumulative snapshots; counters overlap across
        // jobs and grow at different rates.
        for (j, tel) in jobs.iter().enumerate() {
            let j = j as u64 + 1;
            for step in 1..=4u64 {
                tel.apply_frame(
                    &fleet,
                    snapshot_frame(
                        step * 1_000_000_000,
                        &[
                            ("disk.requests_completed", step * j * 10),
                            ("disk.bytes_read", step * 512),
                        ],
                        &[("disk.response_us", step * j, 50)],
                    ),
                );
            }
        }
        let fleet_total = fleet
            .rollups
            .snapshot()
            .resolution("run")
            .expect("run resolution")
            .merged();
        let mut summed = WindowAccum::default();
        for tel in &jobs {
            summed.merge_from(&tel.lifetime_totals());
        }
        assert_eq!(
            fleet_total.counters, summed.counters,
            "fleet counters are the exact sum of per-job counters"
        );
        let fleet_hist = &fleet_total.histograms["disk.response_us"];
        let summed_hist = &summed.histograms["disk.response_us"];
        assert_eq!(fleet_hist.count, summed_hist.count);
        assert_eq!(fleet_hist.sum, summed_hist.sum);
        assert_eq!(fleet_hist.buckets, summed_hist.buckets, "bucket-for-bucket");
        // Sanity: the totals are what the arithmetic says.
        assert_eq!(
            fleet_total.counters["disk.requests_completed"],
            4 * 10 + 4 * 20 + 4 * 30
        );
    }
}
