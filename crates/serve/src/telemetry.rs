//! Daemon-side half of the cross-process telemetry plane.
//!
//! Every job child the runner spawns gets a private loopback sink
//! address in [`SINK_ENV`](spindle_obs::frame::SINK_ENV); a child
//! built on `spindle-pulse` connects back and streams
//! [`Frame`](spindle_obs::frame::Frame)s — registry snapshots,
//! progress, log-tail lines, and a final rollup-window flush. This
//! module owns everything the daemon keeps per job:
//!
//! * [`JobTelemetry`] — a wall-axis [`RollupSet`] rebuilt from the
//!   child's snapshots, a bounded [`EventRing`] feeding
//!   `GET /jobs/ID/events`, progress state driving the job ETA, and
//!   the child's own reported window batches.
//! * [`Fleet`] — the daemon-wide merged wheel: every per-job snapshot
//!   delta is banked into it as well, so the fleet's lifetime totals
//!   equal the sum of the per-job totals bucket-for-bucket (the same
//!   exact-merge invariant the in-process wheel keeps on eviction).
//! * [`Sink`] — the per-job listener plus the ingest thread that
//!   decodes the stream. Hostile bytes can never hurt the daemon: a
//!   decode error is counted, noted on the event stream, and ends
//!   ingest for that job (the framing has no resync point), nothing
//!   more.
//!
//! Backpressure policy, receiver side: the event ring is bounded, and
//! a consumer that falls behind loses the oldest events — never the
//! newest — with the exact count of what it missed reported in-band.
//! `received + dropped == produced` always holds, so a watcher can
//! tell silence from loss.

use spindle_obs::frame::{Frame, FrameDecoder, WindowBatch};
use spindle_obs::json::Json;
use spindle_obs::rollup::{snapshot_delta, WindowAccum};
use spindle_obs::{MetricsRegistry, RollupSet, Snapshot};
use std::collections::{BTreeMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default per-job event ring capacity ([`crate::ServeConfig`] can
/// lower it; tests do, to force drops deterministically).
pub(crate) const DEFAULT_EVENT_RING_CAP: usize = 256;

/// Default runner heartbeat cadence in milliseconds: lifecycle events
/// pushed while a child runs, so even a child that never speaks the
/// frame protocol produces a live event stream.
pub(crate) const DEFAULT_HEARTBEAT_MS: u64 = 250;

/// Accept-poll interval on the per-job sink listener.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read timeout on an accepted ingest stream (bounds how long the
/// ingest thread takes to notice the child is gone).
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// How long ingest keeps draining after the child exited — the final
/// flush races process death, and loopback delivery is fast.
const DRAIN_GRACE: Duration = Duration::from_millis(2000);

/// Progress samples required before the per-job ETA is published —
/// the same steady-window clamp the `/status` rate estimator applies
/// (`spindle_pulse::sampler::MIN_STEADY_SAMPLES`), so one early burst
/// cannot fabricate a wildly optimistic ETA.
const MIN_ETA_SAMPLES: usize = 4;

/// Bounded progress-sample window per job.
const ETA_SAMPLE_WINDOW: usize = 64;

/// A bounded, sequence-numbered event buffer. Producers never block:
/// when full, the oldest event is evicted and the gap stays visible as
/// a sequence-number hole, so every consumer can compute exactly how
/// many events it missed.
pub(crate) struct EventRing {
    cap: usize,
    next_seq: u64,
    events: VecDeque<(u64, String)>,
}

impl EventRing {
    fn new(cap: usize) -> EventRing {
        EventRing {
            cap: cap.max(1),
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    fn push(&mut self, rendered: String) {
        self.events.push_back((self.next_seq, rendered));
        self.next_seq += 1;
        while self.events.len() > self.cap {
            self.events.pop_front();
        }
    }

    /// Everything at or after `cursor`, plus the exact count of events
    /// in `[cursor, oldest_retained)` that were evicted before this
    /// consumer saw them. The caller's next cursor is [`next_seq`].
    ///
    /// [`next_seq`]: EventRing::next_seq
    fn since(&self, cursor: u64) -> (u64, Vec<(u64, String)>) {
        let dropped = match self.events.front() {
            Some(&(front, _)) if front > cursor => front - cursor,
            Some(_) => 0,
            None => self.next_seq.saturating_sub(cursor),
        };
        let out = self
            .events
            .iter()
            .filter(|(seq, _)| *seq >= cursor)
            .cloned()
            .collect();
        (dropped, out)
    }

    fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("cap", &self.cap)
            .field("next_seq", &self.next_seq)
            .field("retained", &self.events.len())
            .finish()
    }
}

/// Progress reported by the job's own frames, with the sample window
/// the ETA is derived from.
#[derive(Default)]
struct ProgressState {
    phase: String,
    completed: u64,
    total: u64,
    /// `(daemon seconds since telemetry epoch, completed)` samples.
    samples: VecDeque<(f64, u64)>,
}

impl ProgressState {
    /// Remaining work over the observed recent rate; `None` until the
    /// steady window fills (or when the job reports no total).
    fn eta_secs(&self) -> Option<f64> {
        if self.total == 0 || self.completed >= self.total || self.samples.len() < MIN_ETA_SAMPLES {
            return None;
        }
        let (t0, c0) = *self.samples.front()?;
        let (t1, c1) = *self.samples.back()?;
        let dt = t1 - t0;
        let dc = c1.saturating_sub(c0);
        if dt <= 0.0 || dc == 0 {
            return None;
        }
        let rate = dc as f64 / dt;
        Some((self.total - self.completed) as f64 / rate)
    }
}

/// Everything the daemon holds for one job's telemetry.
pub(crate) struct JobTelemetry {
    epoch: Instant,
    /// The job's wall-axis wheel, rebuilt from the child's snapshots.
    rollups: RollupSet,
    events: Mutex<EventRing>,
    progress: Mutex<ProgressState>,
    prev: Mutex<Option<Snapshot>>,
    reported: Mutex<Vec<WindowBatch>>,
    pub(crate) frames: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) decode_errors: AtomicU64,
    pub(crate) torn: AtomicBool,
    closed: AtomicBool,
    /// Milliseconds since `epoch` when the last frame was decoded —
    /// the liveness signal the watchdog's stall detector reads.
    last_frame_ms: AtomicU64,
}

impl JobTelemetry {
    pub(crate) fn new(ring_cap: usize) -> JobTelemetry {
        JobTelemetry {
            epoch: Instant::now(),
            rollups: RollupSet::wall(),
            events: Mutex::new(EventRing::new(ring_cap)),
            progress: Mutex::new(ProgressState::default()),
            prev: Mutex::new(None),
            reported: Mutex::new(Vec::new()),
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            torn: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            last_frame_ms: AtomicU64::new(0),
        }
    }

    /// Seconds since the last decoded frame; `None` until the child
    /// speaks the frame protocol at all (a mute child is not a stalled
    /// one — plenty of job binaries never connect the exporter).
    pub(crate) fn frame_silence_secs(&self) -> Option<f64> {
        if self.frames.load(Ordering::Acquire) == 0 {
            return None;
        }
        let last = self.last_frame_ms.load(Ordering::Acquire);
        let now = self.t_ms();
        Some(now.saturating_sub(last) as f64 / 1000.0)
    }

    /// Marks the liveness clock; called per decoded frame.
    fn touch(&self) {
        self.last_frame_ms.store(self.t_ms(), Ordering::Release);
    }

    /// Resets the liveness clock at an attempt start, so a retry is
    /// not judged stalled by the previous attempt's last frame time.
    pub(crate) fn mark_alive(&self) {
        self.touch();
    }

    fn t_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Pushes one event: `{"type":KIND,"t_ms":...,FIELDS...}`.
    pub(crate) fn event(&self, kind: &str, fields: Vec<(&'static str, Json)>) {
        let mut members = vec![
            ("type".to_owned(), Json::Str(kind.to_owned())),
            ("t_ms".to_owned(), Json::Uint(self.t_ms())),
        ];
        members.extend(fields.into_iter().map(|(k, v)| (k.to_owned(), v)));
        let rendered = Json::Obj(members).to_string();
        self.events.lock().expect("event ring lock").push(rendered);
    }

    /// `(dropped, events, next_cursor)` for a consumer at `cursor`.
    pub(crate) fn events_since(&self, cursor: u64) -> (u64, Vec<(u64, String)>, u64) {
        let ring = self.events.lock().expect("event ring lock");
        let (dropped, events) = ring.since(cursor);
        (dropped, events, ring.next_seq())
    }

    /// `(phase, completed, total)` from the job's own frames.
    pub(crate) fn progress(&self) -> (String, u64, u64) {
        let p = self.progress.lock().expect("progress lock");
        (p.phase.clone(), p.completed, p.total)
    }

    /// The job's own steady-window ETA (see [`ProgressState::eta_secs`]).
    pub(crate) fn eta_secs(&self) -> Option<f64> {
        self.progress.lock().expect("progress lock").eta_secs()
    }

    /// The rebuilt multi-resolution rollup document.
    pub(crate) fn rollups_json(&self) -> Json {
        self.rollups.to_json()
    }

    /// The child's own final window flush, one entry per resolution.
    pub(crate) fn reported_json(&self) -> Json {
        let batches = self.reported.lock().expect("reported lock");
        Json::Arr(batches.iter().map(WindowBatch::to_json).collect())
    }

    /// Exact lifetime totals of the rebuilt wheel (the `run`
    /// resolution's merge) — what the fleet-sum invariant is checked
    /// against.
    #[cfg(test)]
    pub(crate) fn lifetime_totals(&self) -> WindowAccum {
        self.rollups
            .snapshot()
            .resolution("run")
            .map(|r| r.merged())
            .unwrap_or_default()
    }

    /// Applies one decoded frame: snapshots bank into the job wheel
    /// and the fleet wheel, progress/log frames become events, window
    /// batches are kept verbatim.
    pub(crate) fn apply_frame(&self, fleet: &Fleet, frame: Frame) {
        match frame {
            Frame::Hello { pid, label, .. } => {
                self.event(
                    "hello",
                    vec![
                        ("pid", Json::Uint(u64::from(pid))),
                        ("label", Json::Str(label)),
                    ],
                );
            }
            Frame::Snapshot { t_ns, snapshot } => {
                let delta = {
                    let mut prev = self.prev.lock().expect("prev snapshot lock");
                    let delta = snapshot_delta(prev.as_ref(), &snapshot);
                    *prev = Some(snapshot);
                    delta
                };
                // The same delta feeds both wheels, each on its own
                // epoch: the job wheel keyed by the child's clock, the
                // fleet wheel by the daemon's. Totals stay exact under
                // window eviction on both sides.
                self.rollups.ingest_accum(t_ns, &delta);
                fleet.ingest(&delta);
            }
            Frame::Windows(batch) => {
                self.reported.lock().expect("reported lock").push(batch);
            }
            Frame::Progress {
                completed,
                total,
                phase,
                ..
            } => {
                let now = self.epoch.elapsed().as_secs_f64();
                {
                    let mut p = self.progress.lock().expect("progress lock");
                    p.phase.clone_from(&phase);
                    p.completed = completed;
                    p.total = total;
                    p.samples.push_back((now, completed));
                    while p.samples.len() > ETA_SAMPLE_WINDOW {
                        p.samples.pop_front();
                    }
                }
                self.event(
                    "progress",
                    vec![
                        ("phase", Json::Str(phase)),
                        ("completed", Json::Uint(completed)),
                        ("total", Json::Uint(total)),
                    ],
                );
            }
            Frame::Log { line, .. } => {
                self.event("log", vec![("line", Json::Str(line))]);
            }
            Frame::Bye { frames_sent, .. } => {
                self.closed.store(true, Ordering::Release);
                self.event("bye", vec![("frames", Json::Uint(frames_sent))]);
            }
        }
    }
}

impl std::fmt::Debug for JobTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTelemetry")
            .field("frames", &self.frames.load(Ordering::Relaxed))
            .field("bytes", &self.bytes.load(Ordering::Relaxed))
            .field("decode_errors", &self.decode_errors.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The daemon-wide merged wheel: one wall-axis [`RollupSet`] every
/// job's snapshot deltas are banked into, on the daemon's own epoch.
pub(crate) struct Fleet {
    pub(crate) rollups: RollupSet,
    epoch: Instant,
}

impl Fleet {
    pub(crate) fn new() -> Fleet {
        Fleet {
            rollups: RollupSet::wall(),
            epoch: Instant::now(),
        }
    }

    fn t_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn ingest(&self, delta: &WindowAccum) {
        self.rollups.ingest_accum(self.t_ns(), delta);
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet").finish_non_exhaustive()
    }
}

/// The per-job telemetry table. Entries are created at admission (so
/// the event stream exists from `queued` on) and live as long as the
/// job record does.
#[derive(Default, Debug)]
pub(crate) struct TelemetryMap {
    jobs: Mutex<BTreeMap<String, Arc<JobTelemetry>>>,
}

impl TelemetryMap {
    pub(crate) fn ensure(&self, id: &str, ring_cap: usize) -> Arc<JobTelemetry> {
        Arc::clone(
            self.jobs
                .lock()
                .expect("telemetry map lock")
                .entry(id.to_owned())
                .or_insert_with(|| Arc::new(JobTelemetry::new(ring_cap))),
        )
    }

    pub(crate) fn get(&self, id: &str) -> Option<Arc<JobTelemetry>> {
        self.jobs
            .lock()
            .expect("telemetry map lock")
            .get(id)
            .cloned()
    }
}

/// The per-job telemetry sink: a loopback listener whose address the
/// runner hands the child via `SPINDLE_TELEMETRY_SINK`, plus the
/// ingest thread that decodes whatever connects.
pub(crate) struct Sink {
    listener: TcpListener,
    addr: std::net::SocketAddr,
}

impl Sink {
    pub(crate) fn bind() -> std::io::Result<Sink> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Sink { listener, addr })
    }

    pub(crate) fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Accepts the child's single connection and ingests it to EOF.
    /// `child_done` flips when the child process exits; the thread
    /// stops waiting shortly after (children that never connect —
    /// e.g. specs on binaries without the exporter — cost nothing).
    pub(crate) fn spawn_ingest(
        self,
        tel: Arc<JobTelemetry>,
        fleet: Arc<Fleet>,
        registry: &'static MetricsRegistry,
        child_done: Arc<AtomicBool>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("serve-ingest".to_owned())
            .spawn(move || {
                let mut done_polls = 0u32;
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            ingest_stream(stream, &tel, &fleet, registry, &child_done);
                            return;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if child_done.load(Ordering::Acquire) {
                                // A connect that raced the exit lands
                                // in the accept queue; two more polls
                                // cover it.
                                done_polls += 1;
                                if done_polls > 2 {
                                    return;
                                }
                            }
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn ingest thread")
    }
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink").field("addr", &self.addr).finish()
    }
}

/// Decodes one child's frame stream to EOF. Never panics on hostile
/// input: a decode error is counted, surfaced as a `telemetry-error`
/// event, and ends ingest (length-prefixed framing has no resync
/// point). A stream that ends without a clean `Bye` — a killed child,
/// a torn final frame — is counted as torn.
pub(crate) fn ingest_stream(
    mut stream: TcpStream,
    tel: &JobTelemetry,
    fleet: &Fleet,
    registry: &MetricsRegistry,
    child_done: &AtomicBool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut done_since: Option<Instant> = None;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                registry.counter("serve.telemetry.bytes").add(n as u64);
                tel.bytes.fetch_add(n as u64, Ordering::Relaxed);
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            registry.counter("serve.telemetry.frames").inc();
                            tel.touch();
                            tel.frames.fetch_add(1, Ordering::Relaxed);
                            tel.apply_frame(fleet, frame);
                        }
                        Ok(None) => break,
                        Err(e) => {
                            registry.counter("serve.telemetry.frame_errors").inc();
                            tel.decode_errors.fetch_add(1, Ordering::Relaxed);
                            tel.event("telemetry-error", vec![("error", Json::Str(e.to_string()))]);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if child_done.load(Ordering::Acquire) {
                    let since = done_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > DRAIN_GRACE {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    let clean = tel.closed.load(Ordering::Acquire) && decoder.buffered() == 0;
    let spoke = tel.frames.load(Ordering::Relaxed) > 0 || decoder.buffered() > 0;
    if spoke && !clean {
        tel.torn.store(true, Ordering::Release);
        registry.counter("serve.telemetry.torn_streams").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_obs::registry::HistogramSnapshot;
    use std::io::Write;

    #[test]
    fn event_ring_is_bounded_with_exact_drop_accounting() {
        let mut ring = EventRing::new(8);
        for i in 0..100 {
            ring.push(format!("e{i}"));
        }
        assert_eq!(ring.events.len(), 8, "bounded at cap");
        let (dropped, events) = ring.since(0);
        assert_eq!(dropped, 92);
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().0, 92);
        // The accounting invariant a consumer relies on:
        // received + dropped == total produced.
        assert_eq!(dropped + events.len() as u64, ring.next_seq());
        // A caught-up consumer sees no drops and no events.
        let (dropped, events) = ring.since(ring.next_seq());
        assert_eq!((dropped, events.len()), (0, 0));
    }

    #[test]
    fn incremental_consumer_never_sees_phantom_drops() {
        let mut ring = EventRing::new(4);
        let mut cursor = 0;
        let mut received = 0u64;
        let mut dropped_total = 0u64;
        for round in 0..25 {
            // Push fewer than cap per round; a consumer that keeps up
            // loses nothing.
            ring.push(format!("r{round}a"));
            ring.push(format!("r{round}b"));
            let (dropped, events) = ring.since(cursor);
            assert_eq!(dropped, 0, "keeping up loses nothing");
            received += events.len() as u64;
            dropped_total += dropped;
            cursor = ring.next_seq();
        }
        assert_eq!(received + dropped_total, ring.next_seq());
    }

    #[test]
    fn eta_needs_a_steady_window_then_tracks_the_rate() {
        let fleet = Fleet::new();
        let tel = JobTelemetry::new(64);
        // Fewer than MIN_ETA_SAMPLES progress frames: clamped to None,
        // however fast the first burst looked.
        for (i, completed) in (0..3).enumerate() {
            tel.apply_frame(
                &fleet,
                Frame::Progress {
                    t_ns: i as u64,
                    completed,
                    total: 100,
                    phase: "running".to_owned(),
                },
            );
            std::thread::sleep(Duration::from_millis(15));
        }
        assert_eq!(tel.eta_secs(), None, "steady window not yet filled");
        for completed in 3..8 {
            tel.apply_frame(
                &fleet,
                Frame::Progress {
                    t_ns: completed,
                    completed,
                    total: 100,
                    phase: "running".to_owned(),
                },
            );
            std::thread::sleep(Duration::from_millis(15));
        }
        let eta = tel.eta_secs().expect("window filled");
        assert!(eta > 0.0 && eta.is_finite(), "eta {eta}");
        let (phase, completed, total) = tel.progress();
        assert_eq!((phase.as_str(), completed, total), ("running", 7, 100));
        // A finished job stops advertising an ETA.
        tel.apply_frame(
            &fleet,
            Frame::Progress {
                t_ns: 9,
                completed: 100,
                total: 100,
                phase: "done".to_owned(),
            },
        );
        assert_eq!(tel.eta_secs(), None, "complete means no ETA");
    }

    /// Drives raw bytes through a real socket into `ingest_stream`.
    fn ingest_bytes(bytes: &[u8], tel: &JobTelemetry, registry: &MetricsRegistry) {
        let fleet = Fleet::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let done = AtomicBool::new(true);
        ingest_stream(stream, tel, &fleet, registry, &done);
        writer.join().unwrap();
    }

    #[test]
    fn hostile_streams_never_panic_and_are_counted() {
        let hello = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
        }
        .encode();

        // Pure garbage: huge bogus length prefix -> one typed error.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        ingest_bytes(&[0xff; 64], &tel, &registry);
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 1);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.telemetry.frame_errors"), Some(1));

        // A single flipped bit in a valid frame: checksum error, no
        // frame delivered.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let mut flipped = hello.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        ingest_bytes(&flipped, &tel, &registry);
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 1);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 0);

        // Version skew: typed error, counted, stream over.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let future = Frame::Hello {
            version: 99,
            pid: 7,
            label: "t".to_owned(),
        }
        .encode();
        ingest_bytes(&future, &tel, &registry);
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 1);
        let (_, events, _) = tel.events_since(0);
        assert!(
            events.iter().any(|(_, e)| e.contains("telemetry-error")),
            "{events:?}"
        );
    }

    #[test]
    fn frame_silence_is_none_for_mute_children_then_tracks_arrivals() {
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        assert_eq!(
            tel.frame_silence_secs(),
            None,
            "a child that never speaks frames cannot stall"
        );
        let hello = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
        }
        .encode();
        ingest_bytes(&hello, &tel, &registry);
        let silence = tel.frame_silence_secs().expect("spoke once");
        assert!(silence < 30.0, "fresh frame, tiny silence: {silence}");
        std::thread::sleep(Duration::from_millis(30));
        let later = tel.frame_silence_secs().expect("still spoke");
        assert!(later >= silence, "silence grows monotonically");
    }

    #[test]
    fn mid_stream_kill_is_torn_but_harmless() {
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let hello = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
        }
        .encode();
        let progress = Frame::Progress {
            t_ns: 1,
            completed: 1,
            total: 4,
            phase: "running".to_owned(),
        }
        .encode();
        // Hello, one progress frame, then the process dies mid-frame.
        let mut wire = hello;
        wire.extend_from_slice(&progress);
        wire.extend_from_slice(&progress[..progress.len() / 2]);
        ingest_bytes(&wire, &tel, &registry);
        assert_eq!(tel.frames.load(Ordering::Relaxed), 2, "whole frames landed");
        assert_eq!(tel.decode_errors.load(Ordering::Relaxed), 0);
        assert!(tel.torn.load(Ordering::Relaxed), "no Bye + torn tail");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.telemetry.torn_streams"), Some(1));
        // A clean stream (Bye, no tail) is not torn.
        let registry = MetricsRegistry::new();
        let tel = JobTelemetry::new(16);
        let mut wire = Frame::Hello {
            version: spindle_obs::frame::PROTOCOL_VERSION,
            pid: 7,
            label: "t".to_owned(),
        }
        .encode();
        wire.extend_from_slice(
            &Frame::Bye {
                t_ns: 2,
                frames_sent: 1,
            }
            .encode(),
        );
        ingest_bytes(&wire, &tel, &registry);
        assert!(!tel.torn.load(Ordering::Relaxed));
        assert_eq!(
            registry.snapshot().counter("serve.telemetry.torn_streams"),
            None
        );
    }

    fn snapshot_frame(t_ns: u64, counters: &[(&str, u64)], hist: &[(&str, u64, u64)]) -> Frame {
        let snapshot = Snapshot {
            counters: counters
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
            gauges: Vec::new(),
            histograms: hist
                .iter()
                .map(|(n, count, value)| {
                    let mut h = HistogramSnapshot::empty_with_bounds(vec![10, 100, 1000]);
                    for _ in 0..*count {
                        h.record(*value);
                    }
                    ((*n).to_owned(), h)
                })
                .collect(),
            spans: Vec::new(),
        };
        Frame::Snapshot { t_ns, snapshot }
    }

    #[test]
    fn fleet_totals_equal_the_sum_of_per_job_totals() {
        let fleet = Fleet::new();
        let jobs: Vec<JobTelemetry> = (0..3).map(|_| JobTelemetry::new(16)).collect();
        // Each job ships cumulative snapshots; counters overlap across
        // jobs and grow at different rates.
        for (j, tel) in jobs.iter().enumerate() {
            let j = j as u64 + 1;
            for step in 1..=4u64 {
                tel.apply_frame(
                    &fleet,
                    snapshot_frame(
                        step * 1_000_000_000,
                        &[
                            ("disk.requests_completed", step * j * 10),
                            ("disk.bytes_read", step * 512),
                        ],
                        &[("disk.response_us", step * j, 50)],
                    ),
                );
            }
        }
        let fleet_total = fleet
            .rollups
            .snapshot()
            .resolution("run")
            .expect("run resolution")
            .merged();
        let mut summed = WindowAccum::default();
        for tel in &jobs {
            summed.merge_from(&tel.lifetime_totals());
        }
        assert_eq!(
            fleet_total.counters, summed.counters,
            "fleet counters are the exact sum of per-job counters"
        );
        let fleet_hist = &fleet_total.histograms["disk.response_us"];
        let summed_hist = &summed.histograms["disk.response_us"];
        assert_eq!(fleet_hist.count, summed_hist.count);
        assert_eq!(fleet_hist.sum, summed_hist.sum);
        assert_eq!(fleet_hist.buckets, summed_hist.buckets, "bucket-for-bucket");
        // Sanity: the totals are what the arithmetic says.
        assert_eq!(
            fleet_total.counters["disk.requests_completed"],
            4 * 10 + 4 * 20 + 4 * 30
        );
    }
}
