//! Job specifications: the JSON body of `POST /jobs`.
//!
//! A spec names one of the existing CLI verbs (`simulate`, `analyze`,
//! `generate`, `observe`, `matrix`) plus its parameters, and the
//! server turns an accepted spec into the exact argv the `spindle` (or
//! `experiments`) binary would receive on the command line. The
//! mapping is deterministic — the same spec always produces the same
//! argv — which is what makes a job's captured stdout byte-identical
//! to running the verb directly.
//!
//! Validation is strict and structured: every rejection names the
//! offending field (or the byte offset for JSON-level damage) so a
//! client gets `{"error": ..., "field": ...}` back, and hostile specs
//! can never panic the server (see the test battery at the bottom).

use spindle_obs::json::Json;
use std::fmt;
use std::path::Path;

/// Upper bound on a spec's `jobs` (worker threads inside one job);
/// matches nothing in the engine but keeps a hostile spec from asking
/// the child for millions of threads.
pub const MAX_JOB_THREADS: usize = 512;

/// Upper bound on `span` seconds for `generate` jobs: a week of
/// synthetic trace is the largest thing the service will produce.
pub const MAX_SPAN_SECS: u64 = 7 * 24 * 3600;

/// A structured spec rejection: which field, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending field, or `"(body)"` for JSON-level damage.
    pub field: String,
    /// What is wrong with it.
    pub message: String,
}

impl SpecError {
    fn new(field: &str, message: impl Into<String>) -> SpecError {
        SpecError {
            field: field.to_owned(),
            message: message.into(),
        }
    }

    /// Renders the error as the JSON body of a 400 response.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("error".to_owned(), Json::Str(self.message.clone())),
            ("field".to_owned(), Json::Str(self.field.clone())),
        ])
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Which CLI verb a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// `spindle simulate --in FILE ...`
    Simulate,
    /// `spindle analyze --in FILE ...`
    Analyze,
    /// `spindle generate --env ENV ...` (trace to stdout)
    Generate,
    /// `spindle observe --in FILE ...` (report to stdout)
    Observe,
    /// the `experiments` matrix binary
    Matrix,
}

impl JobKind {
    /// The verb as spelled in specs and job listings.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Simulate => "simulate",
            JobKind::Analyze => "analyze",
            JobKind::Generate => "generate",
            JobKind::Observe => "observe",
            JobKind::Matrix => "matrix",
        }
    }

    fn parse(s: &str) -> Option<JobKind> {
        match s {
            "simulate" => Some(JobKind::Simulate),
            "analyze" => Some(JobKind::Analyze),
            "generate" => Some(JobKind::Generate),
            "observe" => Some(JobKind::Observe),
            "matrix" => Some(JobKind::Matrix),
            _ => None,
        }
    }
}

/// A validated job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The CLI verb to run.
    pub kind: JobKind,
    /// `generate`: workload environment (mail/web/dev/archive).
    pub env: Option<String>,
    /// `generate`: trace span in seconds.
    pub span: Option<u64>,
    /// `generate`: RNG seed.
    pub seed: Option<u64>,
    /// `simulate`/`analyze`/`observe`: input trace path (on the
    /// server's filesystem).
    pub input: Option<String>,
    /// Drive profile name, passed through to the verb.
    pub profile: Option<String>,
    /// Scheduler policy, passed through to the verb.
    pub scheduler: Option<String>,
    /// `observe`: report format (`html`/`md`).
    pub format: Option<String>,
    /// `simulate`: disable the write-back cache.
    pub no_write_back: bool,
    /// `matrix`: experiment ids to run (empty = the full matrix).
    pub ids: Vec<String>,
    /// `matrix`: quick mode.
    pub quick: bool,
    /// Worker threads inside the job (`--jobs N`).
    pub jobs: Option<usize>,
    /// Lenient trace parsing (`--lenient`).
    pub lenient: bool,
    /// Deterministic fault-injection spec (`--faults`), validated
    /// against the harden grammar at admission.
    pub faults: Option<String>,
    /// Capture a metrics dump as the `metrics.json` artifact.
    pub metrics: bool,
    /// Capture a flight-recorder export as the `trace.json` artifact.
    pub trace: bool,
    /// `matrix`: capture the rollup document as `timescales.json`.
    pub timescales: bool,
    /// Wall-clock budget per attempt in seconds; the watchdog kills
    /// the child past it (`timed_out`). Defaults to the daemon's
    /// `--default-deadline` and is clamped by `--max-deadline`.
    pub deadline_secs: Option<u64>,
}

/// Which kinds a field applies to, for the applicability check.
fn applicable(kind: JobKind, field: &str) -> bool {
    use JobKind::{Analyze, Generate, Matrix, Observe, Simulate};
    match field {
        "env" | "span" | "seed" => kind == Generate,
        "input" | "profile" => matches!(kind, Simulate | Analyze | Observe),
        "scheduler" => matches!(kind, Simulate | Observe),
        "format" => kind == Observe,
        "no_write_back" => kind == Simulate,
        "ids" | "quick" | "timescales" => kind == Matrix,
        "lenient" => matches!(kind, Simulate | Analyze | Observe),
        _ => true, // kind, jobs, faults, metrics, trace, deadline_secs
    }
}

fn expect_str(field: &str, v: &Json) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| SpecError::new(field, "expected a string"))
}

fn expect_u64(field: &str, v: &Json) -> Result<u64, SpecError> {
    v.as_u64()
        .ok_or_else(|| SpecError::new(field, "expected a non-negative integer"))
}

fn expect_bool(field: &str, v: &Json) -> Result<bool, SpecError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(SpecError::new(field, "expected true or false")),
    }
}

impl JobSpec {
    /// Parses and validates a `POST /jobs` body.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the field (or the byte offset of
    /// JSON-level damage under the pseudo-field `"(body)"`).
    pub fn parse(body: &str) -> Result<JobSpec, SpecError> {
        let doc =
            spindle_obs::json::parse(body).map_err(|e| SpecError::new("(body)", format!("{e}")))?;
        JobSpec::from_json(&doc)
    }

    /// Validates an already-parsed JSON document as a job spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field.
    #[allow(clippy::too_many_lines)]
    pub fn from_json(doc: &Json) -> Result<JobSpec, SpecError> {
        let Json::Obj(members) = doc else {
            return Err(SpecError::new("(body)", "job spec must be a JSON object"));
        };
        // Duplicate keys would make "last wins" silently drop data.
        for (i, (k, _)) in members.iter().enumerate() {
            if members.iter().skip(i + 1).any(|(other, _)| other == k) {
                return Err(SpecError::new(k, "duplicate field"));
            }
        }
        let field = |name: &str| members.iter().find(|(k, _)| k == name).map(|(_, v)| v);

        let kind_value = field("kind").ok_or_else(|| {
            SpecError::new(
                "kind",
                "required; one of simulate, analyze, generate, observe, matrix",
            )
        })?;
        let kind_str = expect_str("kind", kind_value)?;
        let kind = JobKind::parse(&kind_str).ok_or_else(|| {
            SpecError::new(
                "kind",
                format!("unknown kind `{kind_str}`; one of simulate, analyze, generate, observe, matrix"),
            )
        })?;

        const KNOWN: &[&str] = &[
            "kind",
            "env",
            "span",
            "seed",
            "input",
            "profile",
            "scheduler",
            "format",
            "no_write_back",
            "ids",
            "quick",
            "jobs",
            "lenient",
            "faults",
            "metrics",
            "trace",
            "timescales",
            "deadline_secs",
        ];
        for (k, _) in members {
            if !KNOWN.contains(&k.as_str()) {
                return Err(SpecError::new(k, "unknown field"));
            }
            if !applicable(kind, k) {
                return Err(SpecError::new(
                    k,
                    format!("not applicable to kind `{}`", kind.as_str()),
                ));
            }
        }

        let mut spec = JobSpec {
            kind,
            env: None,
            span: None,
            seed: None,
            input: None,
            profile: None,
            scheduler: None,
            format: None,
            no_write_back: false,
            ids: Vec::new(),
            quick: false,
            jobs: None,
            lenient: false,
            faults: None,
            metrics: false,
            trace: false,
            timescales: false,
            deadline_secs: None,
        };

        if let Some(v) = field("env") {
            let env = expect_str("env", v)?;
            if !matches!(env.as_str(), "mail" | "web" | "dev" | "archive") {
                return Err(SpecError::new(
                    "env",
                    format!("unknown environment `{env}`; one of mail, web, dev, archive"),
                ));
            }
            spec.env = Some(env);
        }
        if let Some(v) = field("span") {
            let span = expect_u64("span", v)?;
            if span == 0 || span > MAX_SPAN_SECS {
                return Err(SpecError::new(
                    "span",
                    format!("must be between 1 and {MAX_SPAN_SECS} seconds"),
                ));
            }
            spec.span = Some(span);
        }
        if let Some(v) = field("seed") {
            spec.seed = Some(expect_u64("seed", v)?);
        }
        if let Some(v) = field("input") {
            let input = expect_str("input", v)?;
            if input.is_empty() {
                return Err(SpecError::new("input", "must not be empty"));
            }
            spec.input = Some(input);
        }
        if let Some(v) = field("profile") {
            spec.profile = Some(expect_str("profile", v)?);
        }
        if let Some(v) = field("scheduler") {
            spec.scheduler = Some(expect_str("scheduler", v)?);
        }
        if let Some(v) = field("format") {
            let format = expect_str("format", v)?;
            if !matches!(format.as_str(), "html" | "md") {
                return Err(SpecError::new("format", "expected `html` or `md`"));
            }
            spec.format = Some(format);
        }
        if let Some(v) = field("no_write_back") {
            spec.no_write_back = expect_bool("no_write_back", v)?;
        }
        if let Some(v) = field("ids") {
            let Json::Arr(items) = v else {
                return Err(SpecError::new("ids", "expected an array of experiment ids"));
            };
            for item in items {
                let id = expect_str("ids", item)?;
                let ok = !id.is_empty()
                    && id
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                if !ok {
                    return Err(SpecError::new(
                        "ids",
                        format!("invalid experiment id `{id}`"),
                    ));
                }
                spec.ids.push(id);
            }
        }
        if let Some(v) = field("quick") {
            spec.quick = expect_bool("quick", v)?;
        }
        if let Some(v) = field("jobs") {
            let jobs = expect_u64("jobs", v)?;
            if jobs == 0 || jobs > MAX_JOB_THREADS as u64 {
                return Err(SpecError::new(
                    "jobs",
                    format!("must be between 1 and {MAX_JOB_THREADS}"),
                ));
            }
            spec.jobs = Some(usize::try_from(jobs).expect("bounded above"));
        }
        if let Some(v) = field("lenient") {
            spec.lenient = expect_bool("lenient", v)?;
        }
        if let Some(v) = field("faults") {
            let faults = expect_str("faults", v)?;
            // Validate against the real harden grammar so a bad spec
            // fails at admission, not minutes later inside the child.
            let plan = spindle_harden::FaultPlan::parse(&faults)
                .map_err(|e| SpecError::new("faults", e))?;
            spec.faults = Some(plan.spec());
        }
        if let Some(v) = field("metrics") {
            spec.metrics = expect_bool("metrics", v)?;
        }
        if let Some(v) = field("trace") {
            spec.trace = expect_bool("trace", v)?;
        }
        if let Some(v) = field("timescales") {
            spec.timescales = expect_bool("timescales", v)?;
        }
        if let Some(v) = field("deadline_secs") {
            let deadline = expect_u64("deadline_secs", v)?;
            if deadline == 0 {
                return Err(SpecError::new("deadline_secs", "must be at least 1 second"));
            }
            spec.deadline_secs = Some(deadline);
        }

        // Cross-field requirements.
        match kind {
            JobKind::Generate => {
                if spec.env.is_none() {
                    return Err(SpecError::new("env", "required for kind `generate`"));
                }
            }
            JobKind::Simulate | JobKind::Analyze | JobKind::Observe => {
                if spec.input.is_none() {
                    return Err(SpecError::new(
                        "input",
                        format!("required for kind `{}`", kind.as_str()),
                    ));
                }
            }
            JobKind::Matrix => {}
        }
        Ok(spec)
    }

    /// Whether the job runs on the `experiments` binary rather than
    /// the `spindle` CLI.
    #[must_use]
    pub fn uses_experiments(&self) -> bool {
        self.kind == JobKind::Matrix
    }

    /// The argv (after the program name) this spec maps onto, with
    /// artifact outputs rooted in `dir`. Deterministic: field order is
    /// fixed, so equal specs produce equal argv.
    #[must_use]
    pub fn argv(&self, dir: &Path) -> Vec<String> {
        let mut args: Vec<String> = Vec::new();
        let artifact = |name: &str| dir.join(name).to_string_lossy().into_owned();
        match self.kind {
            JobKind::Generate => {
                args.push("generate".to_owned());
                args.push("--env".to_owned());
                args.push(self.env.clone().expect("validated"));
                if let Some(span) = self.span {
                    args.push("--span".to_owned());
                    args.push(span.to_string());
                }
                if let Some(seed) = self.seed {
                    args.push("--seed".to_owned());
                    args.push(seed.to_string());
                }
            }
            JobKind::Simulate | JobKind::Analyze | JobKind::Observe => {
                args.push(self.kind.as_str().to_owned());
                args.push("--in".to_owned());
                args.push(self.input.clone().expect("validated"));
                if let Some(p) = &self.profile {
                    args.push("--profile".to_owned());
                    args.push(p.clone());
                }
                if let Some(s) = &self.scheduler {
                    args.push("--scheduler".to_owned());
                    args.push(s.clone());
                }
                if let Some(f) = &self.format {
                    args.push("--format".to_owned());
                    args.push(f.clone());
                }
                if self.no_write_back {
                    args.push("--no-write-back".to_owned());
                }
            }
            JobKind::Matrix => {
                if self.quick {
                    args.push("--quick".to_owned());
                }
                args.extend(self.ids.iter().cloned());
                if self.timescales {
                    args.push("--timescales-out".to_owned());
                    args.push(artifact("timescales.json"));
                }
                // Always journal completions into the job dir: a
                // retried attempt resumes past already-finished
                // experiments instead of redoing (or re-dying on)
                // them, and stdout stays byte-identical to an
                // uninterrupted run.
                args.push("--resume".to_owned());
                args.push(artifact("resume.jsonl"));
            }
        }
        if let Some(jobs) = self.jobs {
            args.push("--jobs".to_owned());
            args.push(jobs.to_string());
        }
        if self.lenient {
            args.push("--lenient".to_owned());
        }
        if let Some(faults) = &self.faults {
            args.push("--faults".to_owned());
            args.push(faults.clone());
        }
        if self.metrics {
            args.push("--metrics=json".to_owned());
            args.push("--metrics-out".to_owned());
            args.push(artifact("metrics.json"));
        }
        if self.trace {
            args.push("--trace-out".to_owned());
            args.push(artifact("trace.json"));
        }
        args
    }

    /// The spec as JSON (the `spec.json` artifact and journal payload);
    /// round-trips through [`JobSpec::from_json`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> =
            vec![("kind".to_owned(), Json::Str(self.kind.as_str().to_owned()))];
        let mut push_str = |name: &str, v: &Option<String>| {
            if let Some(s) = v {
                members.push((name.to_owned(), Json::Str(s.clone())));
            }
        };
        push_str("env", &self.env);
        push_str("input", &self.input);
        push_str("profile", &self.profile);
        push_str("scheduler", &self.scheduler);
        push_str("format", &self.format);
        push_str("faults", &self.faults);
        if let Some(span) = self.span {
            members.push(("span".to_owned(), Json::Uint(span)));
        }
        if let Some(seed) = self.seed {
            members.push(("seed".to_owned(), Json::Uint(seed)));
        }
        if let Some(jobs) = self.jobs {
            members.push(("jobs".to_owned(), Json::Uint(jobs as u64)));
        }
        if let Some(deadline) = self.deadline_secs {
            members.push(("deadline_secs".to_owned(), Json::Uint(deadline)));
        }
        if !self.ids.is_empty() {
            members.push((
                "ids".to_owned(),
                Json::Arr(self.ids.iter().cloned().map(Json::Str).collect()),
            ));
        }
        for (name, on) in [
            ("no_write_back", self.no_write_back),
            ("quick", self.quick),
            ("lenient", self.lenient),
            ("metrics", self.metrics),
            ("trace", self.trace),
            ("timescales", self.timescales),
        ] {
            if on {
                members.push((name.to_owned(), Json::Bool(true)));
            }
        }
        Json::Obj(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn err(body: &str) -> SpecError {
        JobSpec::parse(body).expect_err("spec must be rejected")
    }

    #[test]
    fn minimal_generate_spec_round_trips() {
        let spec =
            JobSpec::parse(r#"{"kind":"generate","env":"mail","span":60,"seed":7}"#).unwrap();
        assert_eq!(spec.kind, JobKind::Generate);
        assert_eq!(spec.env.as_deref(), Some("mail"));
        assert_eq!((spec.span, spec.seed), (Some(60), Some(7)));
        let round = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
        let argv = spec.argv(&PathBuf::from("/tmp/j"));
        assert_eq!(
            argv,
            ["generate", "--env", "mail", "--span", "60", "--seed", "7"]
        );
    }

    #[test]
    fn simulate_spec_maps_flags_and_artifacts() {
        let spec = JobSpec::parse(
            r#"{"kind":"simulate","input":"t.bin","profile":"savvio-10k",
                "scheduler":"look","no_write_back":true,"jobs":2,"lenient":true,
                "metrics":true,"trace":true}"#,
        )
        .unwrap();
        let argv = spec.argv(&PathBuf::from("/d"));
        assert_eq!(
            argv,
            [
                "simulate",
                "--in",
                "t.bin",
                "--profile",
                "savvio-10k",
                "--scheduler",
                "look",
                "--no-write-back",
                "--jobs",
                "2",
                "--lenient",
                "--metrics=json",
                "--metrics-out",
                "/d/metrics.json",
                "--trace-out",
                "/d/trace.json",
            ]
        );
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn matrix_spec_maps_to_experiments_argv() {
        let spec =
            JobSpec::parse(r#"{"kind":"matrix","ids":["t2","f5"],"quick":true,"timescales":true}"#)
                .unwrap();
        assert!(spec.uses_experiments());
        let argv = spec.argv(&PathBuf::from("/d"));
        assert_eq!(
            argv,
            [
                "--quick",
                "t2",
                "f5",
                "--timescales-out",
                "/d/timescales.json",
                "--resume",
                "/d/resume.jsonl",
            ]
        );
    }

    #[test]
    fn deadline_round_trips_and_zero_is_rejected() {
        let spec = JobSpec::parse(
            r#"{"kind":"generate","env":"web","span":60,"seed":1,"deadline_secs":30}"#,
        )
        .unwrap();
        assert_eq!(spec.deadline_secs, Some(30));
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
        // The deadline is supervision metadata, never child argv.
        let argv = spec.argv(&PathBuf::from("/d"));
        assert!(!argv.iter().any(|a| a.contains("deadline")), "{argv:?}");
        assert_eq!(
            err(r#"{"kind":"matrix","deadline_secs":0}"#).field,
            "deadline_secs"
        );
        assert_eq!(
            err(r#"{"kind":"matrix","deadline_secs":"soon"}"#).field,
            "deadline_secs"
        );
    }

    #[test]
    fn faults_are_validated_and_canonicalized() {
        let spec = JobSpec::parse(r#"{"kind":"matrix","quick":true,"faults":"panic@3"}"#).unwrap();
        assert_eq!(spec.faults.as_deref(), Some("panic@3"));
        let e = err(r#"{"kind":"matrix","faults":"frobnicate@1"}"#);
        assert_eq!(e.field, "faults");
    }

    #[test]
    fn json_level_damage_is_a_body_error_not_a_panic() {
        for body in [
            "",
            "{",
            "[1,2",
            "not json at all",
            r#"{"kind":"generate","env":}"#,
            "\u{0}\u{1}\u{2}",
            "{\"kind\": \"generate\", \"env\": \"mail\"",
        ] {
            let e = err(body);
            assert_eq!(e.field, "(body)", "body {body:?} -> {e}");
            assert!(!e.message.is_empty());
        }
        assert_eq!(err("[]").field, "(body)");
        assert_eq!(err("42").field, "(body)");
        assert_eq!(err("null").field, "(body)");
    }

    #[test]
    fn field_level_rejections_name_the_field() {
        for (body, field) in [
            (r#"{}"#, "kind"),
            (r#"{"kind":"frobnicate"}"#, "kind"),
            (r#"{"kind":7}"#, "kind"),
            (r#"{"kind":"generate"}"#, "env"),
            (r#"{"kind":"generate","env":"prod"}"#, "env"),
            (r#"{"kind":"generate","env":["mail"]}"#, "env"),
            (r#"{"kind":"generate","env":"mail","span":0}"#, "span"),
            (r#"{"kind":"generate","env":"mail","span":-3}"#, "span"),
            (
                r#"{"kind":"generate","env":"mail","span":9999999999}"#,
                "span",
            ),
            (r#"{"kind":"generate","env":"mail","seed":"x"}"#, "seed"),
            (r#"{"kind":"simulate"}"#, "input"),
            (r#"{"kind":"simulate","input":""}"#, "input"),
            (r#"{"kind":"simulate","input":"t.bin","jobs":0}"#, "jobs"),
            (r#"{"kind":"simulate","input":"t.bin","jobs":513}"#, "jobs"),
            (r#"{"kind":"simulate","input":"t.bin","jobs":2.5}"#, "jobs"),
            (r#"{"kind":"observe","input":"t","format":"pdf"}"#, "format"),
            (r#"{"kind":"matrix","ids":"t2"}"#, "ids"),
            (r#"{"kind":"matrix","ids":["../etc"]}"#, "ids"),
            (r#"{"kind":"matrix","ids":[""]}"#, "ids"),
            (r#"{"kind":"matrix","quick":"yes"}"#, "quick"),
            (r#"{"kind":"analyze","input":"t","lenient":1}"#, "lenient"),
            (r#"{"kind":"generate","env":"mail","bogus":1}"#, "bogus"),
        ] {
            let e = err(body);
            assert_eq!(e.field, field, "body {body} -> {e}");
        }
    }

    #[test]
    fn inapplicable_fields_are_rejected_per_kind() {
        for (body, field) in [
            (r#"{"kind":"simulate","input":"t","env":"mail"}"#, "env"),
            (r#"{"kind":"generate","env":"mail","input":"t"}"#, "input"),
            (r#"{"kind":"generate","env":"mail","quick":true}"#, "quick"),
            (r#"{"kind":"matrix","span":5}"#, "span"),
            (
                r#"{"kind":"analyze","input":"t","scheduler":"look"}"#,
                "scheduler",
            ),
            (r#"{"kind":"simulate","input":"t","format":"md"}"#, "format"),
            (
                r#"{"kind":"simulate","input":"t","timescales":true}"#,
                "timescales",
            ),
            (
                r#"{"kind":"analyze","input":"t","no_write_back":true}"#,
                "no_write_back",
            ),
        ] {
            let e = err(body);
            assert_eq!(e.field, field, "body {body} -> {e}");
        }
    }

    #[test]
    fn duplicate_fields_are_rejected() {
        let e = err(r#"{"kind":"generate","env":"mail","env":"web"}"#);
        assert_eq!(e.field, "env");
        assert_eq!(e.message, "duplicate field");
    }

    #[test]
    fn hostile_bodies_never_panic() {
        // Deterministic mutation corpus: seeds xor-shifted over valid
        // and broken prefixes; success or SpecError both fine, panic
        // is the only failure.
        let corpus = [
            r#"{"kind":"generate","env":"mail","span":60}"#,
            r#"{"kind":"matrix","ids":["t1"],"quick":true}"#,
            r#"{"kind":"simulate","input":"t.bin"}"#,
        ];
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for base in corpus {
            let bytes = base.as_bytes();
            for round in 0..200 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let mut mutated = bytes.to_vec();
                let idx = (state as usize) % mutated.len();
                mutated[idx] = (state >> 24) as u8;
                let truncated = &mutated[..mutated.len() - (round % 7)];
                if let Ok(text) = std::str::from_utf8(truncated) {
                    let _ = JobSpec::parse(text);
                }
            }
        }
    }

    #[test]
    fn spec_error_renders_structured_json() {
        let e = err(r#"{"kind":"generate"}"#);
        let doc = e.to_json();
        assert_eq!(doc.get("field").and_then(Json::as_str), Some("env"));
        assert!(doc.get("error").and_then(Json::as_str).is_some());
    }
}
