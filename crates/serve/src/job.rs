//! Job records and the in-memory job table.

use crate::spec::JobSpec;
use spindle_obs::json::Json;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner.
    Queued,
    /// A runner is executing it.
    Running,
    /// Finished successfully; artifacts are complete.
    Done,
    /// Finished with a non-zero exit (including quarantined panics).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// The state as spelled in listings and the journal.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a journal state string.
    #[must_use]
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the state is final.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One job's record.
#[derive(Debug, Clone)]
pub struct Job {
    /// Deterministic id (`job-0001`, ...).
    pub id: String,
    /// The validated spec it was submitted with.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Cooperative-cancel flag; the runner polls it while the child
    /// runs and kills the child when set.
    pub cancel: Arc<AtomicBool>,
    /// Child exit code, for terminal states (None when signalled or
    /// cancelled before start).
    pub exit: Option<i32>,
    /// Wall seconds the job ran, for terminal states.
    pub secs: Option<f64>,
    /// Failure detail (a bounded stderr tail), for failed jobs.
    pub error: Option<String>,
    /// When the runner claimed it (progress/ETA for `GET /jobs/ID`).
    pub started: Option<Instant>,
    /// Whether this record was re-adopted from a previous daemon's
    /// journal rather than submitted to this process.
    pub readopted: bool,
}

impl Job {
    /// A fresh queued job.
    #[must_use]
    pub fn new(id: String, spec: JobSpec) -> Job {
        Job {
            id,
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            exit: None,
            secs: None,
            error: None,
            started: None,
            readopted: false,
        }
    }

    /// The job as a JSON summary. `eta_secs` is the server's estimate
    /// for a running job (None renders as null).
    #[must_use]
    pub fn to_json(&self, eta_secs: Option<f64>) -> Json {
        let cancelling = self.state == JobState::Running
            && self.cancel.load(std::sync::atomic::Ordering::Relaxed);
        let state = if cancelling {
            "cancelling".to_owned()
        } else {
            self.state.as_str().to_owned()
        };
        let elapsed = match (self.state, self.started, self.secs) {
            (_, _, Some(total)) => Json::Num(total),
            (JobState::Running, Some(t0), None) => Json::Num(t0.elapsed().as_secs_f64()),
            _ => Json::Null,
        };
        Json::Obj(vec![
            ("id".to_owned(), Json::Str(self.id.clone())),
            (
                "kind".to_owned(),
                Json::Str(self.spec.kind.as_str().to_owned()),
            ),
            ("state".to_owned(), Json::Str(state)),
            (
                "exit".to_owned(),
                self.exit.map_or(Json::Null, |c| Json::Int(i64::from(c))),
            ),
            ("secs".to_owned(), elapsed),
            (
                "eta_secs".to_owned(),
                eta_secs.map_or(Json::Null, Json::Num),
            ),
            (
                "error".to_owned(),
                self.error
                    .as_ref()
                    .map_or(Json::Null, |e| Json::Str(e.clone())),
            ),
            ("readopted".to_owned(), Json::Bool(self.readopted)),
        ])
    }
}

/// The shared job table: submit-ordered records behind one mutex.
#[derive(Debug, Default)]
pub struct JobTable {
    inner: Mutex<Vec<Job>>,
}

impl JobTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Adds a record (ids are unique by construction).
    pub fn insert(&self, job: Job) {
        self.inner.lock().expect("job table lock").push(job);
    }

    /// A clone of the record for `id`.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Job> {
        self.inner
            .lock()
            .expect("job table lock")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Applies `f` to the record for `id`; `false` when unknown.
    pub fn update(&self, id: &str, f: impl FnOnce(&mut Job)) -> bool {
        let mut inner = self.inner.lock().expect("job table lock");
        match inner.iter_mut().find(|j| j.id == id) {
            Some(job) => {
                f(job);
                true
            }
            None => false,
        }
    }

    /// A snapshot of every record in submit order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Job> {
        self.inner.lock().expect("job table lock").clone()
    }

    /// `(queued, running)` counts.
    #[must_use]
    pub fn active_counts(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("job table lock");
        let queued = inner.iter().filter(|j| j.state == JobState::Queued).count();
        let running = inner
            .iter()
            .filter(|j| j.state == JobState::Running)
            .count();
        (queued, running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::parse(r#"{"kind":"generate","env":"mail","span":10,"seed":1}"#).unwrap()
    }

    #[test]
    fn table_tracks_states_and_counts() {
        let table = JobTable::new();
        table.insert(Job::new("job-0001".to_owned(), spec()));
        table.insert(Job::new("job-0002".to_owned(), spec()));
        assert_eq!(table.active_counts(), (2, 0));
        assert!(table.update("job-0001", |j| {
            j.state = JobState::Running;
            j.started = Some(Instant::now());
        }));
        assert_eq!(table.active_counts(), (1, 1));
        assert!(!table.update("nope", |_| {}));
        let ids: Vec<String> = table.snapshot().into_iter().map(|j| j.id).collect();
        assert_eq!(ids, ["job-0001", "job-0002"]);
    }

    #[test]
    fn job_json_reports_cancelling_and_elapsed() {
        let mut job = Job::new("job-0001".to_owned(), spec());
        job.state = JobState::Running;
        job.started = Some(Instant::now());
        job.cancel.store(true, std::sync::atomic::Ordering::Relaxed);
        let doc = job.to_json(Some(2.5));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("cancelling"));
        assert!(doc.get("secs").and_then(Json::as_f64).is_some());
        assert_eq!(doc.get("eta_secs").and_then(Json::as_f64), Some(2.5));

        job.state = JobState::Failed;
        job.exit = Some(101);
        job.secs = Some(1.25);
        job.error = Some("boom".to_owned());
        let doc = job.to_json(None);
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("failed"));
        assert_eq!(doc.get("secs").and_then(Json::as_f64), Some(1.25));
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("boom"));
        // Terminal states parse back through the journal vocabulary.
        assert_eq!(JobState::parse("failed"), Some(JobState::Failed));
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }
}
