//! Job records and the in-memory job table.

use crate::spec::JobSpec;
use spindle_obs::json::Json;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner (including retry backoff).
    Queued,
    /// A runner is executing it.
    Running,
    /// Finished successfully; artifacts are complete.
    Done,
    /// Finished with a non-zero exit (including quarantined panics).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
    /// Killed by the watchdog for exceeding its deadline.
    TimedOut,
    /// Killed by the watchdog for telemetry silence, retries exhausted.
    Stalled,
    /// Exhausted every retry on transient-looking failures; the spec's
    /// fingerprint trips the poison circuit breaker.
    Quarantined,
}

impl JobState {
    /// The state as spelled in listings and the journal.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
            JobState::Stalled => "stalled",
            JobState::Quarantined => "quarantined",
        }
    }

    /// Parses a journal state string.
    #[must_use]
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            "timed_out" => Some(JobState::TimedOut),
            "stalled" => Some(JobState::Stalled),
            "quarantined" => Some(JobState::Quarantined),
            _ => None,
        }
    }

    /// Whether the state is final.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Why a running child is being killed. The watchdog, the cancel
/// endpoint, and drain all *request* a kill by setting the job's flag;
/// the runner — sole owner of the `Child` — performs it and maps the
/// reason to an outcome. First reason wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillReason {
    /// `DELETE /jobs/ID`.
    Cancel,
    /// `deadline_secs` exceeded.
    Deadline,
    /// No telemetry frame for `--stall-timeout` seconds.
    Stall,
    /// Graceful drain gave up waiting.
    Drain,
}

impl KillReason {
    const fn as_u8(self) -> u8 {
        match self {
            KillReason::Cancel => 1,
            KillReason::Deadline => 2,
            KillReason::Stall => 3,
            KillReason::Drain => 4,
        }
    }

    fn from_u8(v: u8) -> Option<KillReason> {
        match v {
            1 => Some(KillReason::Cancel),
            2 => Some(KillReason::Deadline),
            3 => Some(KillReason::Stall),
            4 => Some(KillReason::Drain),
            _ => None,
        }
    }
}

/// The verdict of an atomic cancel request against the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelVerdict {
    /// No such job.
    NotFound,
    /// Already terminal — cancelling is a conflict, and the runner is
    /// guaranteed not to touch the (possibly completed) artifacts.
    Terminal(JobState),
    /// Kill requested; the runner or watchdog will finish the job.
    Requested,
}

/// One job's record.
#[derive(Debug, Clone)]
pub struct Job {
    /// Deterministic id (`job-0001`, ...).
    pub id: String,
    /// The validated spec it was submitted with.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Pending kill request (0 = none, else a [`KillReason`]); the
    /// runner polls it while the child runs and kills the child when
    /// set.
    pub kill: Arc<AtomicU8>,
    /// Child exit code, for terminal states (None when signalled or
    /// cancelled before start).
    pub exit: Option<i32>,
    /// Wall seconds the job ran, for terminal states.
    pub secs: Option<f64>,
    /// Failure detail (a bounded stderr tail), for failed jobs.
    pub error: Option<String>,
    /// When the runner claimed it (progress/ETA for `GET /jobs/ID`).
    pub started: Option<Instant>,
    /// Whether this record was re-adopted from a previous daemon's
    /// journal rather than submitted to this process.
    pub readopted: bool,
    /// Retries consumed so far (0 on the first attempt).
    pub attempt: u32,
    /// Effective deadline (spec value or daemon default, clamped by
    /// `--max-deadline`), enforced per attempt by the watchdog.
    pub deadline_secs: Option<u64>,
}

impl Job {
    /// A fresh queued job.
    #[must_use]
    pub fn new(id: String, spec: JobSpec) -> Job {
        Job {
            id,
            spec,
            state: JobState::Queued,
            kill: Arc::new(AtomicU8::new(0)),
            exit: None,
            secs: None,
            error: None,
            started: None,
            readopted: false,
            attempt: 0,
            deadline_secs: None,
        }
    }

    /// Requests a kill; `false` when another reason already won.
    pub fn request_kill(&self, reason: KillReason) -> bool {
        self.kill
            .compare_exchange(0, reason.as_u8(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The pending kill reason, if any.
    #[must_use]
    pub fn kill_reason(&self) -> Option<KillReason> {
        KillReason::from_u8(self.kill.load(Ordering::Acquire))
    }

    /// Clears a served kill request (between retry attempts).
    pub fn clear_kill(&self) {
        self.kill.store(0, Ordering::Release);
    }

    /// The job as a JSON summary. `eta_secs` is the server's estimate
    /// for a running job (None renders as null).
    #[must_use]
    pub fn to_json(&self, eta_secs: Option<f64>) -> Json {
        let cancelling =
            self.state == JobState::Running && self.kill_reason() == Some(KillReason::Cancel);
        let state = if cancelling {
            "cancelling".to_owned()
        } else {
            self.state.as_str().to_owned()
        };
        let elapsed = match (self.state, self.started, self.secs) {
            (_, _, Some(total)) => Json::Num(total),
            (JobState::Running, Some(t0), None) => Json::Num(t0.elapsed().as_secs_f64()),
            _ => Json::Null,
        };
        Json::Obj(vec![
            ("id".to_owned(), Json::Str(self.id.clone())),
            (
                "kind".to_owned(),
                Json::Str(self.spec.kind.as_str().to_owned()),
            ),
            ("state".to_owned(), Json::Str(state)),
            (
                "exit".to_owned(),
                self.exit.map_or(Json::Null, |c| Json::Int(i64::from(c))),
            ),
            ("secs".to_owned(), elapsed),
            (
                "eta_secs".to_owned(),
                eta_secs.map_or(Json::Null, Json::Num),
            ),
            (
                "error".to_owned(),
                self.error
                    .as_ref()
                    .map_or(Json::Null, |e| Json::Str(e.clone())),
            ),
            ("readopted".to_owned(), Json::Bool(self.readopted)),
            ("attempt".to_owned(), Json::Uint(u64::from(self.attempt))),
        ])
    }
}

/// The shared job table: submit-ordered records behind one mutex.
#[derive(Debug, Default)]
pub struct JobTable {
    inner: Mutex<Vec<Job>>,
}

impl JobTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Adds a record (ids are unique by construction).
    pub fn insert(&self, job: Job) {
        self.inner.lock().expect("job table lock").push(job);
    }

    /// A clone of the record for `id`.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Job> {
        self.inner
            .lock()
            .expect("job table lock")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Applies `f` to the record for `id`; `false` when unknown.
    pub fn update(&self, id: &str, f: impl FnOnce(&mut Job)) -> bool {
        let mut inner = self.inner.lock().expect("job table lock");
        match inner.iter_mut().find(|j| j.id == id) {
            Some(job) => {
                f(job);
                true
            }
            None => false,
        }
    }

    /// Atomically checks terminality and requests a cancel kill under
    /// the table lock, so a cancel racing the runner's terminal flip
    /// (which also happens under this lock) gets a clean verdict: the
    /// flag can never be set *after* the record went terminal.
    #[must_use]
    pub fn request_cancel(&self, id: &str) -> CancelVerdict {
        let inner = self.inner.lock().expect("job table lock");
        match inner.iter().find(|j| j.id == id) {
            None => CancelVerdict::NotFound,
            Some(job) if job.state.is_terminal() => CancelVerdict::Terminal(job.state),
            Some(job) => {
                let _ = job.request_kill(KillReason::Cancel);
                CancelVerdict::Requested
            }
        }
    }

    /// A snapshot of every record in submit order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Job> {
        self.inner.lock().expect("job table lock").clone()
    }

    /// `(queued, running)` counts.
    #[must_use]
    pub fn active_counts(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("job table lock");
        let queued = inner.iter().filter(|j| j.state == JobState::Queued).count();
        let running = inner
            .iter()
            .filter(|j| j.state == JobState::Running)
            .count();
        (queued, running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::parse(r#"{"kind":"generate","env":"mail","span":10,"seed":1}"#).unwrap()
    }

    #[test]
    fn table_tracks_states_and_counts() {
        let table = JobTable::new();
        table.insert(Job::new("job-0001".to_owned(), spec()));
        table.insert(Job::new("job-0002".to_owned(), spec()));
        assert_eq!(table.active_counts(), (2, 0));
        assert!(table.update("job-0001", |j| {
            j.state = JobState::Running;
            j.started = Some(Instant::now());
        }));
        assert_eq!(table.active_counts(), (1, 1));
        assert!(!table.update("nope", |_| {}));
        let ids: Vec<String> = table.snapshot().into_iter().map(|j| j.id).collect();
        assert_eq!(ids, ["job-0001", "job-0002"]);
    }

    #[test]
    fn job_json_reports_cancelling_and_elapsed() {
        let mut job = Job::new("job-0001".to_owned(), spec());
        job.state = JobState::Running;
        job.started = Some(Instant::now());
        assert!(job.request_kill(KillReason::Cancel));
        let doc = job.to_json(Some(2.5));
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("cancelling"));
        assert!(doc.get("secs").and_then(Json::as_f64).is_some());
        assert_eq!(doc.get("eta_secs").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("attempt").and_then(Json::as_u64), Some(0));

        job.state = JobState::Failed;
        job.exit = Some(101);
        job.secs = Some(1.25);
        job.error = Some("boom".to_owned());
        let doc = job.to_json(None);
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("failed"));
        assert_eq!(doc.get("secs").and_then(Json::as_f64), Some(1.25));
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("boom"));
        // Terminal states parse back through the journal vocabulary.
        assert_eq!(JobState::parse("failed"), Some(JobState::Failed));
        assert_eq!(JobState::parse("timed_out"), Some(JobState::TimedOut));
        assert_eq!(JobState::parse("stalled"), Some(JobState::Stalled));
        assert_eq!(JobState::parse("quarantined"), Some(JobState::Quarantined));
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::TimedOut.is_terminal());
        assert!(JobState::Quarantined.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn kill_requests_are_first_reason_wins_and_cancel_is_atomic() {
        let table = JobTable::new();
        table.insert(Job::new("job-0001".to_owned(), spec()));
        let job = table.get("job-0001").unwrap();
        assert!(job.request_kill(KillReason::Deadline));
        assert!(!job.request_kill(KillReason::Cancel), "first reason wins");
        assert_eq!(job.kill_reason(), Some(KillReason::Deadline));
        job.clear_kill();
        assert_eq!(job.kill_reason(), None);

        assert_eq!(table.request_cancel("nope"), CancelVerdict::NotFound);
        assert_eq!(table.request_cancel("job-0001"), CancelVerdict::Requested);
        assert!(table.update("job-0001", |j| j.state = JobState::Done));
        assert_eq!(
            table.request_cancel("job-0001"),
            CancelVerdict::Terminal(JobState::Done)
        );
    }
}
