//! Causal trace assembly: one Chrome trace-event document per job,
//! from HTTP accept to sim slice.
//!
//! The daemon records its own lifecycle spans (admission, queue wait,
//! spawn, each supervision attempt, retry backoff, finalization) into
//! the per-job telemetry record, and children ship their
//! flight-recorder wall and sim spans upstream over the frame
//! protocol. This module turns that combined span set into a
//! self-contained Chrome trace-event JSON document:
//!
//! * pid 1 — the daemon timeline: lifecycle spans, on the daemon's
//!   monotonic clock (per-job telemetry epoch).
//! * pid 2 — the child's wall timeline, shifted onto the daemon clock
//!   by the Hello-derived offset (`daemon elapsed at Hello decode −
//!   child span-clock elapsed at Hello encode`), so queue wait,
//!   spawn, and the child's own phases line up on one axis.
//! * pid 3 — the child's sim-time tracks, deliberately *not* shifted:
//!   simulated nanoseconds are their own axis.
//!
//! Flow events (`ph:"s"` → `ph:"f"`, id = the attempt's minted root
//! span id) parent each daemon attempt span to the first child wall
//! span it spawned, so Perfetto draws the causal arrow across the
//! process boundary.
//!
//! The same span set is persisted as `spans.jsonl` in the job's
//! artifact directory at finalization, and `spindle trace assemble
//! --dir JOBDIR` rebuilds the identical document offline after the
//! daemon is gone.

use spindle_obs::json::{parse, Json};
use spindle_obs::TraceContext;
use std::collections::BTreeMap;
use std::path::Path;

/// File name of the persisted span journal inside a job's artifact
/// directory.
pub const SPANS_FILE: &str = "spans.jsonl";

/// Schema tag on the span file's header line.
pub const SPANS_SCHEMA: &str = "spindle-serve-spans/v1";

/// Trace-event pid for the daemon lifecycle timeline.
const DAEMON_PID: u64 = 1;
/// Trace-event pid for child wall tracks (offset-aligned).
const CHILD_WALL_PID: u64 = 2;
/// Trace-event pid for child sim-time tracks (never shifted).
const CHILD_SIM_PID: u64 = 3;

/// Where a trace span came from, which also fixes what its `begin_ns`
/// is relative to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOrigin {
    /// Daemon lifecycle span, daemon-epoch-relative.
    Daemon,
    /// Child wall span, child-epoch-relative (needs the clock offset).
    ChildWall,
    /// Child sim-time span, simulated nanoseconds.
    ChildSim,
}

impl SpanOrigin {
    fn as_str(self) -> &'static str {
        match self {
            SpanOrigin::Daemon => "daemon",
            SpanOrigin::ChildWall => "wall",
            SpanOrigin::ChildSim => "sim",
        }
    }

    fn parse(text: &str) -> Option<SpanOrigin> {
        match text {
            "daemon" => Some(SpanOrigin::Daemon),
            "wall" => Some(SpanOrigin::ChildWall),
            "sim" => Some(SpanOrigin::ChildSim),
            _ => None,
        }
    }
}

/// One span retained for trace assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Which timeline the span belongs to.
    pub origin: SpanOrigin,
    /// Track (thread row) the span renders on.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Start, relative to the origin's clock (see [`SpanOrigin`]).
    pub begin_ns: u64,
    /// Duration; `None` marks an instant event.
    pub dur_ns: Option<u64>,
    /// Pre-rendered JSON object of span args, empty for none.
    pub args: String,
}

impl TraceSpan {
    fn to_json(&self) -> Json {
        let mut members = vec![
            (
                "origin".to_owned(),
                Json::Str(self.origin.as_str().to_owned()),
            ),
            ("track".to_owned(), Json::Str(self.track.clone())),
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("begin_ns".to_owned(), Json::Uint(self.begin_ns)),
        ];
        if let Some(dur) = self.dur_ns {
            members.push(("dur_ns".to_owned(), Json::Uint(dur)));
        }
        if !self.args.is_empty() {
            members.push(("args".to_owned(), Json::Str(self.args.clone())));
        }
        Json::Obj(members)
    }

    fn from_json(doc: &Json) -> Option<TraceSpan> {
        Some(TraceSpan {
            origin: SpanOrigin::parse(doc.get("origin")?.as_str()?)?,
            track: doc.get("track")?.as_str()?.to_owned(),
            name: doc.get("name")?.as_str()?.to_owned(),
            begin_ns: doc.get("begin_ns")?.as_u64()?,
            dur_ns: doc.get("dur_ns").and_then(Json::as_u64),
            args: doc
                .get("args")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        })
    }
}

/// One job's full span set, ready for assembly or persistence.
#[derive(Debug, Clone)]
pub struct JobSpans {
    /// The job id the spans belong to.
    pub id: String,
    /// Every retained span, recording order.
    pub spans: Vec<TraceSpan>,
    /// Hello-derived clock offset for child wall spans, when a child
    /// spoke the v2 protocol.
    pub offset_ns: Option<i64>,
    /// Exact count of spans shed by the bounded buffers (child-side
    /// and daemon-side combined).
    pub dropped: u64,
}

/// Persists a span set as `spans.jsonl`: a schema header line, then
/// one JSON line per span.
///
/// # Errors
///
/// Propagates write failures as a message.
pub fn write_spans(path: &Path, job: &JobSpans) -> Result<(), String> {
    let mut out = String::new();
    let mut header = vec![
        ("schema".to_owned(), Json::Str(SPANS_SCHEMA.to_owned())),
        ("id".to_owned(), Json::Str(job.id.clone())),
        ("dropped".to_owned(), Json::Uint(job.dropped)),
    ];
    if let Some(offset) = job.offset_ns {
        header.push(("offset_ns".to_owned(), Json::Int(offset)));
    }
    out.push_str(&Json::Obj(header).to_string());
    out.push('\n');
    for span in &job.spans {
        out.push_str(&span.to_json().to_string());
        out.push('\n');
    }
    std::fs::write(path, out)
        .map_err(|e| format!("cannot write span file `{}`: {e}", path.display()))
}

/// Loads a persisted span set. Tolerates a torn final line (the
/// daemon can die mid-append), errors on a missing or foreign header.
///
/// # Errors
///
/// Fails on unreadable files and unrecognized headers.
pub fn load_spans(path: &Path) -> Result<JobSpans, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read span file `{}`: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .and_then(|l| parse(l).ok())
        .ok_or_else(|| format!("span file `{}` has no header line", path.display()))?;
    if header.get("schema").and_then(Json::as_str) != Some(SPANS_SCHEMA) {
        return Err(format!(
            "span file `{}` has an unrecognized schema (expected {SPANS_SCHEMA})",
            path.display()
        ));
    }
    let id = header
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned();
    let dropped = header.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let offset_ns = header.get("offset_ns").and_then(json_i64);
    let spans = lines
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| parse(l).ok())
        .filter_map(|doc| TraceSpan::from_json(&doc))
        .collect();
    Ok(JobSpans {
        id,
        spans,
        offset_ns,
        dropped,
    })
}

/// Rebuilds a job's trace document offline from its artifact
/// directory (`spans.jsonl`), after the daemon is gone. When the
/// parent directory holds the serve journal, attempt history from it
/// is attached as document metadata.
///
/// # Errors
///
/// Fails when the span file is missing or damaged.
pub fn assemble_dir(dir: &Path) -> Result<Json, String> {
    let job = load_spans(&dir.join(SPANS_FILE))?;
    let mut doc = job_trace_doc(&job);
    if let Some(parent) = dir.parent() {
        let journal_path = parent.join(crate::journal::JOURNAL_FILE);
        if journal_path.is_file() {
            if let Ok(jobs) = crate::journal::load(&journal_path) {
                if let Some(loaded) = jobs.iter().find(|j| j.id == job.id) {
                    if let Json::Obj(members) = &mut doc {
                        members.push((
                            "journal".to_owned(),
                            Json::Obj(vec![
                                (
                                    "attempts".to_owned(),
                                    Json::Uint(u64::from(loaded.attempts)),
                                ),
                                (
                                    "finished".to_owned(),
                                    loaded.finished.as_ref().map_or(Json::Null, |f| {
                                        Json::Str(f.state.as_str().to_owned())
                                    }),
                                ),
                            ]),
                        ));
                    }
                }
            }
        }
    }
    Ok(doc)
}

/// Signed integer out of either exact-integer JSON variant.
fn json_i64(v: &Json) -> Option<i64> {
    match *v {
        Json::Uint(n) => i64::try_from(n).ok(),
        Json::Int(n) => Some(n),
        _ => None,
    }
}

/// Shifts a child-epoch-relative time onto the daemon timeline,
/// clamping at zero (a hostile or skewed offset must not produce a
/// negative timestamp, which Perfetto rejects).
fn align(begin_ns: u64, offset_ns: i64) -> u64 {
    let shifted = i128::from(begin_ns) + i128::from(offset_ns);
    u64::try_from(shifted.max(0)).unwrap_or(u64::MAX)
}

/// Microseconds from nanoseconds, Chrome's `ts`/`dur` unit.
fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1000.0)
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, label: &str) -> Json {
    let mut members = vec![
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("ph".to_owned(), Json::Str("M".to_owned())),
        ("pid".to_owned(), Json::Uint(pid)),
    ];
    if let Some(tid) = tid {
        members.push(("tid".to_owned(), Json::Uint(tid)));
    }
    members.push((
        "args".to_owned(),
        Json::Obj(vec![("name".to_owned(), Json::Str(label.to_owned()))]),
    ));
    Json::Obj(members)
}

fn span_event(span: &TraceSpan, pid: u64, tid: u64, ts_ns: u64, cat: &str) -> Json {
    let mut members = vec![
        ("name".to_owned(), Json::Str(span.name.clone())),
        ("cat".to_owned(), Json::Str(cat.to_owned())),
    ];
    match span.dur_ns {
        Some(dur) => {
            members.push(("ph".to_owned(), Json::Str("X".to_owned())));
            members.push(("ts".to_owned(), us(ts_ns)));
            members.push(("dur".to_owned(), us(dur)));
        }
        None => {
            members.push(("ph".to_owned(), Json::Str("i".to_owned())));
            members.push(("ts".to_owned(), us(ts_ns)));
            members.push(("s".to_owned(), Json::Str("t".to_owned())));
        }
    }
    members.push(("pid".to_owned(), Json::Uint(pid)));
    members.push(("tid".to_owned(), Json::Uint(tid)));
    if !span.args.is_empty() {
        if let Ok(args) = parse(&span.args) {
            members.push(("args".to_owned(), args));
        }
    }
    Json::Obj(members)
}

fn flow_event(ph: &str, id: u64, name: &str, pid: u64, tid: u64, ts_ns: u64) -> Json {
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("cat".to_owned(), Json::Str("causal".to_owned())),
        ("ph".to_owned(), Json::Str(ph.to_owned())),
        ("id".to_owned(), Json::Uint(id)),
        ("ts".to_owned(), us(ts_ns)),
        ("pid".to_owned(), Json::Uint(pid)),
        ("tid".to_owned(), Json::Uint(tid)),
        // Flow finish binds to the next slice on the track, not an
        // enclosing one (there may be none at the exact timestamp).
        ("bp".to_owned(), Json::Str("e".to_owned())),
    ])
}

/// One contribution to a merged trace document: a job's spans plus
/// the shift (nanoseconds) placing its telemetry epoch on the shared
/// document timeline. Per-job documents use shift 0.
struct Contribution<'a> {
    job: &'a JobSpans,
    shift_ns: u64,
    /// Prefix for track labels (`""` for single-job documents, the
    /// job id for merged ones).
    prefix: String,
}

/// Builds the trace document for one job (its own timeline origin).
#[must_use]
pub fn job_trace_doc(job: &JobSpans) -> Json {
    assemble(
        &[Contribution {
            job,
            shift_ns: 0,
            prefix: String::new(),
        }],
        Json::Obj(vec![
            ("id".to_owned(), Json::Str(job.id.clone())),
            (
                "trace_id".to_owned(),
                Json::Str(format!("{:016x}", TraceContext::mint(&job.id, 0).trace_id)),
            ),
            ("dropped".to_owned(), Json::Uint(job.dropped)),
            (
                "offset_ns".to_owned(),
                job.offset_ns.map_or(Json::Null, Json::Int),
            ),
        ]),
    )
}

/// Builds the daemon-wide document: every contributed job's spans on
/// one timeline, each shifted by its telemetry epoch's distance from
/// the fleet epoch, tracks prefixed with the job id.
#[must_use]
pub(crate) fn daemon_trace_doc(jobs: &[(JobSpans, u64)]) -> Json {
    let contributions: Vec<Contribution<'_>> = jobs
        .iter()
        .map(|(job, shift_ns)| Contribution {
            job,
            shift_ns: *shift_ns,
            prefix: format!("{}/", job.id),
        })
        .collect();
    let total_dropped: u64 = jobs.iter().map(|(j, _)| j.dropped).sum();
    assemble(
        &contributions,
        Json::Obj(vec![
            ("jobs".to_owned(), Json::Uint(jobs.len() as u64)),
            ("dropped".to_owned(), Json::Uint(total_dropped)),
        ]),
    )
}

fn assemble(contributions: &[Contribution<'_>], metadata: Json) -> Json {
    // Track ids per pid, assigned in first-seen order across the
    // contribution list (deterministic: span recording order is).
    let mut tids: BTreeMap<(u64, String), u64> = BTreeMap::new();
    let mut next_tid: BTreeMap<u64, u64> = BTreeMap::new();
    let mut events = Vec::new();
    events.push(meta_event("process_name", DAEMON_PID, None, "serve daemon"));
    events.push(meta_event(
        "process_name",
        CHILD_WALL_PID,
        None,
        "job child (wall clock)",
    ));
    events.push(meta_event(
        "process_name",
        CHILD_SIM_PID,
        None,
        "job child (simulated time)",
    ));
    let mut body = Vec::new();
    for c in contributions {
        let offset = c.job.offset_ns.unwrap_or(0);
        // The flow arrow for each attempt: started on the daemon's
        // attempt span, finished on the first child wall span that
        // follows it.
        let mut attempt_flows: Vec<(u64, u64, u64, u64)> = Vec::new(); // (id, pid, tid, ts)
        let mut attempt_ordinal = 0u32;
        let mut first_child_wall: Option<(u64, u64, u64)> = None; // (pid, tid, ts)
        for span in &c.job.spans {
            let (pid, ts_ns, cat) = match span.origin {
                SpanOrigin::Daemon => (DAEMON_PID, span.begin_ns + c.shift_ns, "daemon"),
                SpanOrigin::ChildWall => (
                    CHILD_WALL_PID,
                    align(span.begin_ns, offset) + c.shift_ns,
                    "wall",
                ),
                SpanOrigin::ChildSim => (CHILD_SIM_PID, span.begin_ns, "sim"),
            };
            let label = format!("{}{}", c.prefix, span.track);
            let tid = *tids.entry((pid, label.clone())).or_insert_with(|| {
                let next = next_tid.entry(pid).or_insert(0);
                *next += 1;
                events.push(meta_event("thread_name", pid, Some(*next), &label));
                *next
            });
            if span.origin == SpanOrigin::Daemon && span.name == "attempt" {
                let ctx = TraceContext::mint(&c.job.id, attempt_ordinal);
                attempt_flows.push((ctx.root_span, pid, tid, ts_ns));
                attempt_ordinal += 1;
            }
            if span.origin == SpanOrigin::ChildWall && first_child_wall.is_none() {
                first_child_wall = Some((pid, tid, ts_ns));
            }
            body.push(span_event(span, pid, tid, ts_ns, cat));
        }
        if let Some((cpid, ctid, cts)) = first_child_wall {
            for (id, pid, tid, ts) in attempt_flows {
                body.push(flow_event("s", id, "attempt", pid, tid, ts));
                body.push(flow_event("f", id, "attempt", cpid, ctid, cts.max(ts)));
            }
        }
    }
    events.append(&mut body);
    Json::Obj(vec![
        ("traceEvents".to_owned(), Json::Arr(events)),
        ("displayTimeUnit".to_owned(), Json::Str("ms".to_owned())),
        ("otherData".to_owned(), metadata),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_obs::trace_event::check_document;

    fn sample() -> JobSpans {
        JobSpans {
            id: "job-0001".to_owned(),
            spans: vec![
                TraceSpan {
                    origin: SpanOrigin::Daemon,
                    track: "daemon".to_owned(),
                    name: "queue.wait".to_owned(),
                    begin_ns: 1_000,
                    dur_ns: Some(50_000),
                    args: String::new(),
                },
                TraceSpan {
                    origin: SpanOrigin::Daemon,
                    track: "daemon".to_owned(),
                    name: "attempt".to_owned(),
                    begin_ns: 60_000,
                    dur_ns: Some(2_000_000),
                    args: "{\"attempt\":0}".to_owned(),
                },
                TraceSpan {
                    origin: SpanOrigin::ChildWall,
                    track: "main".to_owned(),
                    name: "cli.simulate".to_owned(),
                    begin_ns: 10_000,
                    dur_ns: Some(1_500_000),
                    args: String::new(),
                },
                TraceSpan {
                    origin: SpanOrigin::ChildSim,
                    track: "drive.queue".to_owned(),
                    name: "read".to_owned(),
                    begin_ns: 42,
                    dur_ns: None,
                    args: String::new(),
                },
            ],
            offset_ns: Some(100_000),
            dropped: 3,
        }
    }

    #[test]
    fn job_document_passes_the_structural_checker() {
        let doc = job_trace_doc(&sample());
        check_document(&doc).expect("valid trace document");
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents: {other:?}"),
        };
        // Child wall span lands at begin + offset.
        let wall = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("cli.simulate"))
            .expect("wall span present");
        assert_eq!(wall.get("ts").and_then(Json::as_f64), Some(110.0), "{wall}");
        // Sim span is NOT shifted.
        let sim = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("read"))
            .expect("sim span present");
        assert_eq!(sim.get("ts").and_then(Json::as_f64), Some(0.042));
        // The attempt is parented to the child by a flow pair with the
        // minted root-span id.
        let root = TraceContext::mint("job-0001", 0).root_span;
        let flows: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("s") | Some("f")))
            .collect();
        assert_eq!(flows.len(), 2, "one start + one finish");
        for f in &flows {
            assert_eq!(f.get("id").and_then(Json::as_u64), Some(root));
        }
        assert_eq!(
            doc.get("otherData")
                .and_then(|m| m.get("dropped"))
                .and_then(Json::as_u64),
            Some(3),
            "drop accounting is part of the document"
        );
    }

    #[test]
    fn hostile_offset_never_produces_negative_timestamps() {
        let mut job = sample();
        job.offset_ns = Some(i64::MIN);
        let doc = job_trace_doc(&job);
        check_document(&doc).expect("clamped, still valid");
    }

    #[test]
    fn span_files_round_trip_and_rebuild_the_same_document() {
        let dir = std::env::temp_dir().join(format!("serve-trace-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let job_dir = dir.join("job-0001");
        std::fs::create_dir_all(&job_dir).unwrap();
        let job = sample();
        write_spans(&job_dir.join(SPANS_FILE), &job).unwrap();
        let back = load_spans(&job_dir.join(SPANS_FILE)).unwrap();
        assert_eq!(back.id, job.id);
        assert_eq!(back.spans, job.spans);
        assert_eq!(back.offset_ns, job.offset_ns);
        assert_eq!(back.dropped, job.dropped);
        let live = job_trace_doc(&job).to_string();
        let offline = assemble_dir(&job_dir).unwrap().to_string();
        // The offline document may append journal metadata; the trace
        // events themselves are byte-identical.
        assert!(
            offline.starts_with(live.trim_end_matches('}')),
            "offline assembly rebuilds the live document"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_document_prefixes_tracks_and_shifts_epochs() {
        let a = sample();
        let mut b = sample();
        b.id = "job-0002".to_owned();
        let doc = daemon_trace_doc(&[(a, 0), (b, 7_000_000)]);
        check_document(&doc).expect("valid merged document");
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents: {other:?}"),
        };
        let waits: Vec<f64> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("queue.wait"))
            .filter_map(|e| e.get("ts").and_then(Json::as_f64))
            .collect();
        assert_eq!(waits.len(), 2);
        assert!(
            (waits[1] - waits[0] - 7_000.0).abs() < 1e-6,
            "second job shifted by its epoch distance: {waits:?}"
        );
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        == Some("job-0002/daemon")
            }),
            "merged tracks carry the job prefix"
        );
    }

    #[test]
    fn torn_span_file_tail_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("serve-trace-torn-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SPANS_FILE);
        let job = sample();
        write_spans(&path, &job).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"origin\":\"daemon\",\"track\":\"daemo");
        std::fs::write(&path, &text).unwrap();
        let back = load_spans(&path).unwrap();
        assert_eq!(back.spans.len(), job.spans.len(), "torn tail dropped");
        // A foreign header is a structured refusal.
        std::fs::write(&path, "{\"schema\":\"other/v9\"}\n").unwrap();
        assert!(load_spans(&path).unwrap_err().contains("schema"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
