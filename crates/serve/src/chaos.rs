//! Chaos harness: seeded fault scripts against a live serve daemon.
//!
//! `spindle chaos URL --seed S` drives a running daemon through the
//! failure modes the supervision layer exists for — child kills,
//! hung tasks, silenced telemetry, io faults, poison specs, and (when
//! `--daemon-pid` is given) a SIGTERM drain — and asserts the one
//! invariant that matters: **every job the daemon admitted reaches
//! exactly one terminal state, and the daemon can explain it** (the
//! detail and result endpoints agree on state, attempts, and error).
//!
//! Fault injection rides the spec's `faults` field: the daemon passes
//! it through as the child's `--faults` plan (spindle-harden), so the
//! chaos harness needs no privileged access — everything it does, a
//! hostile or unlucky client could do too. Scenarios run sequentially
//! and their specs are derived from `--seed`, so a chaos run is
//! replayable: same seed, same script, same verdicts.
//!
//! The stall and retry scenarios finish fastest against a daemon
//! started with tight supervision settings (for example
//! `--stall-timeout 2 --max-retries 1 --retry-base-ms 100`);
//! `scripts/check.sh` runs exactly that as a smoke test.

use crate::client::{self, Response};
use spindle_obs::json::Json;
use std::time::{Duration, Instant};

/// Terminal states a chaos job may legally land in.
const TERMINAL: &[&str] = &[
    "done",
    "failed",
    "cancelled",
    "timed_out",
    "stalled",
    "quarantined",
];

/// Chaos-run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Server address (`HOST:PORT` or `http://HOST:PORT`).
    pub url: String,
    /// Script seed: varies the generated specs deterministically.
    pub seed: u64,
    /// A trace file that exists *on the server*, enabling the io-fault
    /// scenario (`analyze` + `io@0`); skipped when `None`.
    pub input: Option<String>,
    /// The daemon's pid, enabling the SIGTERM drain scenario; skipped
    /// when `None`. The daemon is expected to exit — restart it with
    /// `--resume-dir` afterwards to verify losslessness.
    pub daemon_pid: Option<u32>,
    /// How long to wait for any one job to reach a terminal state.
    pub wait_timeout: Duration,
}

impl ChaosConfig {
    /// Defaults: seed 0, no io-fault input, no drain target.
    #[must_use]
    pub fn new(url: &str) -> ChaosConfig {
        ChaosConfig {
            url: url.to_owned(),
            seed: 0,
            input: None,
            daemon_pid: None,
            wait_timeout: Duration::from_secs(240),
        }
    }
}

/// One scenario's verdict.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (`retry-success`, `deadline`, ...).
    pub name: String,
    /// Whether the scenario's assertions held (skipped counts as
    /// passed: it asserts nothing).
    pub passed: bool,
    /// Whether the scenario was skipped (missing prerequisite).
    pub skipped: bool,
    /// Human-readable outcome.
    pub detail: String,
    /// Jobs the scenario submitted: `(id, final state, attempts)`.
    pub jobs: Vec<(String, String, u64)>,
}

impl Scenario {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("passed".to_owned(), Json::Bool(self.passed)),
            ("skipped".to_owned(), Json::Bool(self.skipped)),
            ("detail".to_owned(), Json::Str(self.detail.clone())),
            (
                "jobs".to_owned(),
                Json::Arr(
                    self.jobs
                        .iter()
                        .map(|(id, state, attempts)| {
                            Json::Obj(vec![
                                ("id".to_owned(), Json::Str(id.clone())),
                                ("state".to_owned(), Json::Str(state.clone())),
                                ("attempts".to_owned(), Json::Uint(*attempts)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The chaos run's summary.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the script ran under.
    pub seed: u64,
    /// Per-scenario verdicts, in execution order.
    pub scenarios: Vec<Scenario>,
    /// Whether every admitted job reached exactly one terminal state
    /// the daemon explains (detail and result endpoints agree).
    pub invariant_ok: bool,
    /// What broke, when `invariant_ok` is false.
    pub invariant_detail: String,
}

impl ChaosReport {
    /// Whether every scenario passed and the terminal-state invariant
    /// held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.invariant_ok && self.scenarios.iter().all(|s| s.passed)
    }

    /// The report as JSON (the `--out` artifact).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".to_owned(), Json::Uint(self.seed)),
            ("ok".to_owned(), Json::Bool(self.ok())),
            (
                "scenarios".to_owned(),
                Json::Arr(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
            ("invariant_ok".to_owned(), Json::Bool(self.invariant_ok)),
            (
                "invariant_detail".to_owned(),
                Json::Str(self.invariant_detail.clone()),
            ),
        ])
    }

    /// A human-readable multi-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "chaos: seed {} — {}\n",
            self.seed,
            if self.ok() { "OK" } else { "FAILED" }
        );
        for s in &self.scenarios {
            let mark = if s.skipped {
                "skip"
            } else if s.passed {
                "pass"
            } else {
                "FAIL"
            };
            let _ = writeln!(out, "  [{mark}] {:<16} {}", s.name, s.detail);
        }
        let _ = write!(
            out,
            "  invariant: every admitted job terminal & explained — {}",
            if self.invariant_ok {
                "held"
            } else {
                self.invariant_detail.as_str()
            }
        );
        out
    }
}

/// The harness's view of the daemon, plus every job id it admitted.
struct Harness {
    addr: String,
    wait: Duration,
    submitted: Vec<String>,
}

impl Harness {
    fn submit(&mut self, body: &str) -> Result<Response, String> {
        let r = client::request(&self.addr, "POST", "/jobs", Some(body))
            .map_err(|e| format!("submit failed: {e}"))?;
        if r.status == 201 {
            if let Some(id) = parse_field(&r.body, "id") {
                self.submitted.push(id);
            }
        }
        Ok(r)
    }

    /// Submits and expects a 201, returning the job id.
    fn submit_ok(&mut self, body: &str) -> Result<String, String> {
        let r = self.submit(body)?;
        if r.status != 201 {
            return Err(format!("expected 201, got {}: {}", r.status, r.body.trim()));
        }
        parse_field(&r.body, "id").ok_or_else(|| format!("no id in {}", r.body.trim()))
    }

    /// Polls `GET /jobs/ID` until the state is terminal; returns the
    /// final `(state, attempts, error)`.
    fn wait_terminal(&self, id: &str) -> Result<(String, u64, Option<String>), String> {
        let deadline = Instant::now() + self.wait;
        loop {
            let r = client::request(&self.addr, "GET", &format!("/jobs/{id}"), None)
                .map_err(|e| format!("cannot poll `{id}`: {e}"))?;
            let doc = spindle_obs::json::parse(r.body.trim())
                .map_err(|e| format!("bad job doc for `{id}`: {e}"))?;
            let state = doc
                .get("state")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            if TERMINAL.contains(&state.as_str()) {
                let attempts = doc.get("attempt").and_then(Json::as_u64).unwrap_or(0);
                let error = doc.get("error").and_then(Json::as_str).map(str::to_owned);
                return Ok((state, attempts, error));
            }
            if Instant::now() >= deadline {
                return Err(format!("`{id}` still `{state}` after {:?}", self.wait));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn artifact(&self, id: &str, name: &str) -> Result<String, String> {
        let r = client::request(
            &self.addr,
            "GET",
            &format!("/jobs/{id}/artifacts/{name}"),
            None,
        )
        .map_err(|e| format!("cannot fetch `{id}/{name}`: {e}"))?;
        if r.status != 200 {
            return Err(format!("artifact `{id}/{name}`: status {}", r.status));
        }
        Ok(r.body)
    }
}

fn parse_field(body: &str, field: &str) -> Option<String> {
    spindle_obs::json::parse(body.trim())
        .ok()?
        .get(field)
        .and_then(Json::as_str)
        .map(str::to_owned)
}

/// Whether a 400 means the daemon has no experiments binary (matrix
/// scenarios are then skipped, not failed).
fn matrix_unavailable(r: &Response) -> bool {
    r.status == 400 && r.body.contains("matrix jobs unavailable")
}

/// An inert fault token derived from the campaign seed: the kill site
/// is far past any real journal ordinal, so it never fires — but it
/// makes each seed's matrix specs fingerprint-unique, so a re-run
/// with a new seed never trips the poison breaker a previous campaign
/// left open.
fn seed_salt(seed: u64) -> String {
    format!("kill@{}", 9_000_000_000_u64 + seed % 1_000_000_000)
}

/// What a scenario body reports on success: the detail line plus the
/// `(id, state, attempts)` of every job it drove.
type Outcome = Result<(String, Vec<(String, String, u64)>), String>;

fn scenario(name: &str, outcome: Outcome) -> Scenario {
    match outcome {
        Ok((detail, jobs)) => Scenario {
            name: name.to_owned(),
            passed: true,
            skipped: false,
            detail,
            jobs,
        },
        Err(detail) => Scenario {
            name: name.to_owned(),
            passed: false,
            skipped: false,
            detail,
            jobs: Vec::new(),
        },
    }
}

fn skipped(name: &str, why: &str) -> Scenario {
    Scenario {
        name: name.to_owned(),
        passed: true,
        skipped: true,
        detail: format!("skipped: {why}"),
        jobs: Vec::new(),
    }
}

/// Runs the chaos script.
///
/// # Errors
///
/// Fails when the server is unreachable before the script starts;
/// in-script failures land in the report instead.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let addr = client::normalize_addr(&config.url);
    let health = client::request(&addr, "GET", "/healthz", None)
        .map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
    if health.status != 200 {
        return Err(format!(
            "`{addr}` is not healthy (status {})",
            health.status
        ));
    }
    let mut h = Harness {
        addr,
        wait: config.wait_timeout,
        submitted: Vec::new(),
    };
    let mut scenarios = Vec::new();

    // Probe: does this daemon run matrix jobs at all? The probe spec is
    // also the retry scenario's first twin, so nothing is wasted.
    let twin_body = format!(
        r#"{{"kind":"matrix","quick":true,"faults":"kill@0,{}"}}"#,
        seed_salt(config.seed)
    );
    let probe = h.submit(&twin_body)?;
    let matrix_ok = !matrix_unavailable(&probe);

    if matrix_ok {
        scenarios.push(retry_success(&mut h, &probe, &twin_body));
        scenarios.push(deadline(&mut h, config.seed));
        scenarios.push(stall(&mut h, config.seed));
        scenarios.push(poison(&mut h, config.seed));
    } else {
        for name in ["retry-success", "deadline", "stall", "poison"] {
            scenarios.push(skipped(name, "matrix jobs unavailable on this daemon"));
        }
    }

    scenarios.push(match &config.input {
        Some(input) => io_fault(&mut h, input),
        None => skipped("io-fault", "no --input trace file given"),
    });

    // The invariant check runs before the drain scenario on purpose:
    // drain deliberately leaves jobs *non*-terminal for the next
    // daemon, which is its own assertion, checked by the caller after
    // a --resume-dir restart.
    let (invariant_ok, invariant_detail) = check_invariant(&h);

    scenarios.push(match config.daemon_pid {
        Some(pid) => drain(&mut h, pid, config.seed),
        None => skipped("sigterm-drain", "no --daemon-pid given"),
    });

    Ok(ChaosReport {
        seed: config.seed,
        scenarios,
        invariant_ok,
        invariant_detail,
    })
}

/// A `kill@0` child dies once, retries, and completes — and an
/// identical twin produces byte-identical stdout, proving the retry
/// path preserves determinism.
fn retry_success(h: &mut Harness, probe: &Response, twin_body: &str) -> Scenario {
    scenario(
        "retry-success",
        (|| {
            if probe.status != 201 {
                return Err(format!(
                    "expected 201 for the kill@0 twin, got {}: {}",
                    probe.status,
                    probe.body.trim()
                ));
            }
            let a = parse_field(&probe.body, "id").ok_or("no id in probe response")?;
            let b = h.submit_ok(twin_body)?;
            let mut jobs = Vec::new();
            for id in [&a, &b] {
                let (state, attempts, error) = h.wait_terminal(id)?;
                if state != "done" {
                    return Err(format!(
                        "`{id}` ended `{state}` ({}), wanted `done` after a retry",
                        error.unwrap_or_default()
                    ));
                }
                if attempts == 0 {
                    return Err(format!(
                        "`{id}` finished without retrying: kill@0 never fired"
                    ));
                }
                jobs.push((id.clone(), state, attempts));
            }
            let out_a = h.artifact(&a, "stdout.txt")?;
            let out_b = h.artifact(&b, "stdout.txt")?;
            if out_a != out_b {
                return Err(format!(
                    "retried twins diverged: {} vs {} stdout bytes",
                    out_a.len(),
                    out_b.len()
                ));
            }
            Ok((
                format!(
                    "both twins done after {} retr{}, stdout byte-identical ({} bytes)",
                    jobs[0].2,
                    if jobs[0].2 == 1 { "y" } else { "ies" },
                    out_a.len()
                ),
                jobs,
            ))
        })(),
    )
}

/// A `hang@0` child never finishes; a 2-second spec deadline turns it
/// into `timed_out` — terminal, never retried.
fn deadline(h: &mut Harness, seed: u64) -> Scenario {
    scenario(
        "deadline",
        (|| {
            let id = h.submit_ok(&format!(
                r#"{{"kind":"matrix","quick":true,"faults":"hang@0,{}","deadline_secs":2}}"#,
                seed_salt(seed)
            ))?;
            let (state, attempts, error) = h.wait_terminal(&id)?;
            if state != "timed_out" {
                return Err(format!(
                    "`{id}` ended `{state}` ({}), wanted `timed_out`",
                    error.unwrap_or_default()
                ));
            }
            if attempts != 0 {
                return Err(format!(
                    "deadline kills must not retry, saw {attempts} attempt(s)"
                ));
            }
            Ok((
                format!("hung child killed by its 2s deadline -> `{state}`"),
                vec![(id, state, attempts)],
            ))
        })(),
    )
}

/// A child that speaks the telemetry protocol (two frames) then goes
/// silent while hung: the watchdog stall-kills it each attempt until
/// the budget is spent and it lands `stalled`.
fn stall(h: &mut Harness, seed: u64) -> Scenario {
    scenario(
        "stall",
        (|| {
            let id = h.submit_ok(&format!(
                r#"{{"kind":"matrix","quick":true,"faults":"stall@2,hang@0,{}"}}"#,
                seed_salt(seed)
            ))?;
            let (state, attempts, error) = h.wait_terminal(&id)?;
            if state != "stalled" {
                return Err(format!(
                    "`{id}` ended `{state}` ({}), wanted `stalled` (is the daemon running \
                 with --stall-timeout set?)",
                    error.unwrap_or_default()
                ));
            }
            Ok((
                format!(
                    "silent-but-alive child stall-killed; `stalled` after {attempts} retr{}",
                    if attempts == 1 { "y" } else { "ies" }
                ),
                vec![(id, state, attempts)],
            ))
        })(),
    )
}

/// A spec that dies on *every* attempt (`kill@0..7` covers any retry
/// budget up to 7) is quarantined, and an identical resubmission is
/// fast-rejected by the breaker with 409 + `Retry-After`.
fn poison(h: &mut Harness, seed: u64) -> Scenario {
    scenario(
        "poison",
        (|| {
            let body = format!(
                r#"{{"kind":"matrix","quick":true,"faults":"kill@0,kill@1,kill@2,kill@3,kill@4,kill@5,kill@6,kill@7,{}"}}"#,
                seed_salt(seed)
            );
            let id = h.submit_ok(&body)?;
            let (state, attempts, error) = h.wait_terminal(&id)?;
            if state != "quarantined" {
                return Err(format!(
                    "`{id}` ended `{state}` ({}), wanted `quarantined`",
                    error.unwrap_or_default()
                ));
            }
            let again = h.submit(&body)?;
            if again.status != 409 {
                return Err(format!(
                    "breaker let the poison spec back in: status {}",
                    again.status
                ));
            }
            if again.header("retry-after").is_none() {
                return Err("breaker 409 carried no Retry-After".to_owned());
            }
            Ok((
                format!(
                    "quarantined after {} attempt(s); identical resubmit -> 409 + Retry-After",
                    attempts + 1
                ),
                vec![(id, state, attempts)],
            ))
        })(),
    )
}

/// An `io@0` fault on a real analyze job fails fast and terminally:
/// a job's own non-zero exit is its problem, not a transient.
fn io_fault(h: &mut Harness, input: &str) -> Scenario {
    scenario(
        "io-fault",
        (|| {
            let id = h.submit_ok(&format!(
                r#"{{"kind":"analyze","input":"{input}","faults":"io@0"}}"#
            ))?;
            let (state, attempts, error) = h.wait_terminal(&id)?;
            if state != "failed" {
                return Err(format!(
                    "`{id}` ended `{state}` ({}), wanted `failed`",
                    error.unwrap_or_default()
                ));
            }
            if attempts != 0 {
                return Err(format!(
                    "io failures must not retry, saw {attempts} attempt(s)"
                ));
            }
            Ok((
                "injected io fault -> `failed`, no retries burned".to_owned(),
                vec![(id, state, attempts)],
            ))
        })(),
    )
}

/// SIGTERM the daemon mid-load: admission must flip to 503 +
/// `Retry-After`, and the process must exit within its drain window.
/// The unfinished jobs' journal records (no terminal event) are the
/// next daemon's to re-adopt — the caller verifies that by restarting
/// with `--resume-dir`.
fn drain(h: &mut Harness, pid: u32, seed: u64) -> Scenario {
    scenario(
        "sigterm-drain",
        (|| {
            // A little backlog so the drain actually has something to hand
            // over.
            for i in 0..3u64 {
                let _ = h.submit(&format!(
                    r#"{{"kind":"generate","env":"web","span":2,"seed":{}}}"#,
                    seed.wrapping_mul(10) + i
                ))?;
            }
            let term = std::process::Command::new("kill")
                .args(["-TERM", &pid.to_string()])
                .status()
                .map_err(|e| format!("cannot signal pid {pid}: {e}"))?;
            if !term.success() {
                return Err(format!("kill -TERM {pid} failed"));
            }
            // Draining: submissions must start bouncing with advice.
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut saw_503 = false;
            while Instant::now() < deadline {
                let Ok(r) = client::request(
                    &h.addr,
                    "POST",
                    "/jobs",
                    Some(r#"{"kind":"generate","env":"web","span":2,"seed":999999}"#),
                ) else {
                    // Connection refused already: the daemon finished its
                    // drain before we caught the 503 window. That is a
                    // legal (fast) drain.
                    break;
                };
                if r.status == 503 && r.header("retry-after").is_some() {
                    saw_503 = true;
                    break;
                }
                if r.status == 201 {
                    if let Some(id) = parse_field(&r.body, "id") {
                        h.submitted.push(id);
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            // The process must actually exit.
            let gone_by = Instant::now() + Duration::from_secs(60);
            loop {
                if client::request(&h.addr, "GET", "/healthz", None).is_err() {
                    break;
                }
                if Instant::now() >= gone_by {
                    return Err("daemon still serving 60s after SIGTERM".to_owned());
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok((
                format!(
                    "daemon drained and exited{}",
                    if saw_503 {
                        "; draining submissions got 503 + Retry-After"
                    } else {
                        " before a 503 could be observed"
                    }
                ),
                Vec::new(),
            ))
        })(),
    )
}

/// Every job this harness got a 201 for must be in exactly one
/// terminal state, and the detail and result endpoints must agree on
/// it.
fn check_invariant(h: &Harness) -> (bool, String) {
    for id in &h.submitted {
        let (state, _, _) = match h.wait_terminal(id) {
            Ok(t) => t,
            Err(e) => return (false, e),
        };
        let result = match client::request(&h.addr, "GET", &format!("/jobs/{id}/result"), None) {
            Ok(r) => r,
            Err(e) => return (false, format!("result endpoint for `{id}`: {e}")),
        };
        if result.status != 200 {
            return (
                false,
                format!("`{id}` is terminal but /result says {}", result.status),
            );
        }
        let result_state = parse_field(&result.body, "state").unwrap_or_default();
        if result_state != state {
            return (
                false,
                format!("`{id}`: detail says `{state}`, result says `{result_state}`"),
            );
        }
    }
    (true, format!("{} job(s) checked", h.submitted.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_serializes() {
        let report = ChaosReport {
            seed: 7,
            scenarios: vec![
                Scenario {
                    name: "retry-success".to_owned(),
                    passed: true,
                    skipped: false,
                    detail: "both twins done".to_owned(),
                    jobs: vec![("job-0001".to_owned(), "done".to_owned(), 1)],
                },
                Scenario {
                    name: "io-fault".to_owned(),
                    passed: true,
                    skipped: true,
                    detail: "skipped: no --input trace file given".to_owned(),
                    jobs: Vec::new(),
                },
            ],
            invariant_ok: true,
            invariant_detail: "1 job(s) checked".to_owned(),
        };
        assert!(report.ok());
        let text = report.render();
        assert!(text.contains("[pass] retry-success"), "{text}");
        assert!(text.contains("[skip] io-fault"), "{text}");
        assert!(text.contains("invariant"), "{text}");
        let doc = report.to_json();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        let parsed = spindle_obs::json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(7));

        let failed = ChaosReport {
            seed: 7,
            scenarios: vec![Scenario {
                name: "stall".to_owned(),
                passed: false,
                skipped: false,
                detail: "ended `done`".to_owned(),
                jobs: Vec::new(),
            }],
            invariant_ok: false,
            invariant_detail: "job-0002 never terminal".to_owned(),
        };
        assert!(!failed.ok());
        assert!(
            failed.render().contains("[FAIL] stall"),
            "{}",
            failed.render()
        );
        assert!(
            failed.render().contains("never terminal"),
            "{}",
            failed.render()
        );
    }
}
