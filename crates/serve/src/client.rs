//! A minimal HTTP/1.1 client for the job service.
//!
//! Enough for the load-test harness, the CLI, and tests: one request
//! per connection (the server closes after responding), plain
//! `std::net`, no TLS, no redirects.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Socket timeout for a single request/response exchange.
const TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`201`, `429`, ...).
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A header value by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Normalizes `http://HOST:PORT/` and bare `HOST:PORT` into the
/// address to connect to.
#[must_use]
pub fn normalize_addr(url: &str) -> String {
    url.trim()
        .strip_prefix("http://")
        .unwrap_or(url.trim())
        .trim_end_matches('/')
        .to_owned()
}

/// Performs one request against `addr` (a `HOST:PORT`).
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let body_bytes = body.unwrap_or_default().as_bytes();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body_bytes.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body_bytes)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &str) -> Option<Response> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
        })
        .collect();
    Some(Response {
        status,
        headers,
        body: body.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_urls() {
        assert_eq!(normalize_addr("http://127.0.0.1:80/"), "127.0.0.1:80");
        assert_eq!(normalize_addr("127.0.0.1:80"), "127.0.0.1:80");
        assert_eq!(normalize_addr(" http://h:1 "), "h:1");
    }

    #[test]
    fn parses_responses_and_headers() {
        let r = parse_response(
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Length: 2\r\n\r\nhi",
        )
        .unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("3"));
        assert_eq!(r.header("RETRY-AFTER"), Some("3"));
        assert_eq!(r.body, "hi");
        assert!(parse_response("garbage").is_none());
        assert!(parse_response("HTTP/1.1 foo\r\n\r\n").is_none());
    }
}
