//! Bounded FIFO job queue with admission control.
//!
//! The queue holds job *ids* (the job table owns the records). Its
//! bound is the service's admission limit: `push` fails immediately
//! when the queue is full — the HTTP layer turns that into a 429 with
//! `Retry-After` — rather than blocking the submitter. Runners block
//! on `pop` until work arrives or the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded multi-producer multi-consumer FIFO of job ids.
#[derive(Debug)]
pub struct JobQueue {
    bound: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<String>,
    closed: bool,
}

/// Why a `push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its admission bound.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

impl JobQueue {
    /// A queue admitting at most `bound` queued jobs (bound >= 1).
    #[must_use]
    pub fn new(bound: usize) -> JobQueue {
        JobQueue {
            bound: bound.max(1),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").queue.len()
    }

    /// Enqueues `id`, refusing immediately when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at the admission bound, [`PushError::Closed`]
    /// after [`JobQueue::close`].
    pub fn push(&self, id: String) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.queue.len() >= self.bound {
            return Err(PushError::Full);
        }
        inner.queue.push_back(id);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks up to `wait` for a job; `None` on timeout or when the
    /// queue is closed and drained.
    #[must_use]
    pub fn pop(&self, wait: Duration) -> Option<String> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(id) = inner.queue.pop_front() {
                return Some(id);
            }
            if inner.closed {
                return None;
            }
            let (next, timeout) = self
                .ready
                .wait_timeout(inner, wait)
                .expect("queue lock poisoned");
            inner = next;
            if timeout.timed_out() {
                return inner.queue.pop_front();
            }
        }
    }

    /// Removes a queued job by id (cancellation); `false` when the id
    /// was not queued (already claimed by a runner, or unknown).
    pub fn remove(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        match inner.queue.iter().position(|q| q == id) {
            Some(i) => {
                inner.queue.remove(i);
                true
            }
            None => false,
        }
    }

    /// Closes the queue: pushes fail, and blocked runners wake up and
    /// drain whatever is left.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_admission_bound() {
        let q = JobQueue::new(2);
        q.push("a".to_owned()).unwrap();
        q.push("b".to_owned()).unwrap();
        assert_eq!(q.push("c".to_owned()), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(Duration::from_millis(10)).as_deref(), Some("a"));
        q.push("c".to_owned()).unwrap();
        assert_eq!(q.pop(Duration::from_millis(10)).as_deref(), Some("b"));
        assert_eq!(q.pop(Duration::from_millis(10)).as_deref(), Some("c"));
        assert_eq!(q.pop(Duration::from_millis(10)), None);
    }

    #[test]
    fn remove_cancels_only_queued_ids() {
        let q = JobQueue::new(4);
        q.push("a".to_owned()).unwrap();
        q.push("b".to_owned()).unwrap();
        assert!(q.remove("a"));
        assert!(!q.remove("a"));
        assert!(!q.remove("zzz"));
        assert_eq!(q.pop(Duration::from_millis(10)).as_deref(), Some("b"));
    }

    #[test]
    fn close_wakes_blocked_consumers_and_refuses_pushes() {
        let q = Arc::new(JobQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(q.push("x".to_owned()), Err(PushError::Closed));
    }

    #[test]
    fn concurrent_producers_land_every_accepted_id_once() {
        let q = Arc::new(JobQueue::new(64));
        let producers: Vec<_> = (0..8)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut accepted = 0;
                    for i in 0..8 {
                        if q.push(format!("p{p}-{i}")).is_ok() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
        let mut drained = Vec::new();
        while let Some(id) = q.pop(Duration::from_millis(10)) {
            drained.push(id);
        }
        assert_eq!(drained.len(), accepted);
        drained.sort();
        drained.dedup();
        assert_eq!(drained.len(), accepted, "no id delivered twice");
    }
}
