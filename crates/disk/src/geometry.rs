//! Zoned-bit-recording disk geometry.
//!
//! Modern (post-1995) drives place more sectors on outer tracks than inner
//! ones; a [`DiskGeometry`] is an ordered list of [`Zone`]s, each with a
//! constant sectors-per-track. The geometry answers the one question the
//! mechanical model needs: *where* is an LBA — which track, and at what
//! angular offset within the track.

use crate::{DiskError, Result};

/// One recording zone: a run of tracks with identical sectors-per-track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// Number of tracks in this zone.
    pub tracks: u32,
    /// Sectors on each track of this zone.
    pub sectors_per_track: u32,
}

impl Zone {
    /// Total sectors in the zone.
    pub fn sectors(&self) -> u64 {
        self.tracks as u64 * self.sectors_per_track as u64
    }
}

/// Physical location of an LBA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Global track index, counted from the outermost track (track 0).
    pub track: u64,
    /// Sector offset within the track.
    pub offset: u32,
    /// Index of the containing zone.
    pub zone: usize,
    /// Sectors per track at this location.
    pub sectors_per_track: u32,
}

/// Drive geometry: an ordered sequence of zones from the outer diameter
/// (zone 0, highest density in real drives) inward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskGeometry {
    zones: Vec<Zone>,
    /// Cumulative first LBA of each zone (same length as `zones`).
    zone_start_lba: Vec<u64>,
    /// Cumulative first track of each zone.
    zone_start_track: Vec<u64>,
    total_sectors: u64,
    total_tracks: u64,
}

impl DiskGeometry {
    /// Builds a geometry from zones, outermost first.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] if `zones` is empty or any
    /// zone has zero tracks or zero sectors per track.
    pub fn new(zones: Vec<Zone>) -> Result<Self> {
        if zones.is_empty() {
            return Err(DiskError::InvalidConfig {
                name: "zones",
                reason: "geometry needs at least one zone",
            });
        }
        let mut zone_start_lba = Vec::with_capacity(zones.len());
        let mut zone_start_track = Vec::with_capacity(zones.len());
        let mut lba = 0u64;
        let mut track = 0u64;
        for z in &zones {
            if z.tracks == 0 || z.sectors_per_track == 0 {
                return Err(DiskError::InvalidConfig {
                    name: "zones",
                    reason: "zone tracks and sectors_per_track must be non-zero",
                });
            }
            zone_start_lba.push(lba);
            zone_start_track.push(track);
            lba += z.sectors();
            track += z.tracks as u64;
        }
        Ok(DiskGeometry {
            zones,
            zone_start_lba,
            zone_start_track,
            total_sectors: lba,
            total_tracks: track,
        })
    }

    /// A uniform (single-zone) geometry — useful for tests and for
    /// classic non-ZBR modeling.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] for zero tracks or sectors.
    pub fn uniform(tracks: u32, sectors_per_track: u32) -> Result<Self> {
        DiskGeometry::new(vec![Zone {
            tracks,
            sectors_per_track,
        }])
    }

    /// Total addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Total tracks across all zones.
    pub fn total_tracks(&self) -> u64 {
        self.total_tracks
    }

    /// The zones, outermost first.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Capacity in bytes (512-byte sectors).
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors * spindle_trace::SECTOR_BYTES
    }

    /// Locates an LBA.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] if `lba >= total_sectors()`.
    pub fn locate(&self, lba: u64) -> Result<Location> {
        if lba >= self.total_sectors {
            return Err(DiskError::OutOfRange {
                lba,
                sectors: 1,
                capacity: self.total_sectors,
            });
        }
        // Binary search the zone whose start LBA is <= lba.
        let zone = match self.zone_start_lba.binary_search(&lba) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let z = &self.zones[zone];
        let within = lba - self.zone_start_lba[zone];
        let track_in_zone = within / z.sectors_per_track as u64;
        let offset = (within % z.sectors_per_track as u64) as u32;
        Ok(Location {
            track: self.zone_start_track[zone] + track_in_zone,
            offset,
            zone,
            sectors_per_track: z.sectors_per_track,
        })
    }

    /// Validates that a whole request range fits on the drive.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] if `lba + sectors` exceeds the
    /// capacity.
    pub fn check_range(&self, lba: u64, sectors: u32) -> Result<()> {
        let end = lba
            .checked_add(sectors as u64)
            .ok_or(DiskError::OutOfRange {
                lba,
                sectors,
                capacity: self.total_sectors,
            })?;
        if end > self.total_sectors {
            return Err(DiskError::OutOfRange {
                lba,
                sectors,
                capacity: self.total_sectors,
            });
        }
        Ok(())
    }

    /// Number of track boundaries a transfer starting at `lba` for
    /// `sectors` sectors crosses (0 when it fits on one track).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] if the range does not fit.
    pub fn track_crossings(&self, lba: u64, sectors: u32) -> Result<u32> {
        self.check_range(lba, sectors)?;
        let start = self.locate(lba)?;
        let end = self.locate(lba + sectors as u64 - 1)?;
        Ok((end.track - start.track) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_zone() -> DiskGeometry {
        DiskGeometry::new(vec![
            Zone {
                tracks: 10,
                sectors_per_track: 100,
            }, // LBA 0..1000
            Zone {
                tracks: 10,
                sectors_per_track: 80,
            }, // LBA 1000..1800
            Zone {
                tracks: 10,
                sectors_per_track: 60,
            }, // LBA 1800..2400
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DiskGeometry::new(vec![]).is_err());
        assert!(DiskGeometry::new(vec![Zone {
            tracks: 0,
            sectors_per_track: 10
        }])
        .is_err());
        assert!(DiskGeometry::new(vec![Zone {
            tracks: 10,
            sectors_per_track: 0
        }])
        .is_err());
    }

    #[test]
    fn totals() {
        let g = three_zone();
        assert_eq!(g.total_sectors(), 2400);
        assert_eq!(g.total_tracks(), 30);
        assert_eq!(g.capacity_bytes(), 2400 * 512);
        assert_eq!(g.zones().len(), 3);
    }

    #[test]
    fn locate_within_zones() {
        let g = three_zone();
        let l = g.locate(0).unwrap();
        assert_eq!((l.track, l.offset, l.zone), (0, 0, 0));
        let l = g.locate(150).unwrap();
        assert_eq!((l.track, l.offset, l.zone), (1, 50, 0));
        assert_eq!(l.sectors_per_track, 100);
        // First LBA of zone 1.
        let l = g.locate(1000).unwrap();
        assert_eq!((l.track, l.offset, l.zone), (10, 0, 1));
        // Inside zone 2.
        let l = g.locate(1800 + 60 * 3 + 7).unwrap();
        assert_eq!((l.track, l.offset, l.zone), (23, 7, 2));
        // Last sector.
        let l = g.locate(2399).unwrap();
        assert_eq!((l.track, l.offset, l.zone), (29, 59, 2));
    }

    #[test]
    fn locate_rejects_out_of_range() {
        let g = three_zone();
        assert!(g.locate(2400).is_err());
        assert!(g.check_range(2399, 1).is_ok());
        assert!(g.check_range(2399, 2).is_err());
        assert!(g.check_range(u64::MAX, 2).is_err());
    }

    #[test]
    fn track_crossings_counted() {
        let g = three_zone();
        assert_eq!(g.track_crossings(0, 100).unwrap(), 0); // exactly one track
        assert_eq!(g.track_crossings(0, 101).unwrap(), 1);
        assert_eq!(g.track_crossings(950, 100).unwrap(), 1); // crosses zone boundary
        assert_eq!(g.track_crossings(50, 300).unwrap(), 3);
    }

    #[test]
    fn uniform_geometry() {
        let g = DiskGeometry::uniform(100, 500).unwrap();
        assert_eq!(g.total_sectors(), 50_000);
        let l = g.locate(1234).unwrap();
        assert_eq!(l.track, 2);
        assert_eq!(l.offset, 234);
    }

    #[test]
    fn every_lba_roundtrips_consistently() {
        let g = three_zone();
        let mut last_track = 0;
        for lba in 0..g.total_sectors() {
            let l = g.locate(lba).unwrap();
            assert!(l.track >= last_track, "track must be non-decreasing in lba");
            last_track = l.track;
            assert!(l.offset < l.sectors_per_track);
        }
    }
}
