//! Simulator instrumentation.
//!
//! [`SimObserver`] bundles pre-resolved metric handles, an optional
//! event ring, and an optional flight recorder so
//! [`DiskSim`](crate::sim::DiskSim) can record telemetry without any
//! name lookups on the hot path. With no observer attached (the
//! default) the simulator pays only an untaken `Option` branch per
//! site, keeping benchmark numbers unchanged.
//!
//! Metric names exported here:
//!
//! | name                       | kind      | meaning                                  |
//! |----------------------------|-----------|------------------------------------------|
//! | `disk.requests_completed`  | counter   | host-visible request completions         |
//! | `disk.read_hits`           | counter   | reads satisfied from the cache           |
//! | `disk.read_misses`         | counter   | reads serviced mechanically              |
//! | `disk.writes_cached`       | counter   | writes absorbed by the write-back cache  |
//! | `disk.writes_forced`       | counter   | writes forced to the medium              |
//! | `disk.destages`            | counter   | idle-time destage operations             |
//! | `disk.seeks`               | counter   | mechanical service operations (each one  |
//! |                            |           | repositions the head)                    |
//! | `disk.media_errors`        | counter   | injected media errors (retried next rev) |
//! | `disk.timeouts`            | counter   | injected command timeouts (retried)      |
//! | `disk.response_us`         | histogram | host-visible response time (µs)          |
//! | `disk.queue_depth`         | histogram | queue length at each dispatch            |
//! | `events.dropped`           | gauge     | event-ring entries overwritten (only     |
//! |                            |           | published when event tracing is on)      |
//!
//! When a [`FlightRecorder`] is attached with
//! [`SimObserver::with_flight`], the simulator additionally records
//! per-request lifecycle intervals and idle/destage activity on the
//! simulated-time tracks listed in [`track`].

use spindle_obs::{
    Counter, EventKind, EventLog, FlightRecorder, Gauge, Histogram, MetricsRegistry, ObsConfig,
};
use std::sync::Arc;

/// Simulated-time track names the disk instrumentation records on.
pub mod track {
    /// Per-request queueing intervals (arrival → dispatch).
    pub const QUEUE: &str = "drive.queue";
    /// Per-request service intervals (dispatch → completion), plus
    /// idle-time destage operations.
    pub const SERVICE: &str = "drive.service";
    /// Idle intervals (queue empty, waiting for arrivals).
    pub const IDLE: &str = "drive.idle";
    /// Instant events mirroring the [`EventLog`](spindle_obs::EventLog)
    /// ring (cache hits/misses, destages, enqueues, ...).
    pub const EVENTS: &str = "drive.events";
}

/// Pre-resolved telemetry handles for one simulator.
///
/// Cloning shares the underlying metrics, event ring, and recorder.
#[derive(Debug, Clone)]
pub struct SimObserver {
    pub(crate) requests_completed: Counter,
    pub(crate) read_hits: Counter,
    pub(crate) read_misses: Counter,
    pub(crate) writes_cached: Counter,
    pub(crate) writes_forced: Counter,
    pub(crate) destages: Counter,
    pub(crate) seeks: Counter,
    pub(crate) media_errors: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) response_us: Histogram,
    pub(crate) queue_depth: Histogram,
    pub(crate) events: Option<Arc<EventLog>>,
    /// Published only when event tracing is on, so a metrics-only run
    /// does not export a meaningless zero.
    pub(crate) events_dropped: Option<Gauge>,
    pub(crate) flight: Option<Arc<FlightRecorder>>,
}

impl SimObserver {
    /// Resolves handles against `registry` and allocates the event ring
    /// `config` asks for.
    pub fn new(registry: &MetricsRegistry, config: &ObsConfig) -> Self {
        let events = config.event_log();
        let events_dropped = events.is_some().then(|| registry.gauge("events.dropped"));
        SimObserver {
            requests_completed: registry.counter("disk.requests_completed"),
            read_hits: registry.counter("disk.read_hits"),
            read_misses: registry.counter("disk.read_misses"),
            writes_cached: registry.counter("disk.writes_cached"),
            writes_forced: registry.counter("disk.writes_forced"),
            destages: registry.counter("disk.destages"),
            seeks: registry.counter("disk.seeks"),
            media_errors: registry.counter("disk.media_errors"),
            timeouts: registry.counter("disk.timeouts"),
            response_us: registry.histogram("disk.response_us"),
            queue_depth: registry.histogram("disk.queue_depth"),
            events,
            events_dropped,
            flight: None,
        }
    }

    /// Attaches a flight recorder: the simulator records per-request
    /// lifecycle intervals and mirrors ring events onto simulated-time
    /// tracks.
    #[must_use]
    pub fn with_flight(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// The event ring, when event tracing is enabled.
    pub fn event_log(&self) -> Option<Arc<EventLog>> {
        self.events.clone()
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    #[inline]
    pub(crate) fn event(&self, t_ns: u64, kind: EventKind, detail: u64) {
        if let Some(log) = &self.events {
            log.record(t_ns, kind, detail);
        }
        if let Some(rec) = &self.flight {
            rec.sim_instant(
                track::EVENTS,
                kind.name(),
                t_ns,
                vec![("detail".to_owned(), spindle_obs::json::Json::Uint(detail))],
            );
        }
    }

    /// Records an interval on a simulated-time track (no-op without a
    /// recorder).
    #[inline]
    pub(crate) fn sim_slice(
        &self,
        track: &str,
        name: &str,
        begin_ns: u64,
        dur_ns: u64,
        args: Vec<(String, spindle_obs::json::Json)>,
    ) {
        if let Some(rec) = &self.flight {
            rec.sim_slice(track, name, begin_ns, dur_ns, args);
        }
    }

    /// Publishes end-of-run telemetry derived from the ring: the
    /// `events.dropped` gauge (and recorder metadata when both are
    /// attached), so truncated traces are visible instead of silent.
    pub fn settle(&self) {
        if let (Some(log), Some(gauge)) = (&self.events, &self.events_dropped) {
            gauge.set(i64::try_from(log.dropped()).unwrap_or(i64::MAX));
        }
        if let (Some(log), Some(rec)) = (&self.events, &self.flight) {
            use spindle_obs::json::Json;
            rec.set_meta("events.recorded", Json::Uint(log.total_recorded()));
            rec.set_meta("events.dropped", Json::Uint(log.dropped()));
            rec.set_meta("events.capacity", Json::Uint(log.capacity() as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_resolves_named_metrics() {
        let registry = MetricsRegistry::new();
        let obs = SimObserver::new(&registry, &ObsConfig::metrics_only());
        assert!(obs.event_log().is_none());
        assert!(obs.flight().is_none());
        obs.requests_completed.inc();
        obs.response_us.record(250);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("disk.requests_completed"), Some(1));
        assert_eq!(snap.histogram("disk.response_us").unwrap().count, 1);
        // Metrics-only observers do not publish the ring gauge.
        assert_eq!(snap.gauge("events.dropped"), None);
    }

    #[test]
    fn events_flow_only_when_enabled() {
        let registry = MetricsRegistry::new();
        let silent = SimObserver::new(&registry, &ObsConfig::metrics_only());
        silent.event(5, EventKind::CacheHit, 0);

        let traced = SimObserver::new(&registry, &ObsConfig::enabled());
        traced.event(5, EventKind::CacheHit, 77);
        let log = traced.event_log().expect("ring allocated");
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].detail, 77);
    }

    #[test]
    fn settle_publishes_dropped_count() {
        let mut cfg = ObsConfig::enabled();
        cfg.event_capacity = 2;
        let registry = MetricsRegistry::new();
        let obs = SimObserver::new(&registry, &cfg);
        for t in 0..5 {
            obs.event(t, EventKind::RequestEnqueue, t);
        }
        obs.settle();
        assert_eq!(registry.snapshot().gauge("events.dropped"), Some(3));
    }

    #[test]
    fn flight_mirrors_events_and_slices() {
        let registry = MetricsRegistry::new();
        let rec = Arc::new(FlightRecorder::new());
        let obs = SimObserver::new(&registry, &ObsConfig::enabled()).with_flight(Arc::clone(&rec));
        obs.event(10, EventKind::CacheMiss, 4096);
        obs.sim_slice(track::SERVICE, "read", 10, 500, vec![]);
        obs.settle();
        let sim = rec.sim_slices();
        assert_eq!(sim.len(), 2);
        assert_eq!(sim[0].track, track::EVENTS);
        assert_eq!(sim[0].dur_ns, None);
        assert_eq!(sim[1].track, track::SERVICE);
        assert_eq!(sim[1].dur_ns, Some(500));
        assert!(rec.meta().iter().any(|(k, _)| k == "events.dropped"));
    }
}
