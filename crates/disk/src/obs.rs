//! Simulator instrumentation.
//!
//! [`SimObserver`] bundles pre-resolved metric handles, an optional
//! event ring, and an optional flight recorder so
//! [`DiskSim`](crate::sim::DiskSim) can record telemetry without any
//! name lookups on the hot path. With no observer attached (the
//! default) the simulator pays only an untaken `Option` branch per
//! site, keeping benchmark numbers unchanged.
//!
//! Metric names exported here:
//!
//! | name                       | kind      | meaning                                  |
//! |----------------------------|-----------|------------------------------------------|
//! | `disk.requests_completed`  | counter   | host-visible request completions         |
//! | `disk.read_hits`           | counter   | reads satisfied from the cache           |
//! | `disk.read_misses`         | counter   | reads serviced mechanically              |
//! | `disk.writes_cached`       | counter   | writes absorbed by the write-back cache  |
//! | `disk.writes_forced`       | counter   | writes forced to the medium              |
//! | `disk.destages`            | counter   | idle-time destage operations             |
//! | `disk.seeks`               | counter   | mechanical service operations (each one  |
//! |                            |           | repositions the head)                    |
//! | `disk.media_errors`        | counter   | injected media errors (retried next rev) |
//! | `disk.timeouts`            | counter   | injected command timeouts (retried)      |
//! | `disk.response_us`         | histogram | host-visible response time (µs)          |
//! | `disk.queue_us`            | histogram | time queued before dispatch (µs)         |
//! | `disk.seek_us`             | histogram | arm movement per mechanical service (µs) |
//! | `disk.rotation_us`         | histogram | rotational wait per mechanical service   |
//! |                            |           | (µs)                                     |
//! | `disk.transfer_us`         | histogram | media transfer per mechanical service    |
//! |                            |           | (µs)                                     |
//! | `disk.destage_us`          | histogram | idle-time destage duration (µs)          |
//! | `disk.queue_depth`         | histogram | queue length at each dispatch            |
//! | `events.dropped`           | gauge     | event-ring entries overwritten (only     |
//! |                            |           | published when event tracing is on)      |
//!
//! The attribution histograms (`queue_us`/`seek_us`/`rotation_us`/
//! `transfer_us`) decompose each request's latency into where the time
//! went; every recorded value also offers a deterministic
//! [`Exemplar`] to its bucket, so a tail bucket links straight back to
//! the request id carried by the flight-recorder slices. When a
//! sim-axis [`RollupSet`] is attached with [`SimObserver::with_rollups`]
//! the same observations are banked into multi-resolution simulated-time
//! windows.
//!
//! When a [`FlightRecorder`] is attached with
//! [`SimObserver::with_flight`], the simulator additionally records
//! per-request lifecycle intervals and idle/destage activity on the
//! simulated-time tracks listed in [`track`].

use spindle_obs::{
    Counter, EventKind, EventLog, Exemplar, ExemplarHandle, FlightRecorder, Gauge, Histogram,
    MetricsRegistry, ObsConfig, RollupSet,
};
use std::sync::Arc;

/// Simulated-time track names the disk instrumentation records on.
pub mod track {
    /// Per-request queueing intervals (arrival → dispatch).
    pub const QUEUE: &str = "drive.queue";
    /// Per-request service intervals (dispatch → completion), plus
    /// idle-time destage operations.
    pub const SERVICE: &str = "drive.service";
    /// Idle intervals (queue empty, waiting for arrivals).
    pub const IDLE: &str = "drive.idle";
    /// Instant events mirroring the [`EventLog`](spindle_obs::EventLog)
    /// ring (cache hits/misses, destages, enqueues, ...).
    pub const EVENTS: &str = "drive.events";
}

/// Pre-resolved telemetry handles for one simulator.
///
/// Cloning shares the underlying metrics, event ring, and recorder.
#[derive(Debug, Clone)]
pub struct SimObserver {
    pub(crate) requests_completed: Counter,
    pub(crate) read_hits: Counter,
    pub(crate) read_misses: Counter,
    pub(crate) writes_cached: Counter,
    pub(crate) writes_forced: Counter,
    pub(crate) destages: Counter,
    pub(crate) seeks: Counter,
    pub(crate) media_errors: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) queue_depth: Histogram,
    /// Latency-attribution histograms (response plus components), each
    /// with one exemplar slot set linking tail buckets back to request
    /// ids.
    pub(crate) attribution: Attribution,
    pub(crate) events: Option<Arc<EventLog>>,
    /// Published only when event tracing is on, so a metrics-only run
    /// does not export a meaningless zero.
    pub(crate) events_dropped: Option<Gauge>,
    pub(crate) flight: Option<Arc<FlightRecorder>>,
    /// Optional simulated-time rollup wheel the attribution also feeds.
    pub(crate) rollups: Option<Arc<RollupSet>>,
}

/// One instrumented histogram plus its exemplar slots and rollup name.
#[derive(Debug, Clone)]
pub(crate) struct Attributed {
    name: &'static str,
    hist: Histogram,
    exemplars: ExemplarHandle,
}

impl Attributed {
    fn new(registry: &MetricsRegistry, name: &'static str) -> Self {
        let hist = registry.histogram(name);
        let exemplars = registry.exemplars().handle(name, hist.bucket_count());
        Attributed {
            name,
            hist,
            exemplars,
        }
    }
}

/// The per-request latency-attribution handles.
#[derive(Debug, Clone)]
pub(crate) struct Attribution {
    pub(crate) response_us: Attributed,
    pub(crate) queue_us: Attributed,
    pub(crate) seek_us: Attributed,
    pub(crate) rotation_us: Attributed,
    pub(crate) transfer_us: Attributed,
    pub(crate) destage_us: Attributed,
}

impl Attribution {
    fn new(registry: &MetricsRegistry) -> Self {
        Attribution {
            response_us: Attributed::new(registry, "disk.response_us"),
            queue_us: Attributed::new(registry, "disk.queue_us"),
            seek_us: Attributed::new(registry, "disk.seek_us"),
            rotation_us: Attributed::new(registry, "disk.rotation_us"),
            transfer_us: Attributed::new(registry, "disk.transfer_us"),
            destage_us: Attributed::new(registry, "disk.destage_us"),
        }
    }
}

/// Latency components of one mechanical service, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Components {
    pub(crate) seek_us: u64,
    pub(crate) rotation_us: u64,
    pub(crate) transfer_us: u64,
}

impl SimObserver {
    /// Resolves handles against `registry` and allocates the event ring
    /// `config` asks for.
    pub fn new(registry: &MetricsRegistry, config: &ObsConfig) -> Self {
        let events = config.event_log();
        let events_dropped = events.is_some().then(|| registry.gauge("events.dropped"));
        SimObserver {
            requests_completed: registry.counter("disk.requests_completed"),
            read_hits: registry.counter("disk.read_hits"),
            read_misses: registry.counter("disk.read_misses"),
            writes_cached: registry.counter("disk.writes_cached"),
            writes_forced: registry.counter("disk.writes_forced"),
            destages: registry.counter("disk.destages"),
            seeks: registry.counter("disk.seeks"),
            media_errors: registry.counter("disk.media_errors"),
            timeouts: registry.counter("disk.timeouts"),
            queue_depth: registry.histogram("disk.queue_depth"),
            attribution: Attribution::new(registry),
            events,
            events_dropped,
            flight: None,
            rollups: None,
        }
    }

    /// Attaches a flight recorder: the simulator records per-request
    /// lifecycle intervals and mirrors ring events onto simulated-time
    /// tracks.
    #[must_use]
    pub fn with_flight(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// Attaches a simulated-time rollup wheel: every attribution
    /// observation and completion is additionally banked into
    /// multi-resolution sim-time windows (stamped with simulated
    /// nanoseconds, so the wheel is identical at any `--jobs`).
    #[must_use]
    pub fn with_rollups(mut self, rollups: Arc<RollupSet>) -> Self {
        self.rollups = Some(rollups);
        self
    }

    /// The attached sim-axis rollup wheel, if any.
    pub fn rollups(&self) -> Option<&Arc<RollupSet>> {
        self.rollups.as_ref()
    }

    /// The event ring, when event tracing is enabled.
    pub fn event_log(&self) -> Option<Arc<EventLog>> {
        self.events.clone()
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    #[inline]
    pub(crate) fn event(&self, t_ns: u64, kind: EventKind, detail: u64) {
        if let Some(log) = &self.events {
            log.record(t_ns, kind, detail);
        }
        if let Some(rec) = &self.flight {
            rec.sim_instant(
                track::EVENTS,
                kind.name(),
                t_ns,
                vec![("detail".to_owned(), spindle_obs::json::Json::Uint(detail))],
            );
        }
    }

    /// Records an interval on a simulated-time track (no-op without a
    /// recorder).
    #[inline]
    pub(crate) fn sim_slice(
        &self,
        track: &str,
        name: &str,
        begin_ns: u64,
        dur_ns: u64,
        args: Vec<(String, spindle_obs::json::Json)>,
    ) {
        if let Some(rec) = &self.flight {
            rec.sim_slice(track, name, begin_ns, dur_ns, args);
        }
    }

    /// Records one attributed observation: histogram, exemplar offer,
    /// and (when a wheel is attached) the sim-axis rollup.
    #[inline]
    fn observe(&self, a: &Attributed, value_us: u64, id: u64, t_ns: u64, op: &'static str) {
        a.hist.record(value_us);
        a.exemplars.offer(
            a.hist.bucket_index(value_us),
            Exemplar {
                value: value_us,
                id,
                t_ns,
                op,
            },
        );
        if let Some(roll) = &self.rollups {
            roll.record_hist(a.name, t_ns, value_us);
        }
    }

    /// Records the full latency attribution of one completed request:
    /// the host-visible response, the time it spent queued, and — for
    /// mechanically serviced requests — the seek/rotation/transfer
    /// decomposition. Each value lands in its component histogram,
    /// offers an exemplar carrying the request id, and feeds the
    /// sim-axis rollup wheel when one is attached.
    #[inline]
    pub(crate) fn attribute_request(
        &self,
        id: u64,
        op: &'static str,
        complete_ns: u64,
        response_us: u64,
        queue_us: u64,
        components: Option<Components>,
    ) {
        self.observe(
            &self.attribution.response_us,
            response_us,
            id,
            complete_ns,
            op,
        );
        self.observe(&self.attribution.queue_us, queue_us, id, complete_ns, op);
        if let Some(c) = components {
            self.observe(&self.attribution.seek_us, c.seek_us, id, complete_ns, op);
            self.observe(
                &self.attribution.rotation_us,
                c.rotation_us,
                id,
                complete_ns,
                op,
            );
            self.observe(
                &self.attribution.transfer_us,
                c.transfer_us,
                id,
                complete_ns,
                op,
            );
        }
        if let Some(roll) = &self.rollups {
            roll.add_counter("disk.requests_completed", complete_ns, 1);
            // Per-op completion counters exist only on the wheel (the
            // registry already splits reads/writes by cache outcome);
            // they are what the observatory's R/W-mix table windows.
            match op {
                "read" => roll.add_counter("disk.reads", complete_ns, 1),
                "write" => roll.add_counter("disk.writes", complete_ns, 1),
                _ => {}
            }
        }
    }

    /// Records one idle-time destage: duration histogram (keyed by the
    /// destaged extent's LBA in the exemplar id slot — destages have no
    /// request id) plus the sim-axis rollup.
    #[inline]
    pub(crate) fn attribute_destage(&self, lba: u64, t_ns: u64, dur_us: u64) {
        self.observe(&self.attribution.destage_us, dur_us, lba, t_ns, "destage");
        if let Some(roll) = &self.rollups {
            roll.add_counter("disk.destages", t_ns, 1);
        }
    }

    /// Publishes end-of-run telemetry derived from the ring: the
    /// `events.dropped` gauge (and recorder metadata when both are
    /// attached), so truncated traces are visible instead of silent.
    pub fn settle(&self) {
        if let (Some(log), Some(gauge)) = (&self.events, &self.events_dropped) {
            gauge.set(i64::try_from(log.dropped()).unwrap_or(i64::MAX));
        }
        if let (Some(log), Some(rec)) = (&self.events, &self.flight) {
            use spindle_obs::json::Json;
            rec.set_meta("events.recorded", Json::Uint(log.total_recorded()));
            rec.set_meta("events.dropped", Json::Uint(log.dropped()));
            rec.set_meta("events.capacity", Json::Uint(log.capacity() as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_resolves_named_metrics() {
        let registry = MetricsRegistry::new();
        let obs = SimObserver::new(&registry, &ObsConfig::metrics_only());
        assert!(obs.event_log().is_none());
        assert!(obs.flight().is_none());
        obs.requests_completed.inc();
        obs.attribute_request(7, "read", 5_000, 250, 40, None);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("disk.requests_completed"), Some(1));
        assert_eq!(snap.histogram("disk.response_us").unwrap().count, 1);
        assert_eq!(snap.histogram("disk.queue_us").unwrap().count, 1);
        // No mechanical components were supplied.
        assert_eq!(snap.histogram("disk.seek_us").unwrap().count, 0);
        // Metrics-only observers do not publish the ring gauge.
        assert_eq!(snap.gauge("events.dropped"), None);
    }

    #[test]
    fn attribution_offers_exemplars_and_feeds_rollups() {
        let registry = MetricsRegistry::new();
        let rollups = Arc::new(RollupSet::sim());
        let obs = SimObserver::new(&registry, &ObsConfig::metrics_only())
            .with_rollups(Arc::clone(&rollups));
        assert!(obs.rollups().is_some());
        obs.attribute_request(
            3,
            "read",
            12_000_000, // 12 ms sim time → second 10ms window
            900,
            100,
            Some(Components {
                seek_us: 400,
                rotation_us: 300,
                transfer_us: 200,
            }),
        );
        obs.attribute_destage(4096, 20_000_000, 550);
        // Exemplars: the response histogram's tail bucket names id 3.
        let ex = registry.exemplars().snapshot();
        let (_, slots) = ex
            .iter()
            .find(|(name, _)| name == "disk.response_us")
            .expect("response exemplars registered");
        let hit = slots.iter().flatten().next().expect("one exemplar kept");
        assert_eq!(hit.id, 3);
        assert_eq!(hit.value, 900);
        assert_eq!(hit.op, "read");
        // Rollups: every resolution's merge saw the observations.
        let snap = rollups.snapshot();
        for r in &snap.resolutions {
            let merged = r.merged();
            assert_eq!(merged.counters["disk.requests_completed"], 1);
            assert_eq!(merged.counters["disk.reads"], 1);
            assert!(!merged.counters.contains_key("disk.writes"));
            assert_eq!(merged.counters["disk.destages"], 1);
            assert_eq!(merged.histograms["disk.seek_us"].sum, 400);
            assert_eq!(merged.histograms["disk.destage_us"].count, 1);
        }
        // The 10ms wheel banked them in distinct windows.
        let fine = snap.resolution("10ms").unwrap();
        assert_eq!(fine.windows.len(), 2);
    }

    #[test]
    fn events_flow_only_when_enabled() {
        let registry = MetricsRegistry::new();
        let silent = SimObserver::new(&registry, &ObsConfig::metrics_only());
        silent.event(5, EventKind::CacheHit, 0);

        let traced = SimObserver::new(&registry, &ObsConfig::enabled());
        traced.event(5, EventKind::CacheHit, 77);
        let log = traced.event_log().expect("ring allocated");
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].detail, 77);
    }

    #[test]
    fn settle_publishes_dropped_count() {
        let mut cfg = ObsConfig::enabled();
        cfg.event_capacity = 2;
        let registry = MetricsRegistry::new();
        let obs = SimObserver::new(&registry, &cfg);
        for t in 0..5 {
            obs.event(t, EventKind::RequestEnqueue, t);
        }
        obs.settle();
        assert_eq!(registry.snapshot().gauge("events.dropped"), Some(3));
    }

    #[test]
    fn flight_mirrors_events_and_slices() {
        let registry = MetricsRegistry::new();
        let rec = Arc::new(FlightRecorder::new());
        let obs = SimObserver::new(&registry, &ObsConfig::enabled()).with_flight(Arc::clone(&rec));
        obs.event(10, EventKind::CacheMiss, 4096);
        obs.sim_slice(track::SERVICE, "read", 10, 500, vec![]);
        obs.settle();
        let sim = rec.sim_slices();
        assert_eq!(sim.len(), 2);
        assert_eq!(sim[0].track, track::EVENTS);
        assert_eq!(sim[0].dur_ns, None);
        assert_eq!(sim[1].track, track::SERVICE);
        assert_eq!(sim[1].dur_ns, Some(500));
        assert!(rec.meta().iter().any(|(k, _)| k == "events.dropped"));
    }
}
