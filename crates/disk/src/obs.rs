//! Simulator instrumentation.
//!
//! [`SimObserver`] bundles pre-resolved metric handles and an optional
//! event ring so [`DiskSim`](crate::sim::DiskSim) can record telemetry
//! without any name lookups on the hot path. With no observer attached
//! (the default) the simulator pays only an untaken `Option` branch per
//! site, keeping benchmark numbers unchanged.
//!
//! Metric names exported here:
//!
//! | name                       | kind      | meaning                                  |
//! |----------------------------|-----------|------------------------------------------|
//! | `disk.requests_completed`  | counter   | host-visible request completions         |
//! | `disk.read_hits`           | counter   | reads satisfied from the cache           |
//! | `disk.read_misses`         | counter   | reads serviced mechanically              |
//! | `disk.writes_cached`       | counter   | writes absorbed by the write-back cache  |
//! | `disk.writes_forced`       | counter   | writes forced to the medium              |
//! | `disk.destages`            | counter   | idle-time destage operations             |
//! | `disk.seeks`               | counter   | mechanical service operations (each one  |
//! |                            |           | repositions the head)                    |
//! | `disk.response_us`         | histogram | host-visible response time (µs)          |
//! | `disk.queue_depth`         | histogram | queue length at each dispatch            |

use spindle_obs::{Counter, EventKind, EventLog, Histogram, MetricsRegistry, ObsConfig};
use std::sync::Arc;

/// Pre-resolved telemetry handles for one simulator.
///
/// Cloning shares the underlying metrics and event ring.
#[derive(Debug, Clone)]
pub struct SimObserver {
    pub(crate) requests_completed: Counter,
    pub(crate) read_hits: Counter,
    pub(crate) read_misses: Counter,
    pub(crate) writes_cached: Counter,
    pub(crate) writes_forced: Counter,
    pub(crate) destages: Counter,
    pub(crate) seeks: Counter,
    pub(crate) response_us: Histogram,
    pub(crate) queue_depth: Histogram,
    pub(crate) events: Option<Arc<EventLog>>,
}

impl SimObserver {
    /// Resolves handles against `registry` and allocates the event ring
    /// `config` asks for.
    pub fn new(registry: &MetricsRegistry, config: &ObsConfig) -> Self {
        SimObserver {
            requests_completed: registry.counter("disk.requests_completed"),
            read_hits: registry.counter("disk.read_hits"),
            read_misses: registry.counter("disk.read_misses"),
            writes_cached: registry.counter("disk.writes_cached"),
            writes_forced: registry.counter("disk.writes_forced"),
            destages: registry.counter("disk.destages"),
            seeks: registry.counter("disk.seeks"),
            response_us: registry.histogram("disk.response_us"),
            queue_depth: registry.histogram("disk.queue_depth"),
            events: config.event_log(),
        }
    }

    /// The event ring, when event tracing is enabled.
    pub fn event_log(&self) -> Option<Arc<EventLog>> {
        self.events.clone()
    }

    #[inline]
    pub(crate) fn event(&self, t_ns: u64, kind: EventKind, detail: u64) {
        if let Some(log) = &self.events {
            log.record(t_ns, kind, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_resolves_named_metrics() {
        let registry = MetricsRegistry::new();
        let obs = SimObserver::new(&registry, &ObsConfig::metrics_only());
        assert!(obs.event_log().is_none());
        obs.requests_completed.inc();
        obs.response_us.record(250);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("disk.requests_completed"), Some(1));
        assert_eq!(snap.histogram("disk.response_us").unwrap().count, 1);
    }

    #[test]
    fn events_flow_only_when_enabled() {
        let registry = MetricsRegistry::new();
        let silent = SimObserver::new(&registry, &ObsConfig::metrics_only());
        silent.event(5, EventKind::CacheHit, 0);

        let traced = SimObserver::new(&registry, &ObsConfig::enabled());
        traced.event(5, EventKind::CacheHit, 77);
        let log = traced.event_log().expect("ring allocated");
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].detail, 77);
    }
}
