//! On-drive segmented cache: read-ahead and write-back.
//!
//! The drive cache is what decouples the host-visible request stream from
//! the mechanical work the drive actually performs — and therefore from
//! the busy/idle structure the paper measures:
//!
//! * **Read-ahead** — a read miss is serviced mechanically and the
//!   surrounding extent is retained (plus a prefetch window), so
//!   sequential read runs hit in the buffer after the first request.
//! * **Write-back** — writes are absorbed into cache segments at
//!   electronic speed and *destaged* to the medium later, preferentially
//!   during idle periods. This moves write work out of busy bursts into
//!   idle stretches, reshaping the idle-interval distribution.
//!
//! The model is segment-based, LRU for clean data and FIFO for dirty
//! data, with sequential coalescing of dirty extents.

use crate::{DiskError, Result};
use std::collections::VecDeque;

/// Configuration of the on-drive cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Number of clean (read) segments.
    pub segments: usize,
    /// Maximum sectors a single segment can hold.
    pub segment_sectors: u32,
    /// Sectors prefetched past the end of a read miss (0 disables
    /// read-ahead).
    pub read_ahead_sectors: u32,
    /// Whether writes are absorbed write-back (true) or forced through to
    /// the medium (false).
    pub write_back: bool,
    /// Maximum dirty segments held before writes are forced through.
    pub max_dirty_segments: usize,
    /// Idle time (ns) the drive waits before starting to destage dirty
    /// data.
    pub idle_destage_delay_ns: u64,
}

impl CacheConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] if `segment_sectors == 0`, or
    /// if `write_back` is set with `max_dirty_segments == 0`.
    pub fn validate(&self) -> Result<()> {
        if self.segment_sectors == 0 {
            return Err(DiskError::InvalidConfig {
                name: "segment_sectors",
                reason: "segments must hold at least one sector",
            });
        }
        if self.write_back && self.max_dirty_segments == 0 {
            return Err(DiskError::InvalidConfig {
                name: "max_dirty_segments",
                reason: "write-back caching needs at least one dirty segment",
            });
        }
        Ok(())
    }

    /// A cache configuration with all caching disabled — every request is
    /// serviced mechanically. Useful as the ablation baseline.
    pub fn disabled() -> Self {
        CacheConfig {
            segments: 0,
            segment_sectors: 1,
            read_ahead_sectors: 0,
            write_back: false,
            max_dirty_segments: 0,
            idle_destage_delay_ns: 0,
        }
    }
}

impl Default for CacheConfig {
    /// Defaults modeled on a c. 2008 enterprise drive: 16 MiB of cache in
    /// 1 MiB segments, 128 KiB read-ahead, write-back enabled with a 5 ms
    /// idle wait before destaging.
    fn default() -> Self {
        CacheConfig {
            segments: 16,
            segment_sectors: 2048,
            read_ahead_sectors: 256,
            write_back: true,
            max_dirty_segments: 16,
            idle_destage_delay_ns: 5_000_000,
        }
    }
}

/// A contiguous cached extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First LBA of the extent.
    pub lba: u64,
    /// Length in sectors.
    pub sectors: u32,
}

impl Extent {
    /// First LBA past the end.
    pub fn end(&self) -> u64 {
        self.lba + self.sectors as u64
    }

    /// Whether `[lba, lba + sectors)` lies entirely within this extent.
    pub fn contains(&self, lba: u64, sectors: u32) -> bool {
        lba >= self.lba && lba + sectors as u64 <= self.end()
    }
}

/// Outcome of offering a write to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write was absorbed into the write-back cache; it completes at
    /// electronic speed and the medium work happens at destage time.
    Cached,
    /// The cache cannot absorb the write (write-through mode or dirty
    /// cache full); it must be serviced mechanically now.
    Forced,
}

/// Segmented drive cache state.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskCache {
    config: CacheConfig,
    /// Clean segments in LRU order (front = least recent).
    clean: VecDeque<Extent>,
    /// Dirty segments in FIFO destage order.
    dirty: VecDeque<Extent>,
}

impl DiskCache {
    /// Creates a cache.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`] failures.
    pub fn new(config: CacheConfig) -> Result<Self> {
        config.validate()?;
        Ok(DiskCache {
            config,
            clean: VecDeque::new(),
            dirty: VecDeque::new(),
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Checks whether a read of `[lba, lba + sectors)` hits entirely in
    /// cache (clean or dirty data). On a hit the containing clean segment
    /// is promoted to most-recently-used.
    pub fn read_hit(&mut self, lba: u64, sectors: u32) -> bool {
        if let Some(pos) = self.clean.iter().position(|e| e.contains(lba, sectors)) {
            let e = self.clean.remove(pos).expect("position came from iter");
            self.clean.push_back(e);
            return true;
        }
        self.dirty.iter().any(|e| e.contains(lba, sectors))
    }

    /// Inserts a clean extent (a serviced read plus its read-ahead),
    /// evicting the least-recently-used segment if at capacity. Extents
    /// longer than a segment are truncated to the segment size (keeping
    /// the tail, which is what sequential readers will touch next).
    pub fn insert_clean(&mut self, lba: u64, sectors: u32) {
        if self.config.segments == 0 || sectors == 0 {
            return;
        }
        let (lba, sectors) = if sectors > self.config.segment_sectors {
            let drop = (sectors - self.config.segment_sectors) as u64;
            (lba + drop, self.config.segment_sectors)
        } else {
            (lba, sectors)
        };
        // Drop any clean extent fully shadowed by the new one.
        self.clean
            .retain(|e| !(e.lba >= lba && e.end() <= lba + sectors as u64));
        while self.clean.len() >= self.config.segments {
            self.clean.pop_front();
        }
        self.clean.push_back(Extent { lba, sectors });
    }

    /// Offers a write to the cache.
    ///
    /// In write-back mode the write is absorbed if it coalesces with the
    /// newest dirty extent (sequential continuation within the segment
    /// limit) or a dirty segment is free. Cached data covering the
    /// written range is invalidated either way (the medium copy is stale).
    pub fn write(&mut self, lba: u64, sectors: u32) -> WriteOutcome {
        // Invalidate overlapping clean extents — partial overlap leaves a
        // stale prefix/suffix, so drop the whole segment for safety.
        let end = lba + sectors as u64;
        self.clean.retain(|e| e.end() <= lba || e.lba >= end);

        if !self.config.write_back {
            return WriteOutcome::Forced;
        }
        // Sequential coalescing into the newest dirty extent.
        if let Some(last) = self.dirty.back_mut() {
            if last.end() == lba && last.sectors + sectors <= self.config.segment_sectors {
                last.sectors += sectors;
                return WriteOutcome::Cached;
            }
        }
        if self.dirty.len() < self.config.max_dirty_segments
            && sectors <= self.config.segment_sectors
        {
            self.dirty.push_back(Extent { lba, sectors });
            return WriteOutcome::Cached;
        }
        WriteOutcome::Forced
    }

    /// Next dirty extent to destage (FIFO), removed from the cache.
    pub fn pop_dirty(&mut self) -> Option<Extent> {
        self.dirty.pop_front()
    }

    /// Number of dirty segments awaiting destage.
    pub fn dirty_segments(&self) -> usize {
        self.dirty.len()
    }

    /// Whether any dirty data awaits destage.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Number of clean segments currently held.
    pub fn clean_segments(&self) -> usize {
        self.clean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DiskCache {
        DiskCache::new(CacheConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = CacheConfig::default();
        c.segment_sectors = 0;
        assert!(DiskCache::new(c).is_err());
        let mut c = CacheConfig::default();
        c.max_dirty_segments = 0;
        assert!(DiskCache::new(c).is_err());
        assert!(DiskCache::new(CacheConfig::disabled()).is_ok());
    }

    #[test]
    fn read_miss_then_hit_after_insert() {
        let mut c = cache();
        assert!(!c.read_hit(100, 8));
        c.insert_clean(100, 264); // 8 sectors + 256 read-ahead
        assert!(c.read_hit(100, 8));
        assert!(c.read_hit(108, 8)); // read-ahead window
        assert!(c.read_hit(356, 8)); // last 8 of the extent
        assert!(!c.read_hit(360, 8)); // past the extent
        assert!(!c.read_hit(356, 16)); // straddles the end
    }

    #[test]
    fn lru_eviction() {
        let mut cfg = CacheConfig::default();
        cfg.segments = 2;
        let mut c = DiskCache::new(cfg).unwrap();
        c.insert_clean(0, 8);
        c.insert_clean(1000, 8);
        // Touch extent 0 so extent 1000 becomes LRU.
        assert!(c.read_hit(0, 8));
        c.insert_clean(2000, 8); // evicts 1000
        assert!(c.read_hit(0, 8));
        assert!(!c.read_hit(1000, 8));
        assert!(c.read_hit(2000, 8));
        assert_eq!(c.clean_segments(), 2);
    }

    #[test]
    fn oversized_insert_keeps_tail() {
        let mut cfg = CacheConfig::default();
        cfg.segment_sectors = 64;
        let mut c = DiskCache::new(cfg).unwrap();
        c.insert_clean(0, 128);
        assert!(!c.read_hit(0, 8));
        assert!(c.read_hit(64, 64));
    }

    #[test]
    fn write_back_absorbs_and_hits() {
        let mut c = cache();
        assert_eq!(c.write(500, 16), WriteOutcome::Cached);
        assert!(c.has_dirty());
        // Reading back just-written data hits (it is in the buffer).
        assert!(c.read_hit(500, 16));
    }

    #[test]
    fn sequential_writes_coalesce() {
        let mut c = cache();
        assert_eq!(c.write(0, 8), WriteOutcome::Cached);
        assert_eq!(c.write(8, 8), WriteOutcome::Cached);
        assert_eq!(c.write(16, 8), WriteOutcome::Cached);
        assert_eq!(c.dirty_segments(), 1);
        let e = c.pop_dirty().unwrap();
        assert_eq!(
            e,
            Extent {
                lba: 0,
                sectors: 24
            }
        );
    }

    #[test]
    fn dirty_capacity_forces_writes() {
        let mut cfg = CacheConfig::default();
        cfg.max_dirty_segments = 2;
        let mut c = DiskCache::new(cfg).unwrap();
        assert_eq!(c.write(0, 8), WriteOutcome::Cached);
        assert_eq!(c.write(10_000, 8), WriteOutcome::Cached);
        assert_eq!(c.write(20_000, 8), WriteOutcome::Forced);
        // Destaging one frees a slot.
        assert!(c.pop_dirty().is_some());
        assert_eq!(c.write(20_000, 8), WriteOutcome::Cached);
    }

    #[test]
    fn write_through_always_forces() {
        let mut cfg = CacheConfig::default();
        cfg.write_back = false;
        let mut c = DiskCache::new(cfg).unwrap();
        assert_eq!(c.write(0, 8), WriteOutcome::Forced);
        assert!(!c.has_dirty());
    }

    #[test]
    fn writes_invalidate_overlapping_clean_data() {
        let mut c = cache();
        c.insert_clean(100, 64);
        assert!(c.read_hit(100, 64));
        c.write(120, 8);
        // The whole overlapped segment is dropped; the dirty extent still
        // serves exactly the written range.
        assert!(c.read_hit(120, 8));
        assert!(!c.read_hit(100, 64));
    }

    #[test]
    fn oversized_write_is_forced() {
        let mut cfg = CacheConfig::default();
        cfg.segment_sectors = 64;
        let mut c = DiskCache::new(cfg).unwrap();
        assert_eq!(c.write(0, 65), WriteOutcome::Forced);
    }

    #[test]
    fn destage_order_is_fifo() {
        let mut c = cache();
        c.write(100, 8);
        c.write(5000, 8);
        assert_eq!(c.pop_dirty().unwrap().lba, 100);
        assert_eq!(c.pop_dirty().unwrap().lba, 5000);
        assert_eq!(c.pop_dirty(), None);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = DiskCache::new(CacheConfig::disabled()).unwrap();
        c.insert_clean(0, 8);
        assert!(!c.read_hit(0, 8));
        assert_eq!(c.write(0, 1), WriteOutcome::Forced);
    }
}
