//! Mechanical timing model: seek, rotation, transfer.
//!
//! The seek curve follows the classical three-point model: a
//! `a + b·√d + c·d` function of the seek distance `d` in tracks, fitted so
//! that it reproduces the drive's published single-track, one-third-stroke
//! (≈ average), and full-stroke seek times. Rotational latency is computed
//! from the actual angular position of the platter (the simulator tracks
//! wall-clock time, so the angle is deterministic), and transfer time
//! follows from the zone's sectors-per-track plus head-switch time for
//! track crossings.

use crate::geometry::DiskGeometry;
use crate::{DiskError, Result};

/// Nanoseconds per millisecond.
pub const NS_PER_MS: f64 = 1e6;

/// Fitted seek curve `seek(d) = a + b·√d + c·d` (milliseconds, d in
/// tracks), with `seek(0) = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekCurve {
    a: f64,
    b: f64,
    c: f64,
    max_distance: f64,
}

impl SeekCurve {
    /// Fits the curve through three published data points: the
    /// single-track seek time, the seek time at one-third stroke (a good
    /// proxy for the published "average" seek), and the full-stroke seek
    /// time, all in milliseconds, for a drive with `total_tracks` tracks.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] if the times are not strictly
    /// increasing and positive, or if `total_tracks < 9` (the three fit
    /// points must be distinct).
    pub fn fit(
        single_track_ms: f64,
        third_stroke_ms: f64,
        full_stroke_ms: f64,
        total_tracks: u64,
    ) -> Result<Self> {
        if !(single_track_ms > 0.0
            && third_stroke_ms > single_track_ms
            && full_stroke_ms > third_stroke_ms)
        {
            return Err(DiskError::InvalidConfig {
                name: "seek times",
                reason: "need 0 < single_track < third_stroke < full_stroke",
            });
        }
        if total_tracks < 9 {
            return Err(DiskError::InvalidConfig {
                name: "total_tracks",
                reason: "seek curve fit needs at least 9 tracks",
            });
        }
        let d1 = 1.0f64;
        let d2 = (total_tracks as f64 / 3.0).max(2.0);
        let d3 = (total_tracks - 1) as f64;
        // Solve the 3x3 system for (a, b, c):
        //   a + b√d_i + c·d_i = t_i
        let rows = [
            [1.0, d1.sqrt(), d1, single_track_ms],
            [1.0, d2.sqrt(), d2, third_stroke_ms],
            [1.0, d3.sqrt(), d3, full_stroke_ms],
        ];
        let sol = solve3(rows).ok_or(DiskError::InvalidConfig {
            name: "seek times",
            reason: "seek curve fit is singular for these parameters",
        })?;
        Ok(SeekCurve {
            a: sol[0],
            b: sol[1],
            c: sol[2],
            max_distance: d3,
        })
    }

    /// Seek time in milliseconds for a distance of `d` tracks.
    ///
    /// Zero for `d == 0`; clamped to be non-negative (a fitted curve with
    /// a negative intercept could otherwise go below zero at tiny
    /// distances).
    pub fn seek_ms(&self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let d = (d as f64).min(self.max_distance);
        (self.a + self.b * d.sqrt() + self.c * d).max(0.0)
    }
}

/// Gaussian elimination for a 3×3 augmented system.
fn solve3(mut m: [[f64; 4]; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Partial pivot.
        let pivot_row = (col..3).max_by(|&a, &b| {
            m[a][col]
                .abs()
                .partial_cmp(&m[b][col].abs())
                .expect("finite")
        })?;
        m.swap(col, pivot_row);
        if m[col][col].abs() < 1e-12 {
            return None;
        }
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (cell, pivot) in m[row][col..4].iter_mut().zip(&pivot_row[col..4]) {
                    *cell -= f * pivot;
                }
            }
        }
    }
    Some([m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]])
}

/// Full mechanical model: seek curve + spindle + head-switch timing over a
/// geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Mechanics {
    geometry: DiskGeometry,
    seek: SeekCurve,
    /// Rotation period in nanoseconds.
    rotation_ns: f64,
    /// Head/track switch time in nanoseconds.
    head_switch_ns: f64,
}

/// Timing breakdown of one mechanical service, all in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceTiming {
    /// Arm movement time.
    pub seek_ns: f64,
    /// Rotational wait until the first target sector passes under the
    /// head.
    pub rotation_ns: f64,
    /// Media transfer time including head switches.
    pub transfer_ns: f64,
}

impl ServiceTiming {
    /// Total service time.
    pub fn total_ns(&self) -> f64 {
        self.seek_ns + self.rotation_ns + self.transfer_ns
    }
}

impl Mechanics {
    /// Builds the mechanical model.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] for a non-positive `rpm` or
    /// negative head-switch time, or if the seek curve cannot be fitted.
    pub fn new(
        geometry: DiskGeometry,
        rpm: f64,
        single_track_ms: f64,
        third_stroke_ms: f64,
        full_stroke_ms: f64,
        head_switch_ms: f64,
    ) -> Result<Self> {
        if !(rpm > 0.0) {
            return Err(DiskError::InvalidConfig {
                name: "rpm",
                reason: "spindle speed must be positive",
            });
        }
        if head_switch_ms < 0.0 {
            return Err(DiskError::InvalidConfig {
                name: "head_switch_ms",
                reason: "head switch time cannot be negative",
            });
        }
        let seek = SeekCurve::fit(
            single_track_ms,
            third_stroke_ms,
            full_stroke_ms,
            geometry.total_tracks(),
        )?;
        Ok(Mechanics {
            geometry,
            seek,
            rotation_ns: 60e9 / rpm,
            head_switch_ns: head_switch_ms * NS_PER_MS,
        })
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Rotation period in nanoseconds.
    pub fn rotation_ns(&self) -> f64 {
        self.rotation_ns
    }

    /// Average rotational latency (half a rotation) in nanoseconds.
    pub fn avg_rotational_latency_ns(&self) -> f64 {
        self.rotation_ns / 2.0
    }

    /// Sustained media rate at the given LBA in bytes per second.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] for an invalid LBA.
    pub fn media_rate_at(&self, lba: u64) -> Result<f64> {
        let loc = self.geometry.locate(lba)?;
        let bytes_per_rotation = loc.sectors_per_track as f64 * spindle_trace::SECTOR_BYTES as f64;
        Ok(bytes_per_rotation / (self.rotation_ns / 1e9))
    }

    /// Computes the mechanical service timing for a transfer of `sectors`
    /// at `lba`, with the head currently on `head_track` and the request
    /// starting at absolute time `now_ns`.
    ///
    /// The rotational wait uses the platter's true angular position at
    /// the moment the seek completes: angle advances continuously at the
    /// spindle rate regardless of what the arm does.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfRange`] if the transfer does not fit on
    /// the drive.
    pub fn service(
        &self,
        head_track: u64,
        now_ns: f64,
        lba: u64,
        sectors: u32,
    ) -> Result<ServiceTiming> {
        self.geometry.check_range(lba, sectors)?;
        let loc = self.geometry.locate(lba)?;

        let distance = loc.track.abs_diff(head_track);
        let seek_ns = self.seek.seek_ms(distance) * NS_PER_MS;

        // Angular position (fraction of a rotation) when the seek ends.
        let t_arrive = now_ns + seek_ns;
        let angle = (t_arrive / self.rotation_ns).fract();
        // Target sector's angular start position within its track.
        let target = loc.offset as f64 / loc.sectors_per_track as f64;
        let wait_frac = (target - angle).rem_euclid(1.0);
        let rotation_wait = wait_frac * self.rotation_ns;

        // Transfer: time for the sectors to pass under the head, plus a
        // head switch for every track boundary crossed. Zone changes
        // mid-transfer are rare and short; the per-track rate of the
        // starting zone is used throughout.
        let crossings = self.geometry.track_crossings(lba, sectors)?;
        let per_sector = self.rotation_ns / loc.sectors_per_track as f64;
        let transfer_ns = sectors as f64 * per_sector + crossings as f64 * self.head_switch_ns;

        Ok(ServiceTiming {
            seek_ns,
            rotation_ns: rotation_wait,
            transfer_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Zone;

    fn mechanics() -> Mechanics {
        let g = DiskGeometry::new(vec![
            Zone {
                tracks: 10_000,
                sectors_per_track: 1000,
            },
            Zone {
                tracks: 10_000,
                sectors_per_track: 800,
            },
        ])
        .unwrap();
        // 15k RPM, 0.2/3.0/6.5 ms seeks, 0.3 ms head switch.
        Mechanics::new(g, 15_000.0, 0.2, 3.0, 6.5, 0.3).unwrap()
    }

    #[test]
    fn seek_curve_hits_fit_points() {
        let total = 20_000u64;
        let c = SeekCurve::fit(0.2, 3.0, 6.5, total).unwrap();
        assert_eq!(c.seek_ms(0), 0.0);
        assert!((c.seek_ms(1) - 0.2).abs() < 1e-9);
        assert!((c.seek_ms(total / 3) - 3.0).abs() < 0.01);
        assert!((c.seek_ms(total - 1) - 6.5).abs() < 1e-6);
    }

    #[test]
    fn seek_curve_is_monotone() {
        let c = SeekCurve::fit(0.2, 3.0, 6.5, 20_000).unwrap();
        let mut prev = 0.0;
        for d in [0u64, 1, 2, 5, 10, 100, 1_000, 6_666, 10_000, 19_999] {
            let t = c.seek_ms(d);
            assert!(t >= prev, "seek not monotone at d={d}");
            prev = t;
        }
    }

    #[test]
    fn seek_curve_clamps_beyond_full_stroke() {
        let c = SeekCurve::fit(0.2, 3.0, 6.5, 20_000).unwrap();
        assert_eq!(c.seek_ms(100_000), c.seek_ms(19_999));
    }

    #[test]
    fn seek_curve_rejects_bad_points() {
        assert!(SeekCurve::fit(0.0, 3.0, 6.5, 20_000).is_err());
        assert!(SeekCurve::fit(3.0, 3.0, 6.5, 20_000).is_err());
        assert!(SeekCurve::fit(0.2, 6.5, 3.0, 20_000).is_err());
        assert!(SeekCurve::fit(0.2, 3.0, 6.5, 4).is_err());
    }

    #[test]
    fn rotation_period_matches_rpm() {
        let m = mechanics();
        assert!((m.rotation_ns() - 4e6).abs() < 1.0); // 15k RPM = 4 ms
        assert!((m.avg_rotational_latency_ns() - 2e6).abs() < 1.0);
    }

    #[test]
    fn media_rate_reflects_zones() {
        let m = mechanics();
        let outer = m.media_rate_at(0).unwrap();
        let inner = m.media_rate_at(10_000_000 + 100).unwrap();
        // Outer zone: 1000 sectors/track × 512 B / 4 ms = 128 MB/s.
        assert!((outer - 128e6).abs() / 128e6 < 1e-9);
        assert!((inner / outer - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_distance_seek_is_free() {
        let m = mechanics();
        let t = m.service(0, 0.0, 500, 8).unwrap();
        assert_eq!(t.seek_ns, 0.0);
        assert!(t.transfer_ns > 0.0);
    }

    #[test]
    fn rotational_wait_is_less_than_one_rotation() {
        let m = mechanics();
        for now in [0.0, 1e6, 2.7e6, 1e9] {
            for lba in [0u64, 999, 5_000_000, 10_000_000] {
                let t = m.service(5_000, now, lba, 8).unwrap();
                assert!(t.rotation_ns >= 0.0);
                assert!(t.rotation_ns < m.rotation_ns());
            }
        }
    }

    #[test]
    fn rotational_position_is_deterministic() {
        // Same head, same lba: waiting exactly one rotation period later
        // must give the same rotational wait.
        let m = mechanics();
        let a = m.service(0, 1e6, 500, 8).unwrap();
        let b = m.service(0, 1e6 + m.rotation_ns(), 500, 8).unwrap();
        assert!((a.rotation_ns - b.rotation_ns).abs() < 1e-3);
    }

    #[test]
    fn sequential_transfer_rate_approaches_media_rate() {
        let m = mechanics();
        // A full-track transfer takes one rotation (ignoring switches).
        let t = m.service(0, 0.0, 0, 1000).unwrap();
        assert!((t.transfer_ns - m.rotation_ns()).abs() < 1e-3);
    }

    #[test]
    fn track_crossings_add_head_switches() {
        let m = mechanics();
        let one = m.service(0, 0.0, 0, 1000).unwrap(); // one track
        let two = m.service(0, 0.0, 0, 2000).unwrap(); // two tracks, 1 switch
        let extra = two.transfer_ns - 2.0 * (one.transfer_ns);
        assert!((extra - 0.3e6).abs() < 1e-3, "head switch missing: {extra}");
    }

    #[test]
    fn out_of_range_service_errors() {
        let m = mechanics();
        let cap = m.geometry().total_sectors();
        assert!(m.service(0, 0.0, cap, 1).is_err());
        assert!(m.service(0, 0.0, cap - 1, 2).is_err());
    }

    #[test]
    fn mechanics_config_validation() {
        let g = DiskGeometry::uniform(1000, 500).unwrap();
        assert!(Mechanics::new(g.clone(), 0.0, 0.2, 3.0, 6.5, 0.3).is_err());
        assert!(Mechanics::new(g, 10_000.0, 0.2, 3.0, 6.5, -0.1).is_err());
    }
}
