//! Event-driven single-drive simulation.
//!
//! [`DiskSim`] consumes a time-sorted request stream and produces a
//! [`SimResult`]: per-request completion times, the busy/idle timeline,
//! and cache counters. The engine models a non-preemptive single server
//! (the disk mechanism) fed by the scheduler, with the cache absorbing
//! hits and write-back traffic, and dirty data destaged during idle
//! periods after a configurable idle wait — the same structure drive
//! firmware of the paper's era used.

use crate::busy::{BusyLog, BusyLogBuilder};
use crate::cache::{CacheConfig, DiskCache, WriteOutcome};
use crate::mechanics::{Mechanics, ServiceTiming};
use crate::obs::{Components, SimObserver};
use crate::profile::DriveProfile;
use crate::scheduler::{QueuedRequest, SchedulerKind, SchedulerPolicy};
use crate::{DiskError, Result};
use spindle_obs::EventKind;
use spindle_trace::{OpKind, Request};
use std::collections::BTreeSet;

/// Service-time penalty for an injected command timeout: the command
/// stalls for this long before the (successful) retry is serviced.
/// Modeled on the half-second command deadline drive firmware of the
/// paper's era used before falling back to a retry.
pub const TIMEOUT_PENALTY_NS: u64 = 500_000_000;

/// Deterministic fault sites for one simulation run, keyed by the
/// request's position in the stream (the same id the event log and
/// timeline slices carry).
///
/// Injected via [`DiskSim::inject_faults`]; an empty set of faults is
/// the (free) default. Faults only perturb *timing* — every request
/// still completes, which mirrors how drives recover from transient
/// media errors and timeouts with retries rather than hard failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimFaults {
    /// Requests whose mechanical transfer hits an unreadable sector
    /// and retries on the next revolution. A request satisfied from
    /// the cache never touches the medium, so the fault is inert for
    /// cache hits.
    pub media_errors: BTreeSet<u64>,
    /// Requests whose command stalls for [`TIMEOUT_PENALTY_NS`] before
    /// service begins.
    pub timeouts: BTreeSet<u64>,
}

impl SimFaults {
    /// True when no faults are injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.media_errors.is_empty() && self.timeouts.is_empty()
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Queue scheduling policy.
    pub scheduler: SchedulerKind,
    /// Cache configuration; `None` uses the drive profile's default.
    pub cache: Option<CacheConfig>,
    /// Whether remaining dirty data is destaged after the last request
    /// (keeps the busy accounting complete).
    pub flush_at_end: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduler: SchedulerKind::default(),
            cache: None,
            flush_at_end: true,
        }
    }
}

/// A serviced request with its timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: Request,
    /// When the drive began servicing it (ns).
    pub start_ns: u64,
    /// When it completed (ns).
    pub complete_ns: u64,
    /// Whether it was satisfied from the cache (read hit or absorbed
    /// write-back write).
    pub cache_hit: bool,
}

impl CompletedRequest {
    /// Host-visible response time (completion − arrival) in nanoseconds.
    pub fn response_ns(&self) -> u64 {
        self.complete_ns - self.request.arrival_ns
    }

    /// Time spent in service (completion − service start) in nanoseconds.
    pub fn service_ns(&self) -> u64 {
        self.complete_ns - self.start_ns
    }

    /// Queueing delay (service start − arrival) in nanoseconds.
    pub fn queue_ns(&self) -> u64 {
        self.start_ns - self.request.arrival_ns
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Serviced requests in completion order.
    pub completed: Vec<CompletedRequest>,
    /// The drive's busy timeline over `[0, span_ns)`.
    pub busy: BusyLog,
    /// Read requests satisfied from cache.
    pub read_hits: u64,
    /// Read requests serviced mechanically.
    pub read_misses: u64,
    /// Writes absorbed by the write-back cache.
    pub writes_cached: u64,
    /// Writes forced to the medium synchronously.
    pub writes_forced: u64,
    /// Background destage operations performed.
    pub destages: u64,
    /// Injected media errors that actually fired (a media fault on a
    /// cache hit is inert).
    pub media_errors: u64,
    /// Injected command timeouts that fired.
    pub timeouts: u64,
}

impl SimResult {
    /// Total busy time in nanoseconds (convenience passthrough).
    pub fn total_busy_ns(&self) -> u64 {
        self.busy.total_busy_ns()
    }

    /// Aggregate utilization over the run.
    pub fn utilization(&self) -> f64 {
        self.busy.utilization()
    }

    /// Mean host-visible response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(|c| c.response_ns() as f64)
            .sum::<f64>()
            / self.completed.len() as f64
            / 1e6
    }

    /// Read cache hit ratio, or `None` if no reads were issued.
    pub fn read_hit_ratio(&self) -> Option<f64> {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            None
        } else {
            Some(self.read_hits as f64 / total as f64)
        }
    }
}

/// Single-drive event-driven simulator.
#[derive(Debug)]
pub struct DiskSim {
    mechanics: Mechanics,
    cache: DiskCache,
    scheduler: Box<dyn SchedulerPolicy>,
    controller_overhead_ns: f64,
    flush_at_end: bool,
    obs: Option<SimObserver>,
    faults: Option<SimFaults>,
}

impl DiskSim {
    /// Builds a simulator for `profile` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the built-in profile parameters are inconsistent (a bug
    /// in this crate, not in caller input).
    pub fn new(profile: DriveProfile, config: SimConfig) -> Self {
        let mechanics = profile
            .mechanics()
            .expect("built-in drive profiles are internally consistent");
        let cache_cfg = config.cache.unwrap_or(profile.cache);
        let cache = DiskCache::new(cache_cfg).expect("cache configuration validated");
        DiskSim {
            mechanics,
            cache,
            scheduler: config.scheduler.create(),
            controller_overhead_ns: profile.controller_overhead_ns as f64,
            flush_at_end: config.flush_at_end,
            obs: None,
            faults: None,
        }
    }

    /// Builds a simulator from explicit parts (for tests and custom
    /// drives).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] if the cache configuration is
    /// invalid.
    pub fn from_parts(
        mechanics: Mechanics,
        cache: CacheConfig,
        scheduler: SchedulerKind,
        controller_overhead_ns: u64,
        flush_at_end: bool,
    ) -> Result<Self> {
        Ok(DiskSim {
            mechanics,
            cache: DiskCache::new(cache)?,
            scheduler: scheduler.create(),
            controller_overhead_ns: controller_overhead_ns as f64,
            flush_at_end,
            obs: None,
            faults: None,
        })
    }

    /// The mechanical model in use.
    pub fn mechanics(&self) -> &Mechanics {
        &self.mechanics
    }

    /// Attaches a telemetry observer; subsequent [`DiskSim::run`] calls
    /// record counters, histograms, and (if the observer carries an
    /// event ring) simulator events through it.
    pub fn attach_observer(&mut self, obs: SimObserver) {
        self.obs = Some(obs);
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&SimObserver> {
        self.obs.as_ref()
    }

    /// Injects deterministic media-error and timeout faults into
    /// subsequent runs; an empty `faults` clears injection.
    pub fn inject_faults(&mut self, faults: SimFaults) {
        self.faults = if faults.is_empty() {
            None
        } else {
            Some(faults)
        };
    }

    /// Runs the simulation over a time-sorted request stream.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidStream`] for an empty or unsorted
    /// stream and [`DiskError::OutOfRange`] if any request does not fit
    /// on the drive.
    pub fn run(&mut self, requests: &[Request]) -> Result<SimResult> {
        // Validate up front so an invalid stream fails before the
        // simulator mutates any cache state; the streaming path below
        // re-checks incrementally, which is cheap.
        if requests.is_empty() {
            return Err(DiskError::InvalidStream {
                reason: "request stream is empty".into(),
            });
        }
        spindle_trace::transform::validate_sorted(requests).map_err(|e| {
            DiskError::InvalidStream {
                reason: e.to_string(),
            }
        })?;
        for r in requests {
            self.mechanics.geometry().check_range(r.lba, r.sectors)?;
        }
        self.run_stream(requests.iter().copied())
    }

    /// Runs the simulation over a streaming request source.
    ///
    /// Semantics are identical to [`DiskSim::run`], but the source is
    /// consumed one request at a time with a single-request lookahead,
    /// so input-side memory stays fixed no matter how long the trace
    /// is — feed it from a bounded channel (e.g.
    /// `spindle_engine::channel`) to replay a trace that never fits in
    /// memory. Ordering and range constraints are validated as requests
    /// are pulled; an invalid request aborts the run at the point it is
    /// admitted.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidStream`] for an empty or unsorted
    /// stream and [`DiskError::OutOfRange`] if a request does not fit
    /// on the drive.
    pub fn run_stream<I>(&mut self, requests: I) -> Result<SimResult>
    where
        I: IntoIterator<Item = Request>,
    {
        let mut source = requests.into_iter().peekable();
        if source.peek().is_none() {
            return Err(DiskError::InvalidStream {
                reason: "request stream is empty".into(),
            });
        }

        let mut busy = BusyLogBuilder::new();
        let mut completed = Vec::new();
        let mut queue: Vec<QueuedRequest> = Vec::new();
        // Full requests for queued entries, kept index-parallel with
        // `queue` (the scheduler's view carries only placement fields).
        let mut pending: Vec<Request> = Vec::new();
        let mut next_id = 0u64; // position in the stream
        let mut last_arrival = 0u64;
        let mut now: f64 = 0.0;
        let mut head_track: u64 = 0;
        let mut read_hits = 0u64;
        let mut read_misses = 0u64;
        let mut writes_cached = 0u64;
        let mut writes_forced = 0u64;
        let mut destages = 0u64;
        let mut media_errors = 0u64;
        let mut timeouts = 0u64;
        let idle_delay = self.cache.config().idle_destage_delay_ns as f64;

        loop {
            // Admit every request that has arrived by `now`.
            while source.peek().is_some_and(|r| r.arrival_ns as f64 <= now) {
                let r = source.next().expect("peeked above");
                if r.arrival_ns < last_arrival {
                    return Err(DiskError::InvalidStream {
                        reason: format!(
                            "arrival order violated at index {}: {} ns after {} ns",
                            next_id, r.arrival_ns, last_arrival
                        ),
                    });
                }
                last_arrival = r.arrival_ns;
                self.mechanics.geometry().check_range(r.lba, r.sectors)?;
                let track = self.mechanics.geometry().locate(r.lba)?.track;
                queue.push(QueuedRequest {
                    id: next_id,
                    arrival_ns: r.arrival_ns,
                    lba: r.lba,
                    sectors: r.sectors,
                    track,
                });
                pending.push(r);
                if let Some(o) = &self.obs {
                    o.event(r.arrival_ns, EventKind::RequestEnqueue, next_id);
                }
                next_id += 1;
            }

            if queue.is_empty() {
                let upcoming = source.peek().map(|r| r.arrival_ns as f64);
                // Idle: consider destaging dirty data before the next
                // arrival.
                if self.cache.has_dirty() {
                    let destage_at = now + idle_delay;
                    let do_destage = match upcoming {
                        Some(t) => destage_at < t,
                        None => self.flush_at_end,
                    };
                    if do_destage {
                        let extent = self.cache.pop_dirty().expect("has_dirty checked");
                        let timing = self.mechanics.service(
                            head_track,
                            destage_at,
                            extent.lba,
                            extent.sectors,
                        )?;
                        let end = destage_at + timing.total_ns();
                        busy.push(destage_at.round() as u64, end.round() as u64)?;
                        now = end;
                        head_track = self.mechanics.geometry().locate(extent.end() - 1)?.track;
                        destages += 1;
                        if let Some(o) = &self.obs {
                            o.destages.inc();
                            o.seeks.inc();
                            o.attribute_destage(
                                extent.lba,
                                destage_at.round() as u64,
                                ((end - destage_at) / 1_000.0).round() as u64,
                            );
                            o.event(destage_at.round() as u64, EventKind::Destage, extent.lba);
                            o.sim_slice(
                                crate::obs::track::SERVICE,
                                "destage",
                                destage_at.round() as u64,
                                (end - destage_at).round() as u64,
                                vec![("lba".to_owned(), spindle_obs::json::Json::Uint(extent.lba))],
                            );
                        }
                        continue;
                    }
                }
                match upcoming {
                    Some(t) => {
                        if let Some(o) = &self.obs {
                            if t > now {
                                o.event(now.round() as u64, EventKind::IdleBegin, 0);
                                o.event(t.round() as u64, EventKind::IdleEnd, 0);
                                o.sim_slice(
                                    crate::obs::track::IDLE,
                                    "idle",
                                    now.round() as u64,
                                    (t - now).round() as u64,
                                    Vec::new(),
                                );
                            }
                        }
                        now = now.max(t);
                        continue;
                    }
                    None => break,
                }
            }

            // Pick and service the next request.
            if let Some(o) = &self.obs {
                o.queue_depth.record(queue.len() as u64);
            }
            let idx = self
                .scheduler
                .select(&queue, head_track, now, &self.mechanics);
            let q = queue.remove(idx);
            let r = pending.remove(idx);
            debug_assert_eq!(r.arrival_ns, q.arrival_ns, "queue/pending out of sync");
            let start = now;
            // Injected command timeout: the command stalls, then the
            // retry services normally starting at the delayed instant
            // (rotational position is evaluated there).
            let timeout_fault = self
                .faults
                .as_ref()
                .is_some_and(|fl| fl.timeouts.contains(&q.id));
            let timeout_ns = if timeout_fault {
                TIMEOUT_PENALTY_NS as f64
            } else {
                0.0
            };
            let outcome = self.service(&r, head_track, now + timeout_ns)?;
            let (service_ns, busy_extra_ns, cache_hit) =
                (outcome.service_ns, outcome.busy_extra_ns, outcome.cache_hit);
            // Injected media error: the transfer fails on the medium
            // and succeeds one full revolution later. Cache hits never
            // touch the medium, so the fault is inert for them.
            let media_fault = !cache_hit
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|fl| fl.media_errors.contains(&q.id));
            let media_ns = if media_fault {
                self.mechanics.rotation_ns()
            } else {
                0.0
            };
            if timeout_fault {
                timeouts += 1;
            }
            if media_fault {
                media_errors += 1;
            }
            let complete = start + self.controller_overhead_ns + timeout_ns + service_ns + media_ns;
            let busy_end = complete + busy_extra_ns;
            busy.push(start.round() as u64, busy_end.round() as u64)?;
            if !cache_hit {
                // The head ends at the last sector touched (including
                // read-ahead, which lands on the same or next track —
                // close enough to the request end for seek purposes).
                head_track = self
                    .mechanics
                    .geometry()
                    .locate(r.lba + r.sectors as u64 - 1)?
                    .track;
            }
            match (r.op, cache_hit) {
                (OpKind::Read, true) => read_hits += 1,
                (OpKind::Read, false) => read_misses += 1,
                (OpKind::Write, true) => writes_cached += 1,
                (OpKind::Write, false) => writes_forced += 1,
            }
            if let Some(o) = &self.obs {
                o.event(start.round() as u64, EventKind::RequestDispatch, q.id);
                if timeout_fault {
                    o.timeouts.inc();
                    o.event(start.round() as u64, EventKind::Timeout, q.id);
                }
                if media_fault {
                    o.media_errors.inc();
                    o.event(
                        (complete - media_ns).round() as u64,
                        EventKind::MediaError,
                        q.id,
                    );
                }
                match (r.op, cache_hit) {
                    (OpKind::Read, true) => o.read_hits.inc(),
                    (OpKind::Read, false) => o.read_misses.inc(),
                    (OpKind::Write, true) => o.writes_cached.inc(),
                    (OpKind::Write, false) => o.writes_forced.inc(),
                }
                let kind = if cache_hit {
                    EventKind::CacheHit
                } else {
                    o.seeks.inc();
                    EventKind::CacheMiss
                };
                o.event(start.round() as u64, kind, r.lba);
                let op_name = match r.op {
                    OpKind::Read => "read",
                    OpKind::Write => "write",
                };
                let response_ns = complete - r.arrival_ns as f64;
                let queue_ns = (start - r.arrival_ns as f64).max(0.0);
                o.attribute_request(
                    q.id,
                    op_name,
                    complete.round() as u64,
                    (response_ns / 1_000.0).round() as u64,
                    (queue_ns / 1_000.0).round() as u64,
                    outcome.components(),
                );
                o.requests_completed.inc();
                o.event(complete.round() as u64, EventKind::RequestComplete, q.id);
                // Request lifecycle on the simulated-time tracks:
                // enqueue → dispatch on the queue track, dispatch →
                // complete on the service track.
                if o.flight().is_some() {
                    use spindle_obs::json::Json;
                    let start_ns = start.round() as u64;
                    let id_arg = ("id".to_owned(), Json::Uint(q.id));
                    if timeout_fault {
                        o.sim_slice(
                            crate::obs::track::SERVICE,
                            "timeout",
                            start_ns,
                            timeout_ns.round() as u64,
                            vec![id_arg.clone()],
                        );
                    }
                    if media_fault {
                        o.sim_slice(
                            crate::obs::track::SERVICE,
                            "media retry",
                            (complete - media_ns).round() as u64,
                            media_ns.round() as u64,
                            vec![id_arg.clone()],
                        );
                    }
                    if start_ns > r.arrival_ns {
                        o.sim_slice(
                            crate::obs::track::QUEUE,
                            op_name,
                            r.arrival_ns,
                            start_ns - r.arrival_ns,
                            vec![id_arg.clone()],
                        );
                    }
                    o.sim_slice(
                        crate::obs::track::SERVICE,
                        if cache_hit {
                            match r.op {
                                OpKind::Read => "read (hit)",
                                OpKind::Write => "write (cached)",
                            }
                        } else {
                            op_name
                        },
                        start_ns,
                        (complete - start).round() as u64,
                        vec![
                            id_arg,
                            ("lba".to_owned(), Json::Uint(r.lba)),
                            ("sectors".to_owned(), Json::Uint(u64::from(r.sectors))),
                        ],
                    );
                }
            }
            completed.push(CompletedRequest {
                request: r,
                start_ns: start.round() as u64,
                complete_ns: complete.round() as u64,
                cache_hit,
            });
            now = busy_end;
        }

        if let Some(o) = &self.obs {
            o.settle();
        }
        let span = now.round().max(1.0) as u64;
        Ok(SimResult {
            completed,
            busy: busy.finish(span)?,
            read_hits,
            read_misses,
            writes_cached,
            writes_forced,
            destages,
            media_errors,
            timeouts,
        })
    }

    /// Services one request at `now`.
    fn service(&mut self, r: &Request, head_track: u64, now: f64) -> Result<ServiceOutcome> {
        match r.op {
            OpKind::Read => {
                if self.cache.read_hit(r.lba, r.sectors) {
                    return Ok(ServiceOutcome::cache_hit());
                }
                // Mechanical read plus read-ahead: the host sees the
                // requested transfer; the prefetch keeps the mechanism
                // busy after completion.
                let timing = self.mechanics.service(head_track, now, r.lba, r.sectors)?;
                let ra = self.cache.config().read_ahead_sectors;
                let capacity = self.mechanics.geometry().total_sectors();
                let ra = (ra as u64).min(capacity - (r.lba + r.sectors as u64)) as u32;
                let extra = if ra > 0 {
                    let with_ra = self
                        .mechanics
                        .service(head_track, now, r.lba, r.sectors + ra)?;
                    (with_ra.transfer_ns - timing.transfer_ns).max(0.0)
                } else {
                    0.0
                };
                self.cache.insert_clean(r.lba, r.sectors + ra);
                Ok(ServiceOutcome::mechanical(timing, extra))
            }
            OpKind::Write => match self.cache.write(r.lba, r.sectors) {
                WriteOutcome::Cached => Ok(ServiceOutcome::cache_hit()),
                WriteOutcome::Forced => {
                    let timing = self.mechanics.service(head_track, now, r.lba, r.sectors)?;
                    Ok(ServiceOutcome::mechanical(timing, 0.0))
                }
            },
        }
    }
}

/// How one request was serviced: the host-visible service time, any
/// post-completion busy tail (read-ahead), and — for mechanical
/// services — the seek/rotation/transfer timing the latency
/// attribution decomposes.
#[derive(Debug, Clone, Copy)]
struct ServiceOutcome {
    service_ns: f64,
    busy_extra_ns: f64,
    cache_hit: bool,
    timing: Option<ServiceTiming>,
}

impl ServiceOutcome {
    fn cache_hit() -> Self {
        ServiceOutcome {
            service_ns: 0.0,
            busy_extra_ns: 0.0,
            cache_hit: true,
            timing: None,
        }
    }

    fn mechanical(timing: ServiceTiming, busy_extra_ns: f64) -> Self {
        ServiceOutcome {
            service_ns: timing.total_ns(),
            busy_extra_ns,
            cache_hit: false,
            timing: Some(timing),
        }
    }

    /// The attribution components in microseconds (`None` for cache
    /// hits, which never touch the mechanism).
    fn components(&self) -> Option<Components> {
        self.timing.map(|t| Components {
            seek_us: (t.seek_ns / 1_000.0).round() as u64,
            rotation_us: (t.rotation_ns / 1_000.0).round() as u64,
            transfer_us: (t.transfer_ns / 1_000.0).round() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_trace::DriveId;

    fn read(t_ns: u64, lba: u64, sectors: u32) -> Request {
        Request::new(t_ns, DriveId(0), OpKind::Read, lba, sectors).unwrap()
    }

    fn write(t_ns: u64, lba: u64, sectors: u32) -> Request {
        Request::new(t_ns, DriveId(0), OpKind::Write, lba, sectors).unwrap()
    }

    fn sim() -> DiskSim {
        DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default())
    }

    #[test]
    fn empty_and_unsorted_streams_are_rejected() {
        let mut s = sim();
        assert!(matches!(s.run(&[]), Err(DiskError::InvalidStream { .. })));
        let unsorted = vec![read(100, 0, 8), read(50, 0, 8)];
        assert!(matches!(
            s.run(&unsorted),
            Err(DiskError::InvalidStream { .. })
        ));
    }

    #[test]
    fn run_stream_matches_run() {
        // A mix that exercises queueing, cache hits, and idle destaging.
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            if i % 3 == 0 {
                reqs.push(write(i * 400_000, 9_000_000 + i * 64, 64));
            } else {
                reqs.push(read(i * 400_000, (i * 7_919) % 8_000_000, 8));
            }
        }
        let batch = sim().run(&reqs).unwrap();
        let streamed = sim().run_stream(reqs.iter().copied()).unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn run_stream_rejects_empty_and_unsorted() {
        let mut s = sim();
        assert!(matches!(
            s.run_stream(std::iter::empty()),
            Err(DiskError::InvalidStream { .. })
        ));
        let mut s = sim();
        assert!(matches!(
            s.run_stream([read(2_000, 0, 8), read(1_000, 64, 8)]),
            Err(DiskError::InvalidStream { .. })
        ));
    }

    #[test]
    fn out_of_range_request_is_rejected() {
        let mut s = sim();
        let cap = s.mechanics().geometry().total_sectors();
        let reqs = vec![read(0, cap - 1, 8)];
        assert!(matches!(s.run(&reqs), Err(DiskError::OutOfRange { .. })));
    }

    #[test]
    fn single_read_timing_is_plausible() {
        let mut s = sim();
        let result = s.run(&[read(0, 1_000_000, 8)]).unwrap();
        assert_eq!(result.completed.len(), 1);
        let c = &result.completed[0];
        // Overhead (0.1 ms) + seek (≤ 6.6 ms) + rotation (≤ 4 ms) +
        // transfer (tiny): between 0.1 and 12 ms.
        let resp_ms = c.response_ns() as f64 / 1e6;
        assert!(resp_ms >= 0.1, "response {resp_ms} ms");
        assert!(resp_ms < 12.0, "response {resp_ms} ms");
        assert_eq!(result.read_misses, 1);
        assert!(!c.cache_hit);
    }

    #[test]
    fn sequential_reads_hit_readahead() {
        let mut s = sim();
        // 16 back-to-back 8-sector sequential reads, 5 ms apart (within
        // the 128 KiB read-ahead window).
        let reqs: Vec<Request> = (0..16)
            .map(|i| read(i * 5_000_000, 10_000 + i * 8, 8))
            .collect();
        let result = s.run(&reqs).unwrap();
        assert_eq!(result.read_misses, 1, "only the first read should miss");
        assert_eq!(result.read_hits, 15);
        assert!(result.read_hit_ratio().unwrap() > 0.9);
        // Hits complete in ~overhead time.
        let hit = result.completed.iter().find(|c| c.cache_hit).unwrap();
        assert!(hit.response_ns() < 500_000);
    }

    #[test]
    fn writeback_absorbs_then_destages_in_idle() {
        let mut s = sim();
        // A burst of writes then a long idle tail.
        let reqs: Vec<Request> = (0..8)
            .map(|i| write(i * 1_000_000, 1_000_000 + i * 100_000, 64))
            .collect();
        let result = s.run(&reqs).unwrap();
        assert_eq!(result.writes_cached, 8);
        assert_eq!(result.writes_forced, 0);
        assert!(result.destages > 0, "dirty data must be destaged");
        // Writes complete at electronic speed.
        for c in &result.completed {
            assert!(c.cache_hit);
            assert!(c.response_ns() < 500_000);
        }
        // The busy log must contain destage work after the last write
        // completed.
        let last_complete = result
            .completed
            .iter()
            .map(|c| c.complete_ns)
            .max()
            .unwrap();
        let busy_end = result.busy.periods().last().unwrap().1;
        assert!(busy_end > last_complete);
    }

    #[test]
    fn write_through_forces_all_writes() {
        let mut cfg = SimConfig::default();
        let mut cache = CacheConfig::default();
        cache.write_back = false;
        cfg.cache = Some(cache);
        let mut s = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
        let reqs: Vec<Request> = (0..4)
            .map(|i| write(i * 50_000_000, 5_000 * i, 8))
            .collect();
        let result = s.run(&reqs).unwrap();
        assert_eq!(result.writes_forced, 4);
        assert_eq!(result.writes_cached, 0);
        assert_eq!(result.destages, 0);
    }

    #[test]
    fn utilization_is_bounded_and_idle_dominates_light_load() {
        let mut s = sim();
        // One small read per second for 60 seconds: utilization must be
        // far below 1 and the idle periods long.
        let reqs: Vec<Request> = (0..60)
            .map(|i| read(i * 1_000_000_000, (i * 7919 * 1000) % 100_000_000, 8))
            .collect();
        let result = s.run(&reqs).unwrap();
        let u = result.utilization();
        assert!(u > 0.0 && u < 0.05, "utilization {u}");
        let idle = result.busy.idle_durations_secs();
        let longest = idle.iter().cloned().fold(0.0f64, f64::max);
        assert!(longest > 0.5, "longest idle {longest} s");
    }

    #[test]
    fn saturating_load_yields_high_utilization() {
        let mut s = sim();
        // 2000 random reads arriving in the first 10 ms: the queue never
        // drains until the end, so utilization over the span is ~1.
        let reqs: Vec<Request> = (0..2000)
            .map(|i| read(i * 5_000, (i * 2654435761) % 100_000_000, 64))
            .collect();
        let result = s.run(&reqs).unwrap();
        assert!(
            result.utilization() > 0.9,
            "utilization {}",
            result.utilization()
        );
        assert_eq!(result.completed.len(), 2000);
    }

    #[test]
    fn sstf_beats_fcfs_on_random_batch() {
        let reqs: Vec<Request> = (0..200)
            .map(|i| read(0, (i as u64 * 48_271 * 1000) % 100_000_000, 8))
            .collect();
        let run = |kind: SchedulerKind| {
            let mut cfg = SimConfig::default();
            cfg.scheduler = kind;
            let mut cache = CacheConfig::disabled();
            cache.idle_destage_delay_ns = 0;
            cfg.cache = Some(cache);
            let mut s = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
            s.run(&reqs).unwrap()
        };
        let fcfs = run(SchedulerKind::Fcfs);
        let sstf = run(SchedulerKind::Sstf);
        let sptf = run(SchedulerKind::Sptf);
        // Throughput ordering: seek-aware policies finish the batch
        // sooner.
        assert!(
            sstf.busy.span_ns() < fcfs.busy.span_ns(),
            "SSTF {} vs FCFS {}",
            sstf.busy.span_ns(),
            fcfs.busy.span_ns()
        );
        assert!(
            sptf.busy.span_ns() < fcfs.busy.span_ns(),
            "SPTF {} vs FCFS {}",
            sptf.busy.span_ns(),
            fcfs.busy.span_ns()
        );
    }

    #[test]
    fn completions_never_precede_arrivals() {
        let mut s = sim();
        let reqs: Vec<Request> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    write(i * 2_000_000, (i * 104_729) % 1_000_000, 16)
                } else {
                    read(i * 2_000_000, (i * 224_737) % 1_000_000, 16)
                }
            })
            .collect();
        let result = s.run(&reqs).unwrap();
        assert_eq!(result.completed.len(), 100);
        for c in &result.completed {
            assert!(c.complete_ns >= c.request.arrival_ns);
            assert!(c.start_ns >= c.request.arrival_ns);
            assert!(c.complete_ns >= c.start_ns);
        }
    }

    #[test]
    fn busy_time_equals_span_minus_idle() {
        let mut s = sim();
        let reqs: Vec<Request> = (0..50)
            .map(|i| read(i * 20_000_000, (i * 90001 * 997) % 50_000_000, 32))
            .collect();
        let result = s.run(&reqs).unwrap();
        let busy = result.busy.total_busy_ns();
        let idle = result.busy.total_idle_ns();
        assert_eq!(busy + idle, result.busy.span_ns());
    }

    #[test]
    fn forced_write_when_dirty_cache_full() {
        let mut cfg = SimConfig::default();
        let mut cache = CacheConfig::default();
        cache.max_dirty_segments = 2;
        cache.idle_destage_delay_ns = 10_000_000_000; // effectively never idle-destage
        cfg.cache = Some(cache);
        let mut s = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
        // Non-coalescible writes arriving back to back.
        let reqs: Vec<Request> = (0..5)
            .map(|i| write(i * 200_000, 10_000_000 * (i + 1), 32))
            .collect();
        let result = s.run(&reqs).unwrap();
        assert_eq!(result.writes_cached, 2);
        assert_eq!(result.writes_forced, 3);
    }

    #[test]
    fn flush_at_end_can_be_disabled() {
        let mut cfg = SimConfig::default();
        cfg.flush_at_end = false;
        let mut s = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
        let result = s.run(&[write(0, 1000, 8)]).unwrap();
        assert_eq!(result.destages, 0);
    }

    #[test]
    fn observer_counters_match_sim_result() {
        use crate::obs::SimObserver;
        use spindle_obs::{MetricsRegistry, ObsConfig};

        let registry = MetricsRegistry::new();
        let mut s = sim();
        s.attach_observer(SimObserver::new(&registry, &ObsConfig::enabled()));
        let log = s.observer().unwrap().event_log().expect("events enabled");

        // A mix of reads (some sequential for hits) and writes with idle
        // gaps so destaging kicks in.
        let mut reqs = Vec::new();
        for i in 0..8u64 {
            reqs.push(read(i * 2_000_000, 10_000 + i * 8, 8));
        }
        for i in 0..4u64 {
            reqs.push(write(
                100_000_000 + i * 1_000_000,
                50_000_000 + i * 200_000,
                64,
            ));
        }
        let result = s.run(&reqs).unwrap();

        let snap = registry.snapshot();
        let total = reqs.len() as u64;
        assert_eq!(snap.counter("disk.requests_completed"), Some(total));
        assert_eq!(snap.counter("disk.read_hits"), Some(result.read_hits));
        assert_eq!(snap.counter("disk.read_misses"), Some(result.read_misses));
        assert_eq!(
            snap.counter("disk.writes_cached"),
            Some(result.writes_cached)
        );
        assert_eq!(
            snap.counter("disk.writes_forced"),
            Some(result.writes_forced)
        );
        assert_eq!(snap.counter("disk.destages"), Some(result.destages));
        let resp = snap.histogram("disk.response_us").unwrap();
        assert_eq!(resp.count, total);
        let depth = snap.histogram("disk.queue_depth").unwrap();
        assert_eq!(depth.count, total, "one depth sample per dispatch");

        // Event stream consistency: one enqueue/dispatch/complete per
        // request, one cache event per request, one destage event per
        // destage operation.
        let events = log.snapshot();
        let count = |k| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(EventKind::RequestEnqueue), total);
        assert_eq!(count(EventKind::RequestDispatch), total);
        assert_eq!(count(EventKind::RequestComplete), total);
        assert_eq!(
            count(EventKind::CacheHit) + count(EventKind::CacheMiss),
            total
        );
        assert_eq!(count(EventKind::Destage), result.destages);
        assert_eq!(count(EventKind::IdleBegin), count(EventKind::IdleEnd));
    }

    #[test]
    fn unobserved_sim_matches_observed_sim() {
        use crate::obs::SimObserver;
        use spindle_obs::{MetricsRegistry, ObsConfig};

        let reqs: Vec<Request> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    write(i * 3_000_000, 20_000_000 + i * 500_000, 32)
                } else {
                    read(i * 3_000_000, 40_000_000 + i * 1_000_000, 8)
                }
            })
            .collect();

        let mut plain = sim();
        let base = plain.run(&reqs).unwrap();

        let registry = MetricsRegistry::new();
        let mut observed = sim();
        observed.attach_observer(SimObserver::new(&registry, &ObsConfig::enabled()));
        let traced = observed.run(&reqs).unwrap();

        // Telemetry must not perturb simulation results.
        assert_eq!(base.completed.len(), traced.completed.len());
        for (a, b) in base.completed.iter().zip(traced.completed.iter()) {
            assert_eq!(a.complete_ns, b.complete_ns);
            assert_eq!(a.cache_hit, b.cache_hit);
        }
        assert_eq!(base.busy.periods(), traced.busy.periods());
    }

    fn scattered_reads(n: u64, gap_ns: u64) -> Vec<Request> {
        (0..n)
            .map(|i| read(i * gap_ns, (i * 7_919_000) % 8_000_000, 8))
            .collect()
    }

    #[test]
    fn injected_faults_are_deterministic_and_add_latency() {
        let reqs = scattered_reads(10, 50_000_000);
        let clean = sim().run(&reqs).unwrap();
        assert_eq!(clean.media_errors, 0);
        assert_eq!(clean.timeouts, 0);

        let mut faults = SimFaults::default();
        faults.media_errors.insert(3);
        faults.timeouts.insert(5);
        let mut a = sim();
        a.inject_faults(faults.clone());
        let faulted = a.run(&reqs).unwrap();
        let mut b = sim();
        b.inject_faults(faults);
        assert_eq!(faulted, b.run(&reqs).unwrap(), "same faults, same result");

        assert_eq!(faulted.media_errors, 1);
        assert_eq!(faulted.timeouts, 1);
        // Every request still completes: faults perturb timing only.
        assert_eq!(faulted.completed.len(), clean.completed.len());
        // Requests before the first fault site are byte-identical.
        for (c, f) in clean.completed.iter().zip(&faulted.completed).take(3) {
            assert_eq!(c, f);
        }
        // The media error costs one extra revolution; the timeout costs
        // the full penalty (modulo the changed rotational position).
        let media_delta =
            faulted.completed[3].complete_ns as i64 - clean.completed[3].complete_ns as i64;
        assert!(media_delta > 0, "media retry must slow the request");
        let timeout_delta =
            faulted.completed[5].complete_ns as i64 - clean.completed[5].complete_ns as i64;
        assert!(
            timeout_delta >= TIMEOUT_PENALTY_NS as i64 - 5_000_000,
            "timeout delta {timeout_delta} ns"
        );
    }

    #[test]
    fn media_fault_is_inert_on_cache_hits() {
        // Sequential reads: everything after the first is a read-ahead
        // hit, so a media error aimed at a hit never touches the medium.
        let reqs: Vec<Request> = (0..8)
            .map(|i| read(i * 5_000_000, 10_000 + i * 8, 8))
            .collect();
        let clean = sim().run(&reqs).unwrap();
        let mut faults = SimFaults::default();
        faults.media_errors.insert(4);
        let mut s = sim();
        s.inject_faults(faults);
        let faulted = s.run(&reqs).unwrap();
        assert_eq!(faulted.media_errors, 0);
        assert_eq!(clean, faulted);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let reqs = scattered_reads(6, 30_000_000);
        let clean = sim().run(&reqs).unwrap();
        let mut s = sim();
        s.inject_faults(SimFaults::default());
        assert_eq!(clean, s.run(&reqs).unwrap());
    }

    #[test]
    fn fault_events_and_counters_reach_the_observer() {
        use crate::obs::SimObserver;
        use spindle_obs::{MetricsRegistry, ObsConfig};

        let registry = MetricsRegistry::new();
        let mut s = sim();
        s.attach_observer(SimObserver::new(&registry, &ObsConfig::enabled()));
        let log = s.observer().unwrap().event_log().expect("events enabled");
        let mut faults = SimFaults::default();
        faults.media_errors.insert(1);
        faults.timeouts.insert(2);
        s.inject_faults(faults);

        let result = s.run(&scattered_reads(5, 40_000_000)).unwrap();
        assert_eq!(result.media_errors, 1);
        assert_eq!(result.timeouts, 1);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("disk.media_errors"), Some(1));
        assert_eq!(snap.counter("disk.timeouts"), Some(1));

        let events = log.snapshot();
        let media: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::MediaError)
            .collect();
        let timeouts: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Timeout)
            .collect();
        assert_eq!(media.len(), 1);
        assert_eq!(media[0].detail, 1, "event names the request id");
        assert_eq!(timeouts.len(), 1);
        assert_eq!(timeouts[0].detail, 2);
    }
}
