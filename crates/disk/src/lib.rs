//! Event-driven disk drive simulator.
//!
//! The paper's quantities of interest — utilization, busy/idle structure,
//! idleness availability — are properties of the drive's *service
//! process*, not of the arrival stream alone. This crate provides a
//! mechanical disk model detailed enough to turn a request stream into a
//! realistic busy/idle timeline:
//!
//! * [`geometry`] — zoned-bit-recording geometry mapping LBAs to tracks
//!   and rotational offsets.
//! * [`mechanics`] — seek-curve, rotational-latency, and transfer timing.
//! * [`cache`] — on-drive segmented cache with read-ahead and write-back
//!   (with idle-time destaging, the mechanism that couples write traffic
//!   to the idle structure).
//! * [`scheduler`] — FCFS, SSTF, LOOK, and SPTF queue disciplines.
//! * [`sim`] — the event-driven engine producing per-request response
//!   times and the busy-period log, with deterministic media-error and
//!   command-timeout fault injection ([`sim::SimFaults`]).
//! * [`busy`] — busy/idle timeline post-processing (idle intervals,
//!   windowed utilization series).
//! * [`profile`] — parameter presets for enterprise drives of the paper's
//!   era (c. 2006–2009).
//! * [`obs`] — opt-in telemetry: counters, latency/queue-depth
//!   histograms, and event tracing for the simulator, attached with
//!   [`sim::DiskSim::attach_observer`]. With no observer the simulator
//!   pays only an untaken branch per site.
//!
//! # Example
//!
//! ```
//! use spindle_disk::profile::DriveProfile;
//! use spindle_disk::sim::{DiskSim, SimConfig};
//! use spindle_trace::{Request, DriveId, OpKind};
//!
//! let profile = DriveProfile::cheetah_15k();
//! let mut sim = DiskSim::new(profile, SimConfig::default());
//! let requests = vec![
//!     Request::new(0, DriveId(0), OpKind::Read, 1_000, 8).unwrap(),
//!     Request::new(20_000_000, DriveId(0), OpKind::Write, 50_000, 64).unwrap(),
//! ];
//! let result = sim.run(&requests)?;
//! assert_eq!(result.completed.len(), 2);
//! assert!(result.total_busy_ns() > 0);
//! # Ok::<(), spindle_disk::DiskError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod busy;
pub mod cache;
pub mod geometry;
pub mod mechanics;
pub mod obs;
pub mod power;
pub mod profile;
pub mod scheduler;
pub mod sim;

mod error;

pub use error::DiskError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DiskError>;
