//! Busy/idle timeline bookkeeping.
//!
//! The simulator records every interval during which the drive mechanism
//! was occupied; [`BusyLog`] merges those into a canonical timeline and
//! derives the quantities the characterization needs: idle intervals,
//! aggregate utilization, and windowed utilization series.

use crate::{DiskError, Result};

/// Accumulates busy intervals in non-decreasing start order, merging
/// touching or overlapping intervals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusyLogBuilder {
    periods: Vec<(u64, u64)>,
}

impl BusyLogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start_ns, end_ns)`.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidStream`] if `end_ns < start_ns` or
    /// `start_ns` precedes the start of the previously pushed interval.
    pub fn push(&mut self, start_ns: u64, end_ns: u64) -> Result<()> {
        if end_ns < start_ns {
            return Err(DiskError::InvalidStream {
                reason: format!("busy interval ends ({end_ns}) before it starts ({start_ns})"),
            });
        }
        if let Some(&(last_start, last_end)) = self.periods.last() {
            if start_ns < last_start {
                return Err(DiskError::InvalidStream {
                    reason: format!(
                        "busy intervals must be pushed in start order ({start_ns} < {last_start})"
                    ),
                });
            }
            if start_ns <= last_end {
                let merged_end = last_end.max(end_ns);
                let last = self.periods.last_mut().expect("non-empty");
                last.1 = merged_end;
                return Ok(());
            }
        }
        if start_ns < end_ns {
            self.periods.push((start_ns, end_ns));
        }
        Ok(())
    }

    /// Finalizes the log over the observation window `[0, span_ns)`.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidStream`] if any busy time extends past
    /// `span_ns` or `span_ns == 0`.
    pub fn finish(self, span_ns: u64) -> Result<BusyLog> {
        if span_ns == 0 {
            return Err(DiskError::InvalidStream {
                reason: "observation span must be positive".into(),
            });
        }
        if let Some(&(_, end)) = self.periods.last() {
            if end > span_ns {
                return Err(DiskError::InvalidStream {
                    reason: format!("busy period ends at {end} past span {span_ns}"),
                });
            }
        }
        Ok(BusyLog {
            periods: self.periods,
            span_ns,
        })
    }
}

/// Canonical busy timeline over an observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct BusyLog {
    /// Disjoint, sorted busy intervals `[start, end)` in nanoseconds.
    periods: Vec<(u64, u64)>,
    span_ns: u64,
}

impl BusyLog {
    /// The busy intervals (disjoint, sorted).
    pub fn periods(&self) -> &[(u64, u64)] {
        &self.periods
    }

    /// Observation span in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.span_ns
    }

    /// Total busy time in nanoseconds.
    pub fn total_busy_ns(&self) -> u64 {
        self.periods.iter().map(|(s, e)| e - s).sum()
    }

    /// Total idle time in nanoseconds.
    pub fn total_idle_ns(&self) -> u64 {
        self.span_ns - self.total_busy_ns()
    }

    /// Aggregate utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.total_busy_ns() as f64 / self.span_ns as f64
    }

    /// The idle intervals: the complement of the busy intervals within
    /// `[0, span)`. Zero-length gaps are omitted.
    pub fn idle_periods(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.periods.len() + 1);
        let mut cursor = 0u64;
        for &(s, e) in &self.periods {
            if s > cursor {
                out.push((cursor, s));
            }
            cursor = e;
        }
        if cursor < self.span_ns {
            out.push((cursor, self.span_ns));
        }
        out
    }

    /// Durations (seconds) of all idle intervals — the sample behind the
    /// idle-interval CDF figures.
    pub fn idle_durations_secs(&self) -> Vec<f64> {
        self.idle_periods()
            .iter()
            .map(|(s, e)| (e - s) as f64 / 1e9)
            .collect()
    }

    /// Durations (seconds) of all busy periods.
    pub fn busy_durations_secs(&self) -> Vec<f64> {
        self.periods
            .iter()
            .map(|(s, e)| (e - s) as f64 / 1e9)
            .collect()
    }

    /// Utilization per window of `window_ns`, covering the whole span
    /// (the last window may be shorter and is normalized by its true
    /// length).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] if `window_ns == 0`.
    pub fn utilization_series(&self, window_ns: u64) -> Result<Vec<f64>> {
        if window_ns == 0 {
            return Err(DiskError::InvalidConfig {
                name: "window_ns",
                reason: "window must be positive",
            });
        }
        let n = self.span_ns.div_ceil(window_ns) as usize;
        let mut busy = vec![0u64; n];
        for &(s, e) in &self.periods {
            let mut cur = s;
            while cur < e {
                let w = (cur / window_ns) as usize;
                let w_end = ((w as u64 + 1) * window_ns).min(e);
                busy[w] += w_end - cur;
                cur = w_end;
            }
        }
        Ok(busy
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let w_start = i as u64 * window_ns;
                let w_len = window_ns.min(self.span_ns - w_start);
                b as f64 / w_len as f64
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(periods: &[(u64, u64)], span: u64) -> BusyLog {
        let mut b = BusyLogBuilder::new();
        for &(s, e) in periods {
            b.push(s, e).unwrap();
        }
        b.finish(span).unwrap()
    }

    #[test]
    fn builder_merges_touching_intervals() {
        let l = log(&[(0, 10), (10, 20), (30, 40)], 100);
        assert_eq!(l.periods(), &[(0, 20), (30, 40)]);
    }

    #[test]
    fn builder_merges_overlapping_intervals() {
        let l = log(&[(0, 15), (10, 20)], 100);
        assert_eq!(l.periods(), &[(0, 20)]);
    }

    #[test]
    fn builder_ignores_empty_intervals() {
        let l = log(&[(5, 5), (10, 20)], 100);
        assert_eq!(l.periods(), &[(10, 20)]);
    }

    #[test]
    fn builder_rejects_misordered_pushes() {
        let mut b = BusyLogBuilder::new();
        b.push(50, 60).unwrap();
        assert!(b.push(10, 20).is_err());
        assert!(b.push(70, 65).is_err());
    }

    #[test]
    fn finish_validates_span() {
        let mut b = BusyLogBuilder::new();
        b.push(0, 100).unwrap();
        assert!(b.clone().finish(50).is_err());
        assert!(b.clone().finish(0).is_err());
        assert!(b.finish(100).is_ok());
    }

    #[test]
    fn totals_and_utilization() {
        let l = log(&[(10, 20), (50, 80)], 100);
        assert_eq!(l.total_busy_ns(), 40);
        assert_eq!(l.total_idle_ns(), 60);
        assert!((l.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn idle_periods_complement_busy() {
        let l = log(&[(10, 20), (50, 80)], 100);
        assert_eq!(l.idle_periods(), vec![(0, 10), (20, 50), (80, 100)]);
        // Edge cases: busy at the very start and very end.
        let l2 = log(&[(0, 10), (90, 100)], 100);
        assert_eq!(l2.idle_periods(), vec![(10, 90)]);
        // Fully busy.
        let l3 = log(&[(0, 100)], 100);
        assert!(l3.idle_periods().is_empty());
        // Fully idle.
        let l4 = log(&[], 100);
        assert_eq!(l4.idle_periods(), vec![(0, 100)]);
    }

    #[test]
    fn durations_in_seconds() {
        let l = log(&[(0, 500_000_000)], 2_000_000_000);
        assert_eq!(l.busy_durations_secs(), vec![0.5]);
        assert_eq!(l.idle_durations_secs(), vec![1.5]);
    }

    #[test]
    fn utilization_series_accounts_window_splits() {
        // Busy [5,25) over span 40 with window 10:
        // windows: [0,10): 5 busy; [10,20): 10; [20,30): 5; [30,40): 0.
        let l = log(&[(5, 25)], 40);
        let u = l.utilization_series(10).unwrap();
        assert_eq!(u, vec![0.5, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn utilization_series_handles_partial_last_window() {
        let l = log(&[(0, 10)], 25);
        let u = l.utilization_series(10).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u[0], 1.0);
        assert_eq!(u[2], 0.0); // 5-ns window, 0 busy
        assert!(l.utilization_series(0).is_err());
    }

    #[test]
    fn series_mean_matches_aggregate_utilization() {
        let l = log(&[(3, 17), (20, 61), (70, 99)], 100);
        let u = l.utilization_series(10).unwrap();
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        assert!((mean - l.utilization()).abs() < 1e-12);
    }
}
