//! Drive parameter presets.
//!
//! Three profiles modeled on the enterprise drive classes deployed in the
//! systems the paper traces (c. 2006–2009): a 15k RPM SAS performance
//! drive, a 10k RPM SAS mainstream drive, and a 7.2k RPM nearline SATA
//! capacity drive. Published spec-sheet numbers (spindle speed, seek
//! times, sustained transfer range) anchor the parameters; the zone
//! layout is synthetic but reproduces the outer-to-inner transfer-rate
//! taper.

use crate::cache::CacheConfig;
use crate::geometry::{DiskGeometry, Zone};
use crate::mechanics::Mechanics;
use crate::Result;

/// A complete set of drive parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveProfile {
    /// Marketing-style name of the profile.
    pub name: &'static str,
    /// Zone layout, outermost first.
    pub zones: Vec<Zone>,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Single-track seek time, milliseconds.
    pub single_track_seek_ms: f64,
    /// One-third-stroke ("average") seek time, milliseconds.
    pub third_stroke_seek_ms: f64,
    /// Full-stroke seek time, milliseconds.
    pub full_stroke_seek_ms: f64,
    /// Head switch time, milliseconds.
    pub head_switch_ms: f64,
    /// Fixed per-command controller overhead, nanoseconds.
    pub controller_overhead_ns: u64,
    /// Default cache configuration for this drive.
    pub cache: CacheConfig,
}

/// Builds a linear zone taper: `zones` zones of `tracks_per_zone` tracks,
/// with sectors-per-track interpolated from `outer_spt` down to
/// `inner_spt`.
fn taper(zones: u32, tracks_per_zone: u32, outer_spt: u32, inner_spt: u32) -> Vec<Zone> {
    (0..zones)
        .map(|i| {
            let f = if zones == 1 {
                0.0
            } else {
                i as f64 / (zones - 1) as f64
            };
            let spt = outer_spt as f64 + f * (inner_spt as f64 - outer_spt as f64);
            Zone {
                tracks: tracks_per_zone,
                sectors_per_track: spt.round() as u32,
            }
        })
        .collect()
}

impl DriveProfile {
    /// 15,000 RPM SAS performance drive (Cheetah-class, ~74 GB).
    ///
    /// Spec anchors: 15k RPM (2 ms rotation), 0.2/3.4/6.6 ms seeks,
    /// outer-zone media rate ≈ 150 MB/s.
    pub fn cheetah_15k() -> Self {
        DriveProfile {
            name: "cheetah-15k",
            zones: taper(16, 9_000, 1_180, 780),
            rpm: 15_000.0,
            single_track_seek_ms: 0.2,
            third_stroke_seek_ms: 3.4,
            full_stroke_seek_ms: 6.6,
            head_switch_ms: 0.3,
            controller_overhead_ns: 100_000,
            cache: CacheConfig::default(),
        }
    }

    /// 10,000 RPM SAS mainstream drive (Savvio-class, ~73 GB).
    ///
    /// Spec anchors: 10k RPM (3 ms rotation), 0.3/4.1/9.0 ms seeks.
    pub fn savvio_10k() -> Self {
        DriveProfile {
            name: "savvio-10k",
            zones: taper(16, 9_500, 1_080, 700),
            rpm: 10_000.0,
            single_track_seek_ms: 0.3,
            third_stroke_seek_ms: 4.1,
            full_stroke_seek_ms: 9.0,
            head_switch_ms: 0.4,
            controller_overhead_ns: 100_000,
            cache: CacheConfig::default(),
        }
    }

    /// 7,200 RPM nearline SATA capacity drive (Barracuda ES-class,
    /// ~500 GB).
    ///
    /// Spec anchors: 7.2k RPM (8.3 ms rotation), 0.8/8.5/16.0 ms seeks.
    pub fn barracuda_es() -> Self {
        DriveProfile {
            name: "barracuda-es",
            zones: taper(24, 31_000, 1_560, 1_000),
            rpm: 7_200.0,
            single_track_seek_ms: 0.8,
            third_stroke_seek_ms: 8.5,
            full_stroke_seek_ms: 16.0,
            head_switch_ms: 0.8,
            controller_overhead_ns: 120_000,
            cache: CacheConfig::default(),
        }
    }

    /// All built-in profiles.
    pub fn all() -> Vec<DriveProfile> {
        vec![
            DriveProfile::cheetah_15k(),
            DriveProfile::savvio_10k(),
            DriveProfile::barracuda_es(),
        ]
    }

    /// Constructs the geometry for this profile.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DiskError::InvalidConfig`] for an invalid zone
    /// list.
    pub fn geometry(&self) -> Result<DiskGeometry> {
        DiskGeometry::new(self.zones.clone())
    }

    /// Constructs the mechanical model for this profile.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DiskError::InvalidConfig`] for invalid
    /// parameters.
    pub fn mechanics(&self) -> Result<Mechanics> {
        Mechanics::new(
            self.geometry()?,
            self.rpm,
            self.single_track_seek_ms,
            self.third_stroke_seek_ms,
            self.full_stroke_seek_ms,
            self.head_switch_ms,
        )
    }

    /// Peak sustained media rate (outermost zone) in bytes per second.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DiskError::InvalidConfig`] for invalid
    /// parameters.
    pub fn peak_media_rate(&self) -> Result<f64> {
        self.mechanics()?.media_rate_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_build() {
        for p in DriveProfile::all() {
            let g = p.geometry().unwrap();
            assert!(g.total_sectors() > 0, "{}", p.name);
            p.mechanics().unwrap();
        }
    }

    #[test]
    fn capacities_match_drive_classes() {
        let gb = |p: &DriveProfile| p.geometry().unwrap().capacity_bytes() as f64 / 1e9;
        let c = gb(&DriveProfile::cheetah_15k());
        assert!((60.0..90.0).contains(&c), "cheetah capacity {c} GB");
        let s = gb(&DriveProfile::savvio_10k());
        assert!((55.0..90.0).contains(&s), "savvio capacity {s} GB");
        let b = gb(&DriveProfile::barracuda_es());
        assert!((400.0..600.0).contains(&b), "barracuda capacity {b} GB");
    }

    #[test]
    fn media_rates_are_era_plausible() {
        let rate = |p: &DriveProfile| p.peak_media_rate().unwrap() / 1e6;
        let c = rate(&DriveProfile::cheetah_15k());
        assert!((120.0..180.0).contains(&c), "cheetah rate {c} MB/s");
        let b = rate(&DriveProfile::barracuda_es());
        assert!((70.0..120.0).contains(&b), "barracuda rate {b} MB/s");
    }

    #[test]
    fn zone_taper_is_monotone() {
        for p in DriveProfile::all() {
            for w in p.zones.windows(2) {
                assert!(w[1].sectors_per_track <= w[0].sectors_per_track);
            }
        }
    }

    #[test]
    fn rotation_periods() {
        assert!(
            (DriveProfile::cheetah_15k()
                .mechanics()
                .unwrap()
                .rotation_ns()
                - 4e6)
                .abs()
                < 1.0
        );
        assert!(
            (DriveProfile::barracuda_es()
                .mechanics()
                .unwrap()
                .rotation_ns()
                - 60e9 / 7200.0)
                .abs()
                < 1.0
        );
    }

    #[test]
    fn taper_single_zone() {
        let z = taper(1, 100, 500, 400);
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].sectors_per_track, 500);
    }
}
