use std::fmt;

/// Error type for disk model configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DiskError {
    /// A request addressed sectors beyond the drive's capacity.
    OutOfRange {
        /// First LBA of the offending request.
        lba: u64,
        /// Sectors requested.
        sectors: u32,
        /// Drive capacity in sectors.
        capacity: u64,
    },
    /// A model parameter was outside its valid domain.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint violated.
        reason: &'static str,
    },
    /// The request stream violated an input invariant (e.g. unsorted
    /// arrivals).
    InvalidStream {
        /// Description of the violation.
        reason: String,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfRange {
                lba,
                sectors,
                capacity,
            } => write!(
                f,
                "request at lba {lba} for {sectors} sectors exceeds capacity of {capacity} sectors"
            ),
            DiskError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            DiskError::InvalidStream { reason } => write!(f, "invalid request stream: {reason}"),
        }
    }
}

impl std::error::Error for DiskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DiskError::OutOfRange {
            lba: 100,
            sectors: 8,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("50"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskError>();
    }
}
