//! Request queue scheduling disciplines.
//!
//! Four classical policies are provided. The scheduler sees the queue of
//! *arrived, unserviced* requests together with the current head position
//! and (for SPTF) the mechanical model, and picks which request to service
//! next. Scheduling is non-preemptive, as in real drive firmware.

use crate::mechanics::Mechanics;
use crate::{DiskError, Result};
use std::fmt;

/// A queued request as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Identifier assigned by the simulator (stable across calls).
    pub id: u64,
    /// Arrival time in nanoseconds.
    pub arrival_ns: u64,
    /// First LBA.
    pub lba: u64,
    /// Length in sectors.
    pub sectors: u32,
    /// Target track (precomputed by the simulator).
    pub track: u64,
}

/// A queue scheduling policy.
///
/// Implementations must return an index into `queue`; the simulator
/// guarantees `queue` is non-empty and ordered by arrival time.
pub trait SchedulerPolicy: fmt::Debug + Send {
    /// Picks the index of the next request to service.
    fn select(
        &mut self,
        queue: &[QueuedRequest],
        head_track: u64,
        now_ns: f64,
        mechanics: &Mechanics,
    ) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// First-come, first-served.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fcfs;

impl SchedulerPolicy for Fcfs {
    fn select(&mut self, _q: &[QueuedRequest], _h: u64, _n: f64, _m: &Mechanics) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "FCFS"
    }
}

/// Shortest seek time first: the request on the track closest to the
/// head. Ties break toward the earliest arrival.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sstf;

impl SchedulerPolicy for Sstf {
    fn select(&mut self, queue: &[QueuedRequest], head: u64, _n: f64, _m: &Mechanics) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.track.abs_diff(head))
            .map(|(i, _)| i)
            .expect("scheduler called with non-empty queue")
    }

    fn name(&self) -> &'static str {
        "SSTF"
    }
}

/// LOOK (elevator): services requests in the current sweep direction,
/// reversing when no request remains ahead of the head.
#[derive(Debug, Clone, Copy)]
pub struct Look {
    ascending: bool,
}

impl Look {
    /// Creates a LOOK scheduler starting in the ascending direction.
    pub fn new() -> Self {
        Look { ascending: true }
    }
}

impl Default for Look {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulerPolicy for Look {
    fn select(&mut self, queue: &[QueuedRequest], head: u64, _n: f64, _m: &Mechanics) -> usize {
        let pick_ahead = |ascending: bool| -> Option<usize> {
            queue
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    if ascending {
                        r.track >= head
                    } else {
                        r.track <= head
                    }
                })
                .min_by_key(|(_, r)| r.track.abs_diff(head))
                .map(|(i, _)| i)
        };
        if let Some(i) = pick_ahead(self.ascending) {
            return i;
        }
        self.ascending = !self.ascending;
        pick_ahead(self.ascending).expect("non-empty queue has a request in some direction")
    }

    fn name(&self) -> &'static str {
        "LOOK"
    }
}

/// Shortest positioning time first: minimizes seek **plus rotational**
/// delay using the mechanical model — the policy real enterprise firmware
/// approximates.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sptf;

impl SchedulerPolicy for Sptf {
    fn select(&mut self, queue: &[QueuedRequest], head: u64, now_ns: f64, m: &Mechanics) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ta = positioning_ns(m, head, now_ns, a);
                let tb = positioning_ns(m, head, now_ns, b);
                ta.partial_cmp(&tb).expect("positioning times are finite")
            })
            .map(|(i, _)| i)
            .expect("scheduler called with non-empty queue")
    }

    fn name(&self) -> &'static str {
        "SPTF"
    }
}

fn positioning_ns(m: &Mechanics, head: u64, now_ns: f64, r: &QueuedRequest) -> f64 {
    match m.service(head, now_ns, r.lba, r.sectors) {
        Ok(t) => t.seek_ns + t.rotation_ns,
        // Out-of-range requests are rejected before queueing; treat any
        // residual error as "infinitely far" so it is picked last.
        Err(_) => f64::INFINITY,
    }
}

/// Selector for the built-in scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// First-come, first-served.
    Fcfs,
    /// Shortest seek time first.
    Sstf,
    /// LOOK elevator.
    Look,
    /// Shortest positioning time first (the default; matches enterprise
    /// firmware behavior most closely).
    #[default]
    Sptf,
}

impl SchedulerKind {
    /// Instantiates the policy.
    pub fn create(self) -> Box<dyn SchedulerPolicy> {
        match self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::Sstf => Box::new(Sstf),
            SchedulerKind::Look => Box::new(Look::new()),
            SchedulerKind::Sptf => Box::new(Sptf),
        }
    }

    /// All built-in policies, for ablation sweeps.
    pub fn all() -> [SchedulerKind; 4] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::Sstf,
            SchedulerKind::Look,
            SchedulerKind::Sptf,
        ]
    }

    /// Parses a (case-insensitive) policy name.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] for an unknown name.
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SchedulerKind::Fcfs),
            "sstf" => Ok(SchedulerKind::Sstf),
            "look" => Ok(SchedulerKind::Look),
            "sptf" => Ok(SchedulerKind::Sptf),
            _ => Err(DiskError::InvalidConfig {
                name: "scheduler",
                reason: "expected one of fcfs, sstf, look, sptf",
            }),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.create().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskGeometry;

    fn mechanics() -> Mechanics {
        let g = DiskGeometry::uniform(10_000, 1000).unwrap();
        Mechanics::new(g, 10_000.0, 0.3, 4.0, 9.0, 0.3).unwrap()
    }

    fn q(id: u64, track: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            arrival_ns: id,
            lba: track * 1000,
            sectors: 8,
            track,
        }
    }

    #[test]
    fn fcfs_picks_first() {
        let m = mechanics();
        let queue = [q(0, 900), q(1, 10), q(2, 500)];
        assert_eq!(Fcfs.select(&queue, 500, 0.0, &m), 0);
    }

    #[test]
    fn sstf_picks_nearest_track() {
        let m = mechanics();
        let queue = [q(0, 900), q(1, 490), q(2, 100)];
        assert_eq!(Sstf.select(&queue, 500, 0.0, &m), 1);
    }

    #[test]
    fn sstf_tie_breaks_by_arrival() {
        let m = mechanics();
        let queue = [q(0, 510), q(1, 490)];
        // Both 10 tracks away; min_by_key keeps the first (earlier
        // arrival).
        assert_eq!(Sstf.select(&queue, 500, 0.0, &m), 0);
    }

    #[test]
    fn look_sweeps_then_reverses() {
        let m = mechanics();
        let mut look = Look::new();
        let queue = [q(0, 300), q(1, 600), q(2, 800)];
        // Ascending from 500: nearest at-or-above is 600.
        assert_eq!(look.select(&queue, 500, 0.0, &m), 1);
        // Still ascending from 800 with only 300 left below: reverse.
        let queue2 = [q(0, 300)];
        assert_eq!(look.select(&queue2, 800, 0.0, &m), 0);
        // Now descending: from 700, picks 650 over 720.
        let queue3 = [q(0, 650), q(1, 720)];
        assert_eq!(look.select(&queue3, 700, 0.0, &m), 0);
    }

    #[test]
    fn sptf_accounts_for_rotation() {
        let m = mechanics();
        // Two requests on the same track as the head: no seek for either;
        // SPTF must pick the one with the shorter rotational wait from
        // now. At t=0 the head is at angle 0; offset 100 (of 1000) is
        // closer than offset 900.
        let near = QueuedRequest {
            id: 0,
            arrival_ns: 0,
            lba: 500 * 1000 + 900,
            sectors: 8,
            track: 500,
        };
        let far = QueuedRequest {
            id: 1,
            arrival_ns: 0,
            lba: 500 * 1000 + 100,
            sectors: 8,
            track: 500,
        };
        let idx = Sptf.select(&[near, far], 500, 0.0, &m);
        assert_eq!(idx, 1, "SPTF should pick the rotationally closer sector");
    }

    #[test]
    fn sptf_prefers_near_track_over_far() {
        let m = mechanics();
        let queue = [q(0, 9_000), q(1, 505)];
        assert_eq!(Sptf.select(&queue, 500, 0.0, &m), 1);
    }

    #[test]
    fn kind_parsing_and_display() {
        assert_eq!(SchedulerKind::parse("FCFS").unwrap(), SchedulerKind::Fcfs);
        assert_eq!(SchedulerKind::parse("sptf").unwrap(), SchedulerKind::Sptf);
        assert!(SchedulerKind::parse("elevator").is_err());
        assert_eq!(SchedulerKind::Look.to_string(), "LOOK");
        assert_eq!(SchedulerKind::all().len(), 4);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Sptf);
    }
}
