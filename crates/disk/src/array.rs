//! Multi-drive array simulation.
//!
//! Enterprise traces come from drives behind storage controllers that
//! spread one logical volume across many spindles. This module provides
//! the two pieces needed to study that setting:
//!
//! * [`StripedVolume`] — a RAID-0-style address mapper from volume LBAs
//!   to `(drive, disk LBA)` with a configurable chunk size, splitting
//!   requests that cross chunk boundaries exactly the way a controller
//!   does.
//! * [`ArraySim`] — runs a multi-drive request stream by partitioning it
//!   per drive and simulating every drive independently (drives share no
//!   mechanism, so per-drive simulation is exact), in parallel with
//!   scoped threads. Determinism is preserved: each drive's simulation
//!   depends only on its own sub-stream.

use crate::profile::DriveProfile;
use crate::sim::{DiskSim, SimConfig, SimResult};
use crate::{DiskError, Result};
use spindle_trace::transform::split_by_drive;
use spindle_trace::{DriveId, Request};

/// RAID-0 style striping map across `drives` identical drives with a
/// chunk of `chunk_sectors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedVolume {
    drives: u32,
    chunk_sectors: u32,
}

impl StripedVolume {
    /// Creates a striping map.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] if `drives == 0` or
    /// `chunk_sectors == 0`.
    pub fn new(drives: u32, chunk_sectors: u32) -> Result<Self> {
        if drives == 0 {
            return Err(DiskError::InvalidConfig {
                name: "drives",
                reason: "array needs at least one drive",
            });
        }
        if chunk_sectors == 0 {
            return Err(DiskError::InvalidConfig {
                name: "chunk_sectors",
                reason: "chunk must hold at least one sector",
            });
        }
        Ok(StripedVolume {
            drives,
            chunk_sectors,
        })
    }

    /// Number of drives in the stripe.
    pub fn drives(&self) -> u32 {
        self.drives
    }

    /// Chunk size in sectors.
    pub fn chunk_sectors(&self) -> u32 {
        self.chunk_sectors
    }

    /// Maps one volume LBA to `(drive, disk LBA)`.
    pub fn locate(&self, volume_lba: u64) -> (DriveId, u64) {
        let chunk = volume_lba / self.chunk_sectors as u64;
        let offset = volume_lba % self.chunk_sectors as u64;
        let drive = (chunk % self.drives as u64) as u32;
        let disk_chunk = chunk / self.drives as u64;
        (
            DriveId(drive),
            disk_chunk * self.chunk_sectors as u64 + offset,
        )
    }

    /// Splits one volume-level request into per-drive disk requests
    /// (one per touched chunk fragment, coalescing adjacent fragments on
    /// the same drive).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidStream`] if a fragment would be
    /// zero-length (cannot happen for valid requests; defensive).
    pub fn split_request(&self, volume_request: &Request) -> Result<Vec<Request>> {
        let mut out: Vec<Request> = Vec::new();
        let mut lba = volume_request.lba;
        let mut remaining = volume_request.sectors as u64;
        while remaining > 0 {
            let within_chunk = lba % self.chunk_sectors as u64;
            let take = (self.chunk_sectors as u64 - within_chunk).min(remaining);
            let (drive, disk_lba) = self.locate(lba);
            // Coalesce with the previous fragment when contiguous on the
            // same drive (consecutive chunks of a 1-drive array, or a
            // request within one chunk).
            let coalesced = out.last_mut().is_some_and(|last| {
                if last.drive == drive && last.end_lba() == disk_lba {
                    last.sectors += take as u32;
                    true
                } else {
                    false
                }
            });
            if !coalesced {
                out.push(
                    Request::new(
                        volume_request.arrival_ns,
                        drive,
                        volume_request.op,
                        disk_lba,
                        take as u32,
                    )
                    .map_err(|e| DiskError::InvalidStream {
                        reason: e.to_string(),
                    })?,
                );
            }
            lba += take;
            remaining -= take;
        }
        Ok(out)
    }

    /// Maps a whole volume-level stream, preserving arrival order.
    ///
    /// # Errors
    ///
    /// Propagates [`StripedVolume::split_request`] errors.
    pub fn split_stream(&self, volume_requests: &[Request]) -> Result<Vec<Request>> {
        let mut out = Vec::with_capacity(volume_requests.len());
        for r in volume_requests {
            out.extend(self.split_request(r)?);
        }
        Ok(out)
    }
}

/// Per-drive outcome of an array simulation.
#[derive(Debug)]
pub struct DriveOutcome {
    /// The drive.
    pub drive: DriveId,
    /// Requests routed to this drive.
    pub requests: usize,
    /// The drive's simulation result.
    pub result: SimResult,
}

/// Outcome of an array simulation.
#[derive(Debug)]
pub struct ArrayResult {
    /// Per-drive outcomes, ordered by drive id.
    pub drives: Vec<DriveOutcome>,
}

impl ArrayResult {
    /// Mean utilization across drives (unweighted).
    pub fn mean_utilization(&self) -> f64 {
        if self.drives.is_empty() {
            return 0.0;
        }
        self.drives
            .iter()
            .map(|d| d.result.utilization())
            .sum::<f64>()
            / self.drives.len() as f64
    }

    /// Utilization imbalance: max over min per-drive utilization, or
    /// `None` when any drive was fully idle (infinite imbalance) or the
    /// array is empty.
    pub fn utilization_imbalance(&self) -> Option<f64> {
        let utils: Vec<f64> = self.drives.iter().map(|d| d.result.utilization()).collect();
        let min = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if utils.is_empty() || min <= 0.0 {
            None
        } else {
            Some(max / min)
        }
    }

    /// Mean host-visible response time across all requests, in
    /// milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0u64;
        for d in &self.drives {
            for c in &d.result.completed {
                total += c.response_ns() as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64 / 1e6
        }
    }

    /// Total requests serviced across the array.
    pub fn total_requests(&self) -> usize {
        self.drives.iter().map(|d| d.requests).sum()
    }
}

/// Simulates every drive of a multi-drive stream independently and in
/// parallel.
#[derive(Debug, Clone)]
pub struct ArraySim {
    profile: DriveProfile,
    config: SimConfig,
}

impl ArraySim {
    /// Creates an array of identical drives.
    pub fn new(profile: DriveProfile, config: SimConfig) -> Self {
        ArraySim { profile, config }
    }

    /// Runs a multi-drive request stream (sorted by arrival; drives are
    /// identified by [`Request::drive`]).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidStream`] for an empty stream and
    /// propagates per-drive simulation errors.
    pub fn run(&self, requests: &[Request]) -> Result<ArrayResult> {
        if requests.is_empty() {
            return Err(DiskError::InvalidStream {
                reason: "request stream is empty".into(),
            });
        }
        let per_drive = split_by_drive(requests);
        let mut entries: Vec<(DriveId, Vec<Request>)> = per_drive.into_iter().collect();
        let mut results: Vec<Option<Result<DriveOutcome>>> = Vec::new();
        results.resize_with(entries.len(), || None);
        std::thread::scope(|scope| {
            for (slot, (drive, stream)) in results.iter_mut().zip(entries.iter_mut()) {
                let profile = self.profile.clone();
                let config = self.config;
                scope.spawn(move || {
                    let mut sim = DiskSim::new(profile, config);
                    *slot = Some(sim.run(stream).map(|result| DriveOutcome {
                        drive: *drive,
                        requests: stream.len(),
                        result,
                    }));
                });
            }
        });
        let drives = results
            .into_iter()
            .map(|r| r.expect("every drive slot filled"))
            .collect::<Result<Vec<_>>>()?;
        Ok(ArrayResult { drives })
    }

    /// Convenience: stripes a single-volume stream over `drives` drives
    /// and runs it.
    ///
    /// # Errors
    ///
    /// Propagates striping and simulation errors.
    pub fn run_striped(
        &self,
        volume_requests: &[Request],
        volume: StripedVolume,
    ) -> Result<ArrayResult> {
        let split = volume.split_stream(volume_requests)?;
        self.run(&split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_trace::OpKind;

    fn req(t: u64, drive: u32, lba: u64, sectors: u32) -> Request {
        Request::new(t, DriveId(drive), OpKind::Read, lba, sectors).unwrap()
    }

    #[test]
    fn volume_validation() {
        assert!(StripedVolume::new(0, 64).is_err());
        assert!(StripedVolume::new(4, 0).is_err());
        assert!(StripedVolume::new(4, 64).is_ok());
    }

    #[test]
    fn locate_round_robins_chunks() {
        let v = StripedVolume::new(3, 100).unwrap();
        assert_eq!(v.locate(0), (DriveId(0), 0));
        assert_eq!(v.locate(99), (DriveId(0), 99));
        assert_eq!(v.locate(100), (DriveId(1), 0));
        assert_eq!(v.locate(200), (DriveId(2), 0));
        assert_eq!(v.locate(300), (DriveId(0), 100));
        assert_eq!(v.locate(450), (DriveId(1), 150));
    }

    #[test]
    fn split_request_preserves_sectors() {
        let v = StripedVolume::new(4, 64).unwrap();
        // A request spanning 3 chunks starting mid-chunk.
        let r = req(5, 9, 60, 140);
        let parts = v.split_request(&r).unwrap();
        let total: u32 = parts.iter().map(|p| p.sectors).sum();
        assert_eq!(total, 140);
        assert!(parts.len() >= 3);
        assert!(parts.iter().all(|p| p.arrival_ns == 5));
        assert!(parts.iter().all(|p| p.op == OpKind::Read));
        // Fragments land on consecutive drives.
        assert_eq!(parts[0].drive, DriveId(0));
        assert_eq!(parts[1].drive, DriveId(1));
    }

    #[test]
    fn single_drive_stripe_coalesces_to_one_request() {
        let v = StripedVolume::new(1, 64).unwrap();
        let r = req(0, 0, 100, 1000);
        let parts = v.split_request(&r).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].lba, 100);
        assert_eq!(parts[0].sectors, 1000);
    }

    #[test]
    fn within_chunk_request_is_not_split() {
        let v = StripedVolume::new(8, 256).unwrap();
        let r = req(0, 0, 256 * 5 + 10, 100);
        let parts = v.split_request(&r).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].drive, DriveId(5));
    }

    #[test]
    fn array_runs_drives_independently() {
        let reqs: Vec<Request> = (0..300)
            .map(|i| {
                req(
                    i * 10_000_000,
                    (i % 4) as u32,
                    (i * 99_991 * 8) % 1_000_000,
                    16,
                )
            })
            .collect();
        let array = ArraySim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        let result = array.run(&reqs).unwrap();
        assert_eq!(result.drives.len(), 4);
        assert_eq!(result.total_requests(), 300);
        assert!(result.mean_utilization() > 0.0);
        assert!(result.mean_response_ms() > 0.0);
    }

    #[test]
    fn array_result_matches_individual_sims() {
        let reqs: Vec<Request> = (0..100)
            .map(|i| {
                req(
                    i * 20_000_000,
                    (i % 2) as u32,
                    (i * 7919 * 64) % 1_000_000,
                    8,
                )
            })
            .collect();
        let array = ArraySim::new(DriveProfile::savvio_10k(), SimConfig::default());
        let result = array.run(&reqs).unwrap();

        for outcome in &result.drives {
            let own: Vec<Request> = reqs
                .iter()
                .filter(|r| r.drive == outcome.drive)
                .copied()
                .collect();
            let mut solo = DiskSim::new(DriveProfile::savvio_10k(), SimConfig::default());
            let expected = solo.run(&own).unwrap();
            assert_eq!(outcome.result.completed, expected.completed);
            assert_eq!(outcome.result.busy, expected.busy);
        }
    }

    #[test]
    fn striping_balances_sequential_load() {
        // A purely sequential volume scan: striping must spread it
        // almost perfectly across drives.
        let reqs: Vec<Request> = (0..400)
            .map(|i| req(i * 5_000_000, 0, i * 128, 128))
            .collect();
        let array = ArraySim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        let volume = StripedVolume::new(4, 128).unwrap();
        let result = array.run_striped(&reqs, volume).unwrap();
        assert_eq!(result.drives.len(), 4);
        let imbalance = result.utilization_imbalance().unwrap();
        assert!(imbalance < 1.6, "imbalance {imbalance}");
    }

    #[test]
    fn empty_stream_is_rejected() {
        let array = ArraySim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        assert!(array.run(&[]).is_err());
    }
}
