//! Drive power modeling over a busy/idle timeline.
//!
//! Idleness is the raw material of disk power management: a drive that
//! is idle long enough can unload its heads or spin down entirely, at
//! the price of a recovery delay (and extra energy) when the next
//! request arrives. [`PowerModel`] evaluates a fixed-timeout power
//! policy against a measured [`BusyLog`]:
//!
//! * while busy the drive draws `active_watts`;
//! * idle time first accrues at `idle_watts`;
//! * after `unload_timeout` the heads unload (`unloaded_watts`), after
//!   `standby_timeout` the spindle stops (`standby_watts`);
//! * leaving a low-power state costs recovery time and energy, and the
//!   recovery delay is charged as a foreground latency penalty to the
//!   first request of the following busy period.
//!
//! The numbers default to a c. 2008 15k enterprise drive (≈ 12 W
//! active, ≈ 9 W idle, ≈ 5 W unloaded, ≈ 1.5 W standby, multi-second
//! spin-up).

use crate::busy::BusyLog;
use crate::{DiskError, Result};

/// Static power/transition parameters of a drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power while servicing requests, watts.
    pub active_watts: f64,
    /// Power while idle with heads loaded, watts.
    pub idle_watts: f64,
    /// Power with heads unloaded, watts.
    pub unloaded_watts: f64,
    /// Power in standby (spindle stopped), watts.
    pub standby_watts: f64,
    /// Time to reload heads, seconds.
    pub load_secs: f64,
    /// Energy to reload heads, joules.
    pub load_joules: f64,
    /// Time to spin up from standby, seconds.
    pub spinup_secs: f64,
    /// Energy to spin up from standby, joules.
    pub spinup_joules: f64,
}

impl PowerModel {
    /// Parameters modeled on a 15k RPM enterprise drive of the paper's
    /// era.
    pub fn enterprise_15k() -> Self {
        PowerModel {
            active_watts: 12.0,
            idle_watts: 9.0,
            unloaded_watts: 5.0,
            standby_watts: 1.5,
            load_secs: 0.5,
            load_joules: 6.0,
            spinup_secs: 6.0,
            spinup_joules: 120.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] for non-positive powers or
    /// negative transition costs, or if the power states are not ordered
    /// `active >= idle >= unloaded >= standby`.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            self.active_watts,
            self.idle_watts,
            self.unloaded_watts,
            self.standby_watts,
        ];
        if positive.iter().any(|&w| !(w > 0.0)) {
            return Err(DiskError::InvalidConfig {
                name: "watts",
                reason: "all power draws must be positive",
            });
        }
        if !(self.active_watts >= self.idle_watts
            && self.idle_watts >= self.unloaded_watts
            && self.unloaded_watts >= self.standby_watts)
        {
            return Err(DiskError::InvalidConfig {
                name: "watts",
                reason: "power states must be ordered active >= idle >= unloaded >= standby",
            });
        }
        if self.load_secs < 0.0
            || self.load_joules < 0.0
            || self.spinup_secs < 0.0
            || self.spinup_joules < 0.0
        {
            return Err(DiskError::InvalidConfig {
                name: "transitions",
                reason: "transition costs cannot be negative",
            });
        }
        Ok(())
    }
}

/// A fixed-timeout power policy: unload after `unload_timeout_secs` of
/// idleness, spin down after `standby_timeout_secs` (∞ disables either
/// transition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPolicy {
    /// Idle seconds before the heads unload.
    pub unload_timeout_secs: f64,
    /// Idle seconds before the spindle stops (must be ≥ the unload
    /// timeout).
    pub standby_timeout_secs: f64,
}

impl PowerPolicy {
    /// A policy that never leaves the idle state.
    pub fn always_on() -> Self {
        PowerPolicy {
            unload_timeout_secs: f64::INFINITY,
            standby_timeout_secs: f64::INFINITY,
        }
    }

    /// Creates a policy.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::InvalidConfig`] for negative timeouts or a
    /// standby timeout below the unload timeout.
    pub fn new(unload_timeout_secs: f64, standby_timeout_secs: f64) -> Result<Self> {
        if unload_timeout_secs < 0.0 || standby_timeout_secs < 0.0 {
            return Err(DiskError::InvalidConfig {
                name: "timeouts",
                reason: "timeouts cannot be negative",
            });
        }
        if standby_timeout_secs < unload_timeout_secs {
            return Err(DiskError::InvalidConfig {
                name: "standby_timeout_secs",
                reason: "standby timeout must not precede the unload timeout",
            });
        }
        Ok(PowerPolicy {
            unload_timeout_secs,
            standby_timeout_secs,
        })
    }
}

/// Outcome of evaluating a power policy on a busy timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerOutcome {
    /// Total energy over the span, joules.
    pub energy_joules: f64,
    /// Head load (unload-recovery) events.
    pub head_loads: u64,
    /// Spin-up (standby-recovery) events.
    pub spinups: u64,
    /// Total foreground delay added by recoveries, seconds.
    pub recovery_delay_secs: f64,
    /// Observation span, seconds.
    pub span_secs: f64,
}

impl PowerOutcome {
    /// Mean power over the span, watts.
    pub fn mean_watts(&self) -> f64 {
        self.energy_joules / self.span_secs
    }

    /// Energy saved relative to `baseline`, as a fraction of the
    /// baseline energy.
    pub fn savings_vs(&self, baseline: &PowerOutcome) -> f64 {
        1.0 - self.energy_joules / baseline.energy_joules
    }
}

/// Evaluates `policy` under `model` against the busy timeline.
///
/// Recovery time is accounted as added foreground delay (charged to the
/// request that ends each idle period), not as a change to the timeline
/// itself — the standard first-order analysis for policy comparison.
///
/// # Errors
///
/// Propagates [`PowerModel::validate`] failures.
pub fn evaluate_policy(
    model: &PowerModel,
    policy: &PowerPolicy,
    log: &BusyLog,
) -> Result<PowerOutcome> {
    model.validate()?;
    let span_secs = log.span_ns() as f64 / 1e9;
    let busy_secs = log.total_busy_ns() as f64 / 1e9;
    let mut energy = busy_secs * model.active_watts;
    let mut head_loads = 0u64;
    let mut spinups = 0u64;
    let mut recovery = 0.0;

    let idle_periods = log.idle_periods();
    let last_end = idle_periods.last().map(|&(_, e)| e);
    for &(start, end) in &idle_periods {
        let d = (end - start) as f64 / 1e9;
        // Stage 1: loaded idle up to the unload timeout.
        let loaded = d.min(policy.unload_timeout_secs);
        energy += loaded * model.idle_watts;
        // Stage 2: unloaded until the standby timeout.
        if d > policy.unload_timeout_secs {
            let unloaded = (d - policy.unload_timeout_secs)
                .min(policy.standby_timeout_secs - policy.unload_timeout_secs);
            energy += unloaded * model.unloaded_watts;
        }
        // Stage 3: standby for the remainder.
        if d > policy.standby_timeout_secs {
            energy += (d - policy.standby_timeout_secs) * model.standby_watts;
        }
        // Recovery applies only if work follows this idle period (the
        // trailing idle period of the span never recovers).
        let has_follower = Some(end) != last_end || end < log.span_ns();
        let is_trailing = end == log.span_ns();
        if has_follower && !is_trailing {
            if d > policy.standby_timeout_secs {
                spinups += 1;
                energy += model.spinup_joules;
                recovery += model.spinup_secs;
            } else if d > policy.unload_timeout_secs {
                head_loads += 1;
                energy += model.load_joules;
                recovery += model.load_secs;
            }
        }
    }

    Ok(PowerOutcome {
        energy_joules: energy,
        head_loads,
        spinups,
        recovery_delay_secs: recovery,
        span_secs,
    })
}

/// Sweeps standby timeouts and reports the energy/latency tradeoff —
/// the data behind the power-policy figure. The unload timeout is fixed
/// at one tenth of the standby timeout (a common heuristic).
///
/// # Errors
///
/// Propagates validation failures.
pub fn timeout_sweep(
    model: &PowerModel,
    log: &BusyLog,
    standby_timeouts_secs: &[f64],
) -> Result<Vec<(f64, PowerOutcome)>> {
    standby_timeouts_secs
        .iter()
        .map(|&t| {
            let policy = PowerPolicy::new(t / 10.0, t)?;
            Ok((t, evaluate_policy(model, &policy, log)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busy::BusyLogBuilder;

    fn log(periods: &[(u64, u64)], span: u64) -> BusyLog {
        let mut b = BusyLogBuilder::new();
        for &(s, e) in periods {
            b.push(s, e).unwrap();
        }
        b.finish(span).unwrap()
    }

    fn secs(s: f64) -> u64 {
        (s * 1e9) as u64
    }

    #[test]
    fn model_and_policy_validation() {
        let mut m = PowerModel::enterprise_15k();
        assert!(m.validate().is_ok());
        m.idle_watts = 20.0; // above active
        assert!(m.validate().is_err());
        let mut m2 = PowerModel::enterprise_15k();
        m2.spinup_joules = -1.0;
        assert!(m2.validate().is_err());
        assert!(PowerPolicy::new(-1.0, 10.0).is_err());
        assert!(PowerPolicy::new(10.0, 5.0).is_err());
        assert!(PowerPolicy::new(1.0, 10.0).is_ok());
    }

    #[test]
    fn always_on_energy_is_exact() {
        // Busy 10 s of a 100 s window.
        let l = log(&[(secs(10.0), secs(20.0))], secs(100.0));
        let m = PowerModel::enterprise_15k();
        let out = evaluate_policy(&m, &PowerPolicy::always_on(), &l).unwrap();
        let expected = 10.0 * 12.0 + 90.0 * 9.0;
        assert!((out.energy_joules - expected).abs() < 1e-6);
        assert_eq!(out.head_loads, 0);
        assert_eq!(out.spinups, 0);
        assert_eq!(out.recovery_delay_secs, 0.0);
        assert!((out.mean_watts() - expected / 100.0).abs() < 1e-9);
    }

    #[test]
    fn staged_idle_energy_accounting() {
        // One idle period of 100 s between two busy seconds.
        let l = log(&[(0, secs(1.0)), (secs(101.0), secs(102.0))], secs(102.0));
        let m = PowerModel::enterprise_15k();
        // Unload after 10 s, standby after 40 s.
        let p = PowerPolicy::new(10.0, 40.0).unwrap();
        let out = evaluate_policy(&m, &p, &l).unwrap();
        let expected = 2.0 * 12.0            // busy
            + 10.0 * 9.0                      // loaded idle
            + 30.0 * 5.0                      // unloaded
            + 60.0 * 1.5                      // standby
            + 120.0; // one spin-up
        assert!(
            (out.energy_joules - expected).abs() < 1e-6,
            "energy {} vs {}",
            out.energy_joules,
            expected
        );
        assert_eq!(out.spinups, 1);
        assert_eq!(out.head_loads, 0);
        assert!((out.recovery_delay_secs - 6.0).abs() < 1e-9);
    }

    #[test]
    fn trailing_idle_never_pays_recovery() {
        // Busy then idle until the end of the span.
        let l = log(&[(0, secs(1.0))], secs(1000.0));
        let m = PowerModel::enterprise_15k();
        let p = PowerPolicy::new(1.0, 10.0).unwrap();
        let out = evaluate_policy(&m, &p, &l).unwrap();
        assert_eq!(out.spinups, 0);
        assert_eq!(out.head_loads, 0);
        assert_eq!(out.recovery_delay_secs, 0.0);
    }

    #[test]
    fn aggressive_timeouts_save_energy_but_cost_latency() {
        // Idle-dominated timeline with a few busy bursts.
        let mut b = BusyLogBuilder::new();
        for i in 0..10u64 {
            b.push(secs(i as f64 * 100.0), secs(i as f64 * 100.0 + 2.0))
                .unwrap();
        }
        let l = b.finish(secs(1000.0)).unwrap();
        let m = PowerModel::enterprise_15k();
        let baseline = evaluate_policy(&m, &PowerPolicy::always_on(), &l).unwrap();
        let aggressive = evaluate_policy(&m, &PowerPolicy::new(1.0, 10.0).unwrap(), &l).unwrap();
        assert!(
            aggressive.savings_vs(&baseline) > 0.4,
            "savings {}",
            aggressive.savings_vs(&baseline)
        );
        assert!(aggressive.recovery_delay_secs > 0.0);
        assert_eq!(aggressive.spinups, 9); // trailing idle excluded
    }

    #[test]
    fn sweep_trades_energy_against_recoveries() {
        let mut b = BusyLogBuilder::new();
        for i in 0..20u64 {
            b.push(secs(i as f64 * 50.0), secs(i as f64 * 50.0 + 1.0))
                .unwrap();
        }
        let l = b.finish(secs(1000.0)).unwrap();
        let m = PowerModel::enterprise_15k();
        let sweep = timeout_sweep(&m, &l, &[5.0, 20.0, 100.0, 1000.0]).unwrap();
        // Energy grows (or stays flat) with the timeout; recoveries
        // shrink.
        for w in sweep.windows(2) {
            assert!(w[1].1.energy_joules >= w[0].1.energy_joules - 1e-6);
            assert!(w[1].1.recovery_delay_secs <= w[0].1.recovery_delay_secs + 1e-9);
        }
    }

    #[test]
    fn short_gaps_stay_loaded() {
        // 0.5 s gaps with a 1 s unload timeout: pure idle power, no
        // transitions.
        let mut b = BusyLogBuilder::new();
        for i in 0..5u64 {
            b.push(secs(i as f64 * 1.0), secs(i as f64 + 0.5)).unwrap();
        }
        let l = b.finish(secs(5.0)).unwrap();
        let m = PowerModel::enterprise_15k();
        let p = PowerPolicy::new(1.0, 10.0).unwrap();
        let out = evaluate_policy(&m, &p, &l).unwrap();
        assert_eq!(out.head_loads + out.spinups, 0);
        let expected = 2.5 * 12.0 + 2.5 * 9.0;
        assert!((out.energy_joules - expected).abs() < 1e-6);
    }
}
