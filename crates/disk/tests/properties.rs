//! Property-based tests for the disk simulator: conservation and
//! ordering invariants must hold for *any* valid request stream and
//! configuration.

use proptest::prelude::*;
use spindle_disk::busy::BusyLogBuilder;
use spindle_disk::cache::CacheConfig;
use spindle_disk::geometry::DiskGeometry;
use spindle_disk::profile::DriveProfile;
use spindle_disk::scheduler::SchedulerKind;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_trace::{DriveId, OpKind, Request};

/// Capacity floor shared by all built-in profiles.
const SAFE_CAPACITY: u64 = 130_000_000;

fn arb_stream(max: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0u64..60_000_000_000u64, // within one minute
            prop::bool::ANY,
            0u64..SAFE_CAPACITY - 100_000,
            1u32..2_048,
        ),
        1..max,
    )
    .prop_map(|tuples| {
        let mut v: Vec<Request> = tuples
            .into_iter()
            .map(|(t, w, lba, sectors)| {
                let op = if w { OpKind::Write } else { OpKind::Read };
                Request::new(t, DriveId(0), op, lba, sectors).expect("valid")
            })
            .collect();
        v.sort_by_key(|r| r.arrival_ns);
        v
    })
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop::sample::select(SchedulerKind::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_request_completes_once(reqs in arb_stream(60), scheduler in arb_scheduler()) {
        let cfg = SimConfig { scheduler, ..SimConfig::default() };
        let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
        let result = sim.run(&reqs).unwrap();
        prop_assert_eq!(result.completed.len(), reqs.len());
        let serviced = result.read_hits + result.read_misses
            + result.writes_cached + result.writes_forced;
        prop_assert_eq!(serviced, reqs.len() as u64);
    }

    #[test]
    fn causality_and_conservation(reqs in arb_stream(60), scheduler in arb_scheduler()) {
        let cfg = SimConfig { scheduler, ..SimConfig::default() };
        let mut sim = DiskSim::new(DriveProfile::savvio_10k(), cfg);
        let result = sim.run(&reqs).unwrap();
        for c in &result.completed {
            prop_assert!(c.start_ns >= c.request.arrival_ns);
            prop_assert!(c.complete_ns >= c.start_ns);
        }
        // Busy + idle partition the span exactly.
        prop_assert_eq!(
            result.busy.total_busy_ns() + result.busy.total_idle_ns(),
            result.busy.span_ns()
        );
        let u = result.utilization();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn busy_periods_are_disjoint_and_sorted(reqs in arb_stream(50)) {
        let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        let result = sim.run(&reqs).unwrap();
        let periods = result.busy.periods();
        for w in periods.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "periods {:?} and {:?} touch or overlap", w[0], w[1]);
        }
        for &(s, e) in periods {
            prop_assert!(s < e);
            prop_assert!(e <= result.busy.span_ns());
        }
        // Idle periods tile the complement.
        let idle: u64 = result.busy.idle_periods().iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(idle, result.busy.total_idle_ns());
    }

    #[test]
    fn write_through_never_destages(reqs in arb_stream(40)) {
        let mut cache = CacheConfig::default();
        cache.write_back = false;
        let cfg = SimConfig { cache: Some(cache), ..SimConfig::default() };
        let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
        let result = sim.run(&reqs).unwrap();
        prop_assert_eq!(result.destages, 0);
        prop_assert_eq!(result.writes_cached, 0);
    }

    #[test]
    fn disabled_cache_forces_everything(reqs in arb_stream(40)) {
        let cfg = SimConfig { cache: Some(CacheConfig::disabled()), ..SimConfig::default() };
        let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
        let result = sim.run(&reqs).unwrap();
        prop_assert_eq!(result.read_hits, 0);
        prop_assert_eq!(result.writes_cached, 0);
    }

    #[test]
    fn schedulers_agree_on_work_not_order(reqs in arb_stream(40)) {
        // All schedulers must service the same multiset of requests;
        // only ordering and timing may differ.
        let mut counts = Vec::new();
        for scheduler in SchedulerKind::all() {
            let cfg = SimConfig { scheduler, ..SimConfig::default() };
            let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), cfg);
            let result = sim.run(&reqs).unwrap();
            let mut ids: Vec<u64> = result.completed.iter().map(|c| c.request.arrival_ns).collect();
            ids.sort_unstable();
            counts.push(ids);
        }
        for w in counts.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    #[test]
    fn geometry_locate_is_total_and_monotone(
        zones in prop::collection::vec((1u32..50, 1u32..200), 1..6),
        probes in prop::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let g = DiskGeometry::new(
            zones
                .iter()
                .map(|&(tracks, spt)| spindle_disk::geometry::Zone {
                    tracks,
                    sectors_per_track: spt,
                })
                .collect(),
        )
        .unwrap();
        let total = g.total_sectors();
        let mut last = (0u64, 0u64);
        let mut sorted_probes: Vec<u64> = probes
            .iter()
            .map(|&p| ((p * (total - 1) as f64) as u64).min(total - 1))
            .collect();
        sorted_probes.sort_unstable();
        for lba in sorted_probes {
            let loc = g.locate(lba).unwrap();
            prop_assert!(loc.offset < loc.sectors_per_track);
            prop_assert!(loc.track < g.total_tracks());
            prop_assert!((loc.track, lba) >= last, "track must be monotone in lba");
            last = (loc.track, lba);
        }
        prop_assert!(g.locate(total).is_err());
    }

    #[test]
    fn busy_log_builder_merges_correctly(
        intervals in prop::collection::vec((0u64..1_000, 0u64..100), 0..40),
    ) {
        let mut sorted: Vec<(u64, u64)> = intervals
            .iter()
            .map(|&(s, len)| (s, s + len))
            .collect();
        sorted.sort_unstable();
        let mut builder = BusyLogBuilder::new();
        for &(s, e) in &sorted {
            builder.push(s, e).unwrap();
        }
        let log = builder.finish(2_000).unwrap();
        // Total busy time equals the measure of the union of intervals.
        let mut covered = vec![false; 2_000];
        for &(s, e) in &sorted {
            for slot in covered.iter_mut().take(e as usize).skip(s as usize) {
                *slot = true;
            }
        }
        let expected = covered.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(log.total_busy_ns(), expected);
    }
}
