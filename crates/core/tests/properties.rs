//! Property-based tests for the characterization framework: analysis
//! invariants must hold for arbitrary (valid) busy logs and request
//! streams.

use proptest::prelude::*;
use spindle_core::background::BackgroundTask;
use spindle_core::idle::IdleAnalysis;
use spindle_core::spatial::SpatialAnalysis;
use spindle_disk::busy::{BusyLog, BusyLogBuilder};
use spindle_trace::{DriveId, OpKind, Request};

/// Arbitrary busy log: sorted, disjoint-ish intervals inside a span.
fn arb_busy_log() -> impl Strategy<Value = BusyLog> {
    prop::collection::vec((0u64..1_000_000, 1u64..50_000), 0..50).prop_map(|intervals| {
        let mut sorted: Vec<(u64, u64)> =
            intervals.into_iter().map(|(s, len)| (s, s + len)).collect();
        sorted.sort_unstable();
        let mut b = BusyLogBuilder::new();
        for (s, e) in sorted {
            b.push(s, e).expect("sorted pushes are valid");
        }
        b.finish(2_000_000).expect("span covers all intervals")
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0u64..10_000_000_000u64,
            0u64..10_000_000,
            1u32..1_000,
            prop::bool::ANY,
        ),
        2..120,
    )
    .prop_map(|tuples| {
        let mut v: Vec<Request> = tuples
            .into_iter()
            .map(|(t, lba, sectors, w)| {
                let op = if w { OpKind::Write } else { OpKind::Read };
                Request::new(t, DriveId(0), op, lba, sectors).expect("valid")
            })
            .collect();
        v.sort_by_key(|r| r.arrival_ns);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn idle_analysis_conserves_time(log in arb_busy_log()) {
        let a = IdleAnalysis::new(&log).unwrap();
        let busy: f64 = a.busy_durations().iter().sum();
        let idle: f64 = a.idle_durations().iter().sum();
        let span = log.span_ns() as f64 / 1e9;
        prop_assert!((busy + idle - span).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&a.idle_fraction()));
    }

    #[test]
    fn availability_is_monotone_and_bounded(log in arb_busy_log(), thr in 0.0f64..10.0) {
        let a = IdleAnalysis::new(&log).unwrap();
        let rows = a.availability(&[thr, thr * 2.0 + 0.001, thr * 10.0 + 0.01]);
        for r in &rows {
            prop_assert!((0.0..=1.0).contains(&r.fraction_of_idle_time));
            prop_assert!((0.0..=1.0).contains(&r.fraction_of_intervals));
        }
        for w in rows.windows(2) {
            prop_assert!(w[1].fraction_of_idle_time <= w[0].fraction_of_idle_time + 1e-12);
        }
        // Threshold zero captures every idle second.
        let zero = a.availability(&[0.0]);
        if !a.idle_durations().is_empty() {
            prop_assert!((zero[0].fraction_of_idle_time - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn background_budget_never_exceeds_idle_time(
        log in arb_busy_log(),
        wait in 0.0f64..0.01,
        setup in 0.0f64..0.01,
    ) {
        let task = BackgroundTask::new(wait, setup, 1.0).unwrap();
        let s = task.schedule(&log).unwrap();
        let idle_secs = log.total_idle_ns() as f64 / 1e9;
        prop_assert!(s.productive_secs <= idle_secs + 1e-9);
        prop_assert!((0.0..=1.0).contains(&s.idle_efficiency()));
        prop_assert!(s.usable_intervals <= s.total_intervals);
        // Zero-cost tasks convert all idle time.
        let free = BackgroundTask::new(0.0, 0.0, 1.0).unwrap().schedule(&log).unwrap();
        prop_assert!((free.productive_secs - idle_secs).abs() < 1e-9);
    }

    #[test]
    fn spatial_runs_partition_the_stream(reqs in arb_stream()) {
        let a = SpatialAnalysis::new(&reqs).unwrap();
        // Total requests across runs equals the stream length.
        let run_total: f64 = a.run_length_cdf().unwrap().as_sorted_slice().iter().sum();
        prop_assert_eq!(run_total as usize, reqs.len());
        // Sequential fraction and run count are consistent:
        // runs = requests − sequential transitions.
        let seq = (a.sequential_fraction() * (reqs.len() - 1) as f64).round() as usize;
        prop_assert_eq!(a.runs(), reqs.len() - seq);
        prop_assert!(a.mean_run_length() >= 1.0);
    }

    #[test]
    fn response_percentiles_are_ordered_for_any_stream(reqs in arb_stream()) {
        use spindle_core::response::ResponseAnalysis;
        use spindle_disk::profile::DriveProfile;
        use spindle_disk::sim::{DiskSim, SimConfig};
        let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        let result = sim.run(&reqs).unwrap();
        let a = ResponseAnalysis::new(&result).unwrap();
        for class in a.classes().unwrap() {
            for w in class.percentiles.windows(2) {
                prop_assert!(w[1].1 >= w[0].1);
            }
            prop_assert!(class.mean_ms <= class.max_ms + 1e-12);
        }
        let qd = ResponseAnalysis::queue_depth(&result).unwrap();
        prop_assert!(qd.max as f64 >= qd.mean);
        prop_assert!(qd.max as usize <= reqs.len());
    }
}
