//! Read/write decomposition across all three time scales.
//!
//! Because the three trace sets record different quantities, the
//! read/write mix must be computed differently at each scale — yet for a
//! consistent workload the shares should agree. [`RwShares`] holds one
//! scale's decomposition and [`rw_across_scales`] assembles the
//! three-scale comparison behind the read-vs-write figure.

use crate::{CoreError, Result};
use spindle_trace::{HourSeries, LifetimeRecord, OpKind, Request};

/// Read/write shares at one time scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwShares {
    /// Fraction of operations that are reads.
    pub read_ops_share: f64,
    /// Fraction of operations that are writes.
    pub write_ops_share: f64,
    /// Fraction of bytes moved by reads.
    pub read_bytes_share: f64,
    /// Fraction of bytes moved by writes.
    pub write_bytes_share: f64,
}

impl RwShares {
    fn from_counts(reads: u64, writes: u64, read_bytes: u64, write_bytes: u64) -> Result<Self> {
        let ops = reads + writes;
        let bytes = read_bytes + write_bytes;
        if ops == 0 || bytes == 0 {
            return Err(CoreError::InvalidInput {
                reason: "no operations to decompose".into(),
            });
        }
        Ok(RwShares {
            read_ops_share: reads as f64 / ops as f64,
            write_ops_share: writes as f64 / ops as f64,
            read_bytes_share: read_bytes as f64 / bytes as f64,
            write_bytes_share: write_bytes as f64 / bytes as f64,
        })
    }
}

/// Read/write shares of a millisecond-scale request stream.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] for an empty stream.
pub fn rw_shares_ms(requests: &[Request]) -> Result<RwShares> {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut rb = 0u64;
    let mut wb = 0u64;
    for r in requests {
        match r.op {
            OpKind::Read => {
                reads += 1;
                rb += r.bytes();
            }
            OpKind::Write => {
                writes += 1;
                wb += r.bytes();
            }
        }
    }
    RwShares::from_counts(reads, writes, rb, wb)
}

/// Read/write shares of an hour series.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if the series has no operations.
pub fn rw_shares_hour(series: &HourSeries) -> Result<RwShares> {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut sr = 0u64;
    let mut sw = 0u64;
    for r in series.records() {
        reads += r.reads;
        writes += r.writes;
        sr += r.sectors_read;
        sw += r.sectors_written;
    }
    RwShares::from_counts(
        reads,
        writes,
        sr * spindle_trace::SECTOR_BYTES,
        sw * spindle_trace::SECTOR_BYTES,
    )
}

/// Read/write shares aggregated over a family's lifetime records.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if the family serviced no
/// operations.
pub fn rw_shares_lifetime(records: &[LifetimeRecord]) -> Result<RwShares> {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut sr = 0u64;
    let mut sw = 0u64;
    for r in records {
        reads += r.lifetime_reads;
        writes += r.lifetime_writes;
        sr += r.sectors_read;
        sw += r.sectors_written;
    }
    RwShares::from_counts(
        reads,
        writes,
        sr * spindle_trace::SECTOR_BYTES,
        sw * spindle_trace::SECTOR_BYTES,
    )
}

/// The three-scale read/write comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwAcrossScales {
    /// Shares at the millisecond (per-request) scale.
    pub millisecond: RwShares,
    /// Shares at the hour scale.
    pub hour: RwShares,
    /// Shares at the lifetime scale.
    pub lifetime: RwShares,
}

impl RwAcrossScales {
    /// Largest absolute disagreement in write-operation share between
    /// any two scales — small values mean the scales tell a consistent
    /// story.
    pub fn max_write_share_disagreement(&self) -> f64 {
        let shares = [
            self.millisecond.write_ops_share,
            self.hour.write_ops_share,
            self.lifetime.write_ops_share,
        ];
        let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = shares.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
}

/// Assembles the three-scale comparison.
///
/// # Errors
///
/// Propagates the per-scale errors.
pub fn rw_across_scales(
    requests: &[Request],
    series: &HourSeries,
    records: &[LifetimeRecord],
) -> Result<RwAcrossScales> {
    Ok(RwAcrossScales {
        millisecond: rw_shares_ms(requests)?,
        hour: rw_shares_hour(series)?,
        lifetime: rw_shares_lifetime(records)?,
    })
}

/// Read/write coupling: cross-correlation between the per-interval read
/// and write count series at lag 0 — positive when read and write
/// bursts arrive together (shared application activity), near zero when
/// the two classes are independent.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] for invalid bucketing parameters
/// and [`CoreError::Stats`] when either class has no variation.
pub fn rw_coupling(requests: &[Request], span_secs: f64, interval_secs: f64) -> Result<f64> {
    use spindle_stats::timeseries::counts_per_interval;
    let reads: Vec<f64> = requests
        .iter()
        .filter(|r| r.op == OpKind::Read)
        .map(Request::arrival_secs)
        .collect();
    let writes: Vec<f64> = requests
        .iter()
        .filter(|r| r.op == OpKind::Write)
        .map(Request::arrival_secs)
        .collect();
    let rc = counts_per_interval(&reads, 0.0, span_secs, interval_secs)?;
    let wc = counts_per_interval(&writes, 0.0, span_secs, interval_secs)?;
    Ok(spindle_stats::acf::cross_correlation(&rc, &wc, 0)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_trace::lifetime::accumulate_lifetime;
    use spindle_trace::{DriveId, HourRecord};

    fn req(op: OpKind, sectors: u32) -> Request {
        Request::new(0, DriveId(0), op, 0, sectors).unwrap()
    }

    #[test]
    fn ms_shares_split_ops_and_bytes() {
        let reqs = vec![
            req(OpKind::Read, 8),
            req(OpKind::Read, 8),
            req(OpKind::Write, 48),
        ];
        let s = rw_shares_ms(&reqs).unwrap();
        assert!((s.read_ops_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.write_ops_share - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.read_bytes_share - 0.25).abs() < 1e-12);
        assert!((s.write_bytes_share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(rw_shares_ms(&[]).is_err());
        assert!(rw_shares_lifetime(&[]).is_err());
    }

    #[test]
    fn hour_and_lifetime_shares_agree_with_accumulation() {
        let recs: Vec<HourRecord> = (0..48)
            .map(|h| HourRecord::new(DriveId(0), h, 30, 70, 240, 560, 100.0).unwrap())
            .collect();
        let series = HourSeries::new(recs.clone()).unwrap();
        let lt = accumulate_lifetime(&recs).unwrap();
        let hr = rw_shares_hour(&series).unwrap();
        let lf = rw_shares_lifetime(&[lt]).unwrap();
        assert!((hr.write_ops_share - 0.7).abs() < 1e-12);
        assert!((hr.write_ops_share - lf.write_ops_share).abs() < 1e-12);
        assert!((hr.write_bytes_share - lf.write_bytes_share).abs() < 1e-12);
    }

    #[test]
    fn consistent_workload_has_small_disagreement() {
        // Build all three scales from the same underlying mix (70%
        // writes).
        let reqs: Vec<Request> = (0..1000)
            .map(|i| {
                let op = if i % 10 < 7 {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                Request::new(i, DriveId(0), op, i * 8, 8).unwrap()
            })
            .collect();
        let recs: Vec<HourRecord> = (0..48)
            .map(|h| HourRecord::new(DriveId(0), h, 300, 700, 2400, 5600, 100.0).unwrap())
            .collect();
        let series = HourSeries::new(recs.clone()).unwrap();
        let lt = accumulate_lifetime(&recs).unwrap();
        let x = rw_across_scales(&reqs, &series, &[lt]).unwrap();
        assert!(
            x.max_write_share_disagreement() < 0.01,
            "disagreement {}",
            x.max_write_share_disagreement()
        );
    }

    #[test]
    fn rw_coupling_is_high_for_shared_burst_traffic() {
        // Reads and writes drawn from the same session-gated process:
        // bursts contain both classes, so the series are coupled.
        let reqs = spindle_synth::presets::Environment::Mail
            .spec(1200.0)
            .generate(21)
            .unwrap();
        let c = rw_coupling(&reqs, 1200.0, 1.0).unwrap();
        assert!(c > 0.3, "coupling {c}");
    }

    #[test]
    fn rw_coupling_is_low_for_disjoint_phases() {
        // Reads in the first half, writes in the second: anti-coupled.
        let mut reqs = Vec::new();
        for i in 0..500u64 {
            reqs.push(Request::new(i * 1_000_000_000, DriveId(0), OpKind::Read, i * 8, 8).unwrap());
        }
        for i in 500..1000u64 {
            reqs.push(
                Request::new(i * 1_000_000_000, DriveId(0), OpKind::Write, i * 8, 8).unwrap(),
            );
        }
        let c = rw_coupling(&reqs, 1000.0, 10.0).unwrap();
        assert!(c < -0.5, "coupling {c}");
    }

    #[test]
    fn disagreement_detects_inconsistency() {
        let reqs = vec![req(OpKind::Read, 8), req(OpKind::Read, 8)];
        // Read-only ms stream has zero bytes written: RwShares requires
        // some ops, which reads satisfy, but from_counts also requires
        // bytes > 0 — reads provide them.
        let ms = rw_shares_ms(&reqs).unwrap();
        assert_eq!(ms.write_ops_share, 0.0);
        let recs: Vec<HourRecord> = (0..48)
            .map(|h| HourRecord::new(DriveId(0), h, 100, 900, 800, 7200, 100.0).unwrap())
            .collect();
        let series = HourSeries::new(recs.clone()).unwrap();
        let lt = accumulate_lifetime(&recs).unwrap();
        let x = rw_across_scales(&reqs, &series, &[lt]).unwrap();
        assert!(x.max_write_share_disagreement() > 0.8);
    }
}
