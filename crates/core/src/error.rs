use std::fmt;

/// Error type for characterization analyses.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying statistical computation failed (insufficient or
    /// degenerate data).
    Stats(spindle_stats::StatsError),
    /// The input data violated an analysis precondition.
    InvalidInput {
        /// Description of the violation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidInput { .. } => None,
        }
    }
}

impl From<spindle_stats::StatsError> for CoreError {
    fn from(e: spindle_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_errors_convert_and_chain() {
        use std::error::Error;
        let e: CoreError = spindle_stats::StatsError::EmptySample.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("empty sample"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
