//! Spatial access-pattern analysis: sequentiality and seek distances.
//!
//! Where a request lands relative to its predecessor determines the
//! mechanical cost of serving it; the two standard views are the
//! sequential-run-length distribution (how long do sequential bursts
//! get?) and the jump-distance distribution (how far does the arm move
//! otherwise?). Both feed directly into cache (read-ahead) and
//! scheduler design.

use crate::{CoreError, Result};
use spindle_stats::ecdf::Ecdf;
use spindle_stats::histogram::LogHistogram;
use spindle_trace::Request;

/// Spatial analysis over one drive's request stream.
#[derive(Debug)]
pub struct SpatialAnalysis {
    run_lengths: Vec<f64>,
    jump_distances: Vec<f64>,
    requests: usize,
    sequential_requests: usize,
}

impl SpatialAnalysis {
    /// Builds the analysis from a single-drive stream in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for fewer than two requests
    /// or a stream spanning multiple drives.
    pub fn new(requests: &[Request]) -> Result<Self> {
        if requests.len() < 2 {
            return Err(CoreError::InvalidInput {
                reason: "spatial analysis needs at least two requests".into(),
            });
        }
        let drive = requests[0].drive;
        if requests.iter().any(|r| r.drive != drive) {
            return Err(CoreError::InvalidInput {
                reason: "spatial analysis expects a single-drive stream".into(),
            });
        }

        let mut run_lengths = Vec::new();
        let mut jump_distances = Vec::with_capacity(requests.len() - 1);
        let mut sequential = 0usize;
        // Current run: number of requests and sectors covered.
        let mut run_requests = 1u64;
        for w in requests.windows(2) {
            if w[1].is_sequential_after(&w[0]) {
                sequential += 1;
                run_requests += 1;
            } else {
                run_lengths.push(run_requests as f64);
                run_requests = 1;
                let jump = w[1].lba.abs_diff(w[0].end_lba());
                jump_distances.push(jump as f64);
            }
        }
        run_lengths.push(run_requests as f64);

        Ok(SpatialAnalysis {
            run_lengths,
            jump_distances,
            requests: requests.len(),
            sequential_requests: sequential,
        })
    }

    /// Fraction of requests that continue the previous request.
    pub fn sequential_fraction(&self) -> f64 {
        self.sequential_requests as f64 / (self.requests - 1) as f64
    }

    /// Number of sequential runs (a lone random request is a run of 1).
    pub fn runs(&self) -> usize {
        self.run_lengths.len()
    }

    /// Mean run length in requests.
    pub fn mean_run_length(&self) -> f64 {
        self.requests as f64 / self.run_lengths.len() as f64
    }

    /// ECDF of run lengths (requests per run).
    ///
    /// # Errors
    ///
    /// Propagates ECDF construction failures (cannot happen for
    /// validated input).
    pub fn run_length_cdf(&self) -> Result<Ecdf> {
        Ok(Ecdf::new(self.run_lengths.clone())?)
    }

    /// ECDF of non-sequential jump distances in sectors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for a fully sequential stream (no
    /// jumps).
    pub fn jump_distance_cdf(&self) -> Result<Ecdf> {
        Ok(Ecdf::new(self.jump_distances.clone())?)
    }

    /// Log-binned histogram of jump distances over `[1, 10^9)` sectors
    /// (4 bins per decade). Zero-distance jumps (exact re-reads of the
    /// same position after a gap) land in underflow.
    ///
    /// # Errors
    ///
    /// Never fails for validated input; kept fallible for interface
    /// uniformity.
    pub fn jump_histogram(&self) -> Result<LogHistogram> {
        let mut h = LogHistogram::new(0, 9, 4).map_err(CoreError::Stats)?;
        for &d in &self.jump_distances {
            h.record(d);
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_trace::{DriveId, OpKind};

    fn req(t: u64, lba: u64) -> Request {
        Request::new(t, DriveId(0), OpKind::Read, lba, 8).unwrap()
    }

    #[test]
    fn rejects_invalid_streams() {
        assert!(SpatialAnalysis::new(&[]).is_err());
        assert!(SpatialAnalysis::new(&[req(0, 0)]).is_err());
        let multi = vec![
            req(0, 0),
            Request::new(1, DriveId(1), OpKind::Read, 8, 8).unwrap(),
        ];
        assert!(SpatialAnalysis::new(&multi).is_err());
    }

    #[test]
    fn fully_sequential_stream_is_one_run() {
        let reqs: Vec<Request> = (0..10).map(|i| req(i, i * 8)).collect();
        let a = SpatialAnalysis::new(&reqs).unwrap();
        assert_eq!(a.runs(), 1);
        assert_eq!(a.sequential_fraction(), 1.0);
        assert_eq!(a.mean_run_length(), 10.0);
        assert!(a.jump_distance_cdf().is_err());
    }

    #[test]
    fn fully_random_stream_has_unit_runs() {
        let reqs: Vec<Request> = (0..10).map(|i| req(i, i * 1_000_000)).collect();
        let a = SpatialAnalysis::new(&reqs).unwrap();
        assert_eq!(a.runs(), 10);
        assert_eq!(a.sequential_fraction(), 0.0);
        assert_eq!(a.mean_run_length(), 1.0);
        assert_eq!(a.jump_distance_cdf().unwrap().len(), 9);
    }

    #[test]
    fn mixed_stream_counts_runs_correctly() {
        // Runs: [0,8,16], [1000,1008], [9999].
        let reqs = vec![
            req(0, 0),
            req(1, 8),
            req(2, 16),
            req(3, 1000),
            req(4, 1008),
            req(5, 9999),
        ];
        let a = SpatialAnalysis::new(&reqs).unwrap();
        assert_eq!(a.runs(), 3);
        assert!((a.sequential_fraction() - 3.0 / 5.0).abs() < 1e-12);
        let cdf = a.run_length_cdf().unwrap();
        assert_eq!(cdf.max(), 3.0);
        assert_eq!(cdf.min(), 1.0);
        // Jumps: |1000 - 24| = 976, |9999 - 1016| = 8983.
        let jumps = a.jump_distance_cdf().unwrap();
        assert_eq!(jumps.min(), 976.0);
        assert_eq!(jumps.max(), 8983.0);
    }

    #[test]
    fn backward_jumps_use_absolute_distance() {
        let reqs = vec![req(0, 1_000_000), req(1, 100)];
        let a = SpatialAnalysis::new(&reqs).unwrap();
        let jumps = a.jump_distance_cdf().unwrap();
        assert_eq!(jumps.min(), 1_000_000.0 + 8.0 - 100.0);
    }

    #[test]
    fn histogram_covers_jump_range() {
        let reqs = vec![req(0, 0), req(1, 100), req(2, 1_000_000), req(3, 1_000_008)];
        let a = SpatialAnalysis::new(&reqs).unwrap();
        let h = a.jump_histogram().unwrap();
        assert_eq!(h.total(), 2); // jumps of 92 and ~999892 sectors
    }

    #[test]
    fn archive_preset_is_more_sequential_than_mail() {
        use spindle_synth::presets::Environment;
        let archive = Environment::Archive.spec(600.0).generate(3).unwrap();
        let mail = Environment::Mail.spec(600.0).generate(3).unwrap();
        let sa = SpatialAnalysis::new(&archive).unwrap();
        let sm = SpatialAnalysis::new(&mail).unwrap();
        assert!(sa.mean_run_length() > sm.mean_run_length() * 2.0);
        assert!(sa.sequential_fraction() > sm.sequential_fraction());
    }
}
