//! Multi-scale burstiness analysis of arrival streams.
//!
//! "The workload arriving at the disk is bursty across all time scales
//! evaluated" is the paper's headline claim. [`BurstinessAnalysis`]
//! quantifies it on an event stream: autocorrelation of per-interval
//! counts, the index-of-dispersion curve across an aggregation ladder,
//! and the three-estimator Hurst summary.

use crate::{CoreError, Result};
use spindle_stats::acf::{acf, significant_lag_run, white_noise_band};
use spindle_stats::dispersion::{idc_curve, IdcPoint};
use spindle_stats::hurst::{estimate_all, HurstSummary};
use spindle_stats::timeseries::{counts_per_interval, scale_ladder};

/// Burstiness analysis over one event stream.
#[derive(Debug, Clone)]
pub struct BurstinessAnalysis {
    counts: Vec<f64>,
    base_interval_secs: f64,
}

impl BurstinessAnalysis {
    /// Buckets sorted event times (seconds) into counts at the base
    /// interval over `[0, span_secs)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the resulting count series
    /// is shorter than 64 intervals (too short for scale analysis) and
    /// propagates bucketing parameter errors.
    pub fn new(events: &[f64], span_secs: f64, base_interval_secs: f64) -> Result<Self> {
        let counts = counts_per_interval(events, 0.0, span_secs, base_interval_secs)?;
        if counts.len() < 64 {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "need at least 64 base intervals for multi-scale analysis, got {}",
                    counts.len()
                ),
            });
        }
        Ok(BurstinessAnalysis {
            counts,
            base_interval_secs,
        })
    }

    /// Wraps an existing count series (e.g. per-hour operations).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for series shorter than 64
    /// intervals.
    pub fn from_counts(counts: Vec<f64>, base_interval_secs: f64) -> Result<Self> {
        if counts.len() < 64 {
            return Err(CoreError::InvalidInput {
                reason: format!("need at least 64 intervals, got {}", counts.len()),
            });
        }
        Ok(BurstinessAnalysis {
            counts,
            base_interval_secs,
        })
    }

    /// The per-interval count series.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Base interval width in seconds.
    pub fn base_interval_secs(&self) -> f64 {
        self.base_interval_secs
    }

    /// Autocorrelation of the counts for lags `0..=max_lag` — the data
    /// behind the ACF figure.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate or too-short series.
    pub fn acf(&self, max_lag: usize) -> Result<Vec<f64>> {
        Ok(acf(&self.counts, max_lag)?)
    }

    /// Number of leading lags with significant positive autocorrelation
    /// and the white-noise significance band.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate series.
    pub fn correlation_horizon(&self, max_lag: usize) -> Result<(usize, f64)> {
        let run = significant_lag_run(&self.counts, max_lag)?;
        Ok((run, white_noise_band(self.counts.len())))
    }

    /// Index-of-dispersion curve over a power-of-two ladder that leaves
    /// at least 16 aggregated intervals per scale.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate series.
    pub fn idc_curve(&self) -> Result<Vec<IdcPoint>> {
        let ladder = scale_ladder(self.counts.len(), 16);
        Ok(idc_curve(&self.counts, &ladder)?)
    }

    /// Hurst estimates by all three methods.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate or too-short series.
    pub fn hurst(&self) -> Result<HurstSummary> {
        Ok(estimate_all(&self.counts)?)
    }

    /// Scalar verdict used in the tables: `true` when the stream is
    /// bursty across scales — median Hurst above 0.6 **and** a growing
    /// IDC curve.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate series.
    pub fn is_bursty_across_scales(&self) -> Result<bool> {
        let h = self.hurst()?.median();
        let curve = self.idc_curve()?;
        let growing = match (curve.first(), curve.last()) {
            (Some(a), Some(b)) => b.idc > a.idc * 1.5,
            _ => false,
        };
        Ok(h > 0.6 && growing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spindle_synth::arrival::ArrivalModel;

    fn events(model: &ArrivalModel, span: f64, seed: u64) -> Vec<f64> {
        model
            .generate(span, &mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn rejects_too_short_series() {
        let e: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        assert!(BurstinessAnalysis::new(&e, 10.0, 1.0).is_err());
        assert!(BurstinessAnalysis::from_counts(vec![1.0; 63], 1.0).is_err());
        assert!(BurstinessAnalysis::from_counts(vec![1.0; 64], 1.0).is_ok());
    }

    #[test]
    fn poisson_is_not_bursty_across_scales() {
        let e = events(&ArrivalModel::Poisson { rate: 40.0 }, 2048.0, 1);
        let b = BurstinessAnalysis::new(&e, 2048.0, 1.0).unwrap();
        assert!(!b.is_bursty_across_scales().unwrap());
        let (run, _band) = b.correlation_horizon(50).unwrap();
        assert!(run < 5, "Poisson correlation horizon {run}");
    }

    #[test]
    fn self_similar_traffic_is_bursty_across_scales() {
        let m = ArrivalModel::FgnRate {
            hurst: 0.85,
            mean_rate: 40.0,
            sigma: 0.8,
            interval_secs: 1.0,
        };
        let e = events(&m, 4096.0, 2);
        let b = BurstinessAnalysis::new(&e, 4096.0, 1.0).unwrap();
        assert!(b.is_bursty_across_scales().unwrap());
        let h = b.hurst().unwrap();
        // The summary median is deliberately the lower-middle order
        // statistic; 0.65 still separates cleanly from the Poisson 0.5.
        assert!(h.median() > 0.65, "median H {}", h.median());
        let (run, _) = b.correlation_horizon(100).unwrap();
        assert!(run >= 5, "LRD correlation horizon {run}");
    }

    #[test]
    fn acf_has_unit_lag_zero() {
        let e = events(&ArrivalModel::Poisson { rate: 20.0 }, 256.0, 3);
        let b = BurstinessAnalysis::new(&e, 256.0, 1.0).unwrap();
        let r = b.acf(20).unwrap();
        assert_eq!(r.len(), 21);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idc_ladder_leaves_enough_intervals() {
        let e = events(&ArrivalModel::Poisson { rate: 20.0 }, 1024.0, 4);
        let b = BurstinessAnalysis::new(&e, 1024.0, 1.0).unwrap();
        let curve = b.idc_curve().unwrap();
        assert!(curve.iter().all(|p| p.intervals >= 16));
        assert_eq!(curve.first().unwrap().scale, 1);
    }

    #[test]
    fn from_counts_matches_new() {
        let e = events(&ArrivalModel::Poisson { rate: 10.0 }, 128.0, 5);
        let a = BurstinessAnalysis::new(&e, 128.0, 1.0).unwrap();
        let b = BurstinessAnalysis::from_counts(a.counts().to_vec(), 1.0).unwrap();
        assert_eq!(a.counts(), b.counts());
        assert_eq!(b.base_interval_secs(), 1.0);
    }
}
