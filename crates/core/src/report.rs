//! Plain-text tables and figure data.
//!
//! The experiment harness regenerates each of the paper's artifacts as
//! either a [`Table`] (aligned text columns) or a [`Figure`] (named data
//! series dumped as aligned `x y…` rows, ready for any plotting tool,
//! plus an ASCII sparkline preview per series).

use std::fmt;

/// A text table with a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table title (e.g. `"T3: idleness availability"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width — a bug in
    /// the caller, caught early.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// The rows pushed so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// One named data series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A figure: axis labels plus one or more data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (e.g. `"F2: idle interval CDF"`).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a named series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Renders one series as a fixed-width ASCII sparkline (min–max
    /// normalized), for a quick visual check in terminal output.
    fn sparkline(points: &[(f64, f64)], width: usize) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if points.is_empty() {
            return String::new();
        }
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(f64::MIN_POSITIVE);
        (0..width.min(ys.len()))
            .map(|i| {
                let idx = i * ys.len() / width.min(ys.len());
                let level = ((ys[idx] - lo) / range * 7.0).round() as usize;
                LEVELS[level.min(7)]
            })
            .collect()
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        writeln!(f, "# x = {}, y = {}", self.x_label, self.y_label)?;
        for s in &self.series {
            writeln!(
                f,
                "# {} [{} points]  {}",
                s.label,
                s.points.len(),
                Self::sparkline(&s.points, 60)
            )?;
        }
        // Columnar dump: x then one y column per series, aligned on the
        // union of x values when series share them; otherwise each
        // series is dumped in its own block.
        let shared_x = self.series.len() > 1
            && self.series.windows(2).all(|w| {
                w[0].points.len() == w[1].points.len()
                    && w[0]
                        .points
                        .iter()
                        .zip(&w[1].points)
                        .all(|(a, b)| (a.0 - b.0).abs() < 1e-12)
            });
        if shared_x {
            write!(f, "{:>14}", "x")?;
            for s in &self.series {
                write!(f, "  {:>14}", s.label)?;
            }
            writeln!(f)?;
            for i in 0..self.series[0].points.len() {
                write!(f, "{:>14.6}", self.series[0].points[i].0)?;
                for s in &self.series {
                    write!(f, "  {:>14.6}", s.points[i].1)?;
                }
                writeln!(f)?;
            }
        } else {
            for s in &self.series {
                writeln!(f, "-- {} --", s.label)?;
                for &(x, y) in &s.points {
                    writeln!(f, "{x:>14.6}  {y:>14.6}")?;
                }
            }
        }
        Ok(())
    }
}

/// Formats a float with `digits` significant decimal places — the
/// standard cell formatter used by the experiment harness.
pub fn cell(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("T0: demo", &["env", "rate", "util"]);
        t.push_row(vec!["mail".into(), "45.0".into(), "0.12".into()]);
        t.push_row(vec!["archive".into(), "6.0".into(), "0.04".into()]);
        let s = t.to_string();
        assert!(s.contains("== T0: demo =="));
        assert!(s.contains("env"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn figure_with_shared_x_renders_matrix() {
        let mut fig = Figure::new("F0", "x", "y");
        fig.push_series("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        fig.push_series("b", vec![(0.0, 3.0), (1.0, 4.0)]);
        let s = fig.to_string();
        assert!(s.contains("== F0 =="));
        // One matrix header + 2 data lines.
        let data_lines = s
            .lines()
            .filter(|l| l.starts_with(' ') && l.contains('.'))
            .count();
        assert_eq!(data_lines, 2);
    }

    #[test]
    fn figure_with_distinct_x_renders_blocks() {
        let mut fig = Figure::new("F1", "x", "y");
        fig.push_series("a", vec![(0.0, 1.0)]);
        fig.push_series("b", vec![(5.0, 1.0), (6.0, 2.0)]);
        let s = fig.to_string();
        assert!(s.contains("-- a --"));
        assert!(s.contains("-- b --"));
    }

    #[test]
    fn sparkline_is_bounded_width() {
        let pts: Vec<(f64, f64)> = (0..500)
            .map(|i| (i as f64, (i as f64 / 30.0).sin()))
            .collect();
        let sl = Figure::sparkline(&pts, 60);
        assert_eq!(sl.chars().count(), 60);
        assert!(Figure::sparkline(&[], 60).is_empty());
    }

    #[test]
    fn constant_series_sparkline_does_not_panic() {
        let pts = vec![(0.0, 5.0), (1.0, 5.0)];
        let sl = Figure::sparkline(&pts, 10);
        assert_eq!(sl.chars().count(), 2);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(1.23456, 2), "1.23");
        assert_eq!(cell(0.5, 3), "0.500");
    }
}
