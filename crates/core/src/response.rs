//! Response-time analysis.
//!
//! Response time is the quantity host software actually observes, and
//! burstiness shows up in its tail: queueing during bursts stretches the
//! high percentiles far beyond the mean. [`ResponseAnalysis`] breaks the
//! simulated response times down by direction and cache outcome and
//! reports the percentile ladder the storage literature uses.

use crate::{CoreError, Result};
use spindle_disk::sim::SimResult;
use spindle_stats::ecdf::Ecdf;
use spindle_trace::OpKind;

/// Percentile levels reported in the response-time tables.
pub const RESPONSE_LEVELS: [f64; 7] = [0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 0.999];

/// One class's response-time summary (milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseClass {
    /// Class label (`"all"`, `"read"`, `"write"`, `"hit"`, `"miss"`).
    pub label: &'static str,
    /// Requests in the class.
    pub count: u64,
    /// Mean response time in ms.
    pub mean_ms: f64,
    /// Maximum response time in ms.
    pub max_ms: f64,
    /// `(level, value_ms)` at each of [`RESPONSE_LEVELS`].
    pub percentiles: Vec<(f64, f64)>,
}

/// Outstanding-request (queue depth) statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueDepth {
    /// Time-averaged number of outstanding requests.
    pub mean: f64,
    /// Maximum instantaneous depth.
    pub max: u64,
}

/// Response-time analysis over a simulation result.
#[derive(Debug)]
pub struct ResponseAnalysis {
    all: Vec<f64>,
    reads: Vec<f64>,
    writes: Vec<f64>,
    hits: Vec<f64>,
    misses: Vec<f64>,
    mean_queue_ms: f64,
}

impl ResponseAnalysis {
    /// Builds the analysis from a simulation result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if no request completed.
    pub fn new(sim: &SimResult) -> Result<Self> {
        if sim.completed.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "simulation completed no requests".into(),
            });
        }
        let mut all = Vec::with_capacity(sim.completed.len());
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        let mut queue_total = 0.0;
        for c in &sim.completed {
            let ms = c.response_ns() as f64 / 1e6;
            all.push(ms);
            match c.request.op {
                OpKind::Read => reads.push(ms),
                OpKind::Write => writes.push(ms),
            }
            if c.cache_hit {
                hits.push(ms);
            } else {
                misses.push(ms);
            }
            queue_total += c.queue_ns() as f64 / 1e6;
        }
        Ok(ResponseAnalysis {
            mean_queue_ms: queue_total / all.len() as f64,
            all,
            reads,
            writes,
            hits,
            misses,
        })
    }

    /// Mean time spent waiting in the queue (before service), ms.
    pub fn mean_queue_ms(&self) -> f64 {
        self.mean_queue_ms
    }

    fn class(label: &'static str, sample: &[f64]) -> Result<Option<ResponseClass>> {
        if sample.is_empty() {
            return Ok(None);
        }
        let ecdf = Ecdf::new(sample.to_vec())?;
        let percentiles = RESPONSE_LEVELS
            .iter()
            .map(|&level| Ok((level, ecdf.quantile(level)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Some(ResponseClass {
            label,
            count: sample.len() as u64,
            mean_ms: ecdf.mean(),
            max_ms: ecdf.max(),
            percentiles,
        }))
    }

    /// Summaries for every non-empty class, `"all"` first.
    ///
    /// # Errors
    ///
    /// Propagates ECDF construction failures (cannot happen for the
    /// validated input).
    pub fn classes(&self) -> Result<Vec<ResponseClass>> {
        let mut out = Vec::with_capacity(5);
        for (label, sample) in [
            ("all", &self.all),
            ("read", &self.reads),
            ("write", &self.writes),
            ("hit", &self.hits),
            ("miss", &self.misses),
        ] {
            if let Some(c) = Self::class(label, sample)? {
                out.push(c);
            }
        }
        Ok(out)
    }

    /// Time-averaged and maximum number of outstanding requests,
    /// computed from the arrival/completion events of `sim` — queue
    /// depth is where burstiness becomes queueing delay.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if no request completed.
    pub fn queue_depth(sim: &SimResult) -> Result<QueueDepth> {
        if sim.completed.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "simulation completed no requests".into(),
            });
        }
        // Sweep arrival (+1) and completion (−1) events in time order.
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(sim.completed.len() * 2);
        let mut span_end = 0u64;
        for c in &sim.completed {
            events.push((c.request.arrival_ns, 1));
            events.push((c.complete_ns, -1));
            span_end = span_end.max(c.complete_ns);
        }
        // Completions sort before arrivals at the same instant so a
        // zero-latency handoff does not double-count.
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        let mut weighted = 0.0f64;
        let mut last_t = 0u64;
        for (t, delta) in events {
            weighted += depth as f64 * (t - last_t) as f64;
            depth += delta;
            max_depth = max_depth.max(depth);
            last_t = t;
        }
        debug_assert_eq!(depth, 0, "every arrival must complete");
        Ok(QueueDepth {
            mean: weighted / span_end.max(1) as f64,
            max: max_depth as u64,
        })
    }

    /// Tail amplification: p99 over median of the all-requests class —
    /// the single number that shows burstiness reaching the host.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the median response is
    /// zero.
    pub fn tail_amplification(&self) -> Result<f64> {
        let e = Ecdf::new(self.all.clone())?;
        let median = e.quantile(0.5)?;
        if median == 0.0 {
            return Err(CoreError::InvalidInput {
                reason: "median response time is zero".into(),
            });
        }
        Ok(e.quantile(0.99)? / median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_disk::profile::DriveProfile;
    use spindle_disk::sim::{DiskSim, SimConfig};
    use spindle_trace::{DriveId, Request};

    fn simulate() -> SimResult {
        // A bursty stream: clusters of 20 requests every second.
        let mut reqs = Vec::new();
        for burst in 0..20u64 {
            for i in 0..20u64 {
                let t = burst * 1_000_000_000 + i * 100_000;
                let op = if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                let lba = ((burst * 31 + i) * 1_048_576) % 100_000_000;
                reqs.push(Request::new(t, DriveId(0), op, lba, 16).unwrap());
            }
        }
        DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default())
            .run(&reqs)
            .unwrap()
    }

    #[test]
    fn rejects_empty_results() {
        let sim = simulate();
        let empty = SimResult {
            completed: vec![],
            ..sim
        };
        assert!(ResponseAnalysis::new(&empty).is_err());
    }

    #[test]
    fn classes_partition_the_requests() {
        let sim = simulate();
        let a = ResponseAnalysis::new(&sim).unwrap();
        let classes = a.classes().unwrap();
        let get = |label: &str| classes.iter().find(|c| c.label == label).unwrap();
        let all = get("all");
        assert_eq!(all.count, 400);
        assert_eq!(get("read").count + get("write").count, 400);
        assert_eq!(get("hit").count + get("miss").count, 400);
    }

    #[test]
    fn percentiles_are_monotone() {
        let sim = simulate();
        let a = ResponseAnalysis::new(&sim).unwrap();
        for class in a.classes().unwrap() {
            for w in class.percentiles.windows(2) {
                assert!(
                    w[1].1 >= w[0].1,
                    "{}: p{} {} < p{} {}",
                    class.label,
                    w[1].0,
                    w[1].1,
                    w[0].0,
                    w[0].1
                );
            }
            assert!(class.max_ms >= class.percentiles.last().unwrap().1);
            assert!(class.mean_ms > 0.0);
        }
    }

    #[test]
    fn cache_hits_are_faster_than_misses() {
        let sim = simulate();
        let a = ResponseAnalysis::new(&sim).unwrap();
        let classes = a.classes().unwrap();
        let hit = classes.iter().find(|c| c.label == "hit").unwrap();
        let miss = classes.iter().find(|c| c.label == "miss").unwrap();
        assert!(
            hit.mean_ms < miss.mean_ms,
            "hits {} ms !< misses {} ms",
            hit.mean_ms,
            miss.mean_ms
        );
    }

    #[test]
    fn queue_depth_reflects_bursts() {
        let sim = simulate();
        let qd = ResponseAnalysis::queue_depth(&sim).unwrap();
        // Bursts of 20 requests arriving within 2 ms against ~5 ms
        // service: the queue must reach well into the burst size.
        assert!(qd.max >= 10, "max depth {}", qd.max);
        assert!(qd.mean > 0.0);
        assert!(qd.mean < qd.max as f64);
    }

    #[test]
    fn queue_depth_of_sparse_stream_is_low() {
        // One request every 100 ms: never more than one outstanding.
        let reqs: Vec<Request> = (0..20)
            .map(|i| {
                Request::new(i * 100_000_000, DriveId(0), OpKind::Read, i * 1_000_000, 8).unwrap()
            })
            .collect();
        let sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default())
            .run(&reqs)
            .unwrap();
        let qd = ResponseAnalysis::queue_depth(&sim).unwrap();
        assert_eq!(qd.max, 1);
        assert!(qd.mean < 0.2, "mean depth {}", qd.mean);
    }

    #[test]
    fn bursts_amplify_the_tail() {
        let sim = simulate();
        let a = ResponseAnalysis::new(&sim).unwrap();
        // 20-deep bursts on a ~5 ms-per-IO device queue up: p99 must be
        // several times the median.
        let amp = a.tail_amplification().unwrap();
        assert!(amp > 2.0, "tail amplification {amp}");
        assert!(a.mean_queue_ms() > 0.0);
    }
}
