//! Idle-time background-work modeling.
//!
//! The practical payoff of the idleness analysis is deciding how much
//! background work (media scrubbing, rebuild, garbage collection,
//! power-down) fits into a drive's idle periods without touching
//! foreground requests. [`BackgroundTask`] models a non-preemptive-setup
//! task scheduled greedily into idle intervals:
//!
//! * the drive waits `idle_wait_secs` after going idle before starting
//!   background work (the standard firmware heuristic that protects
//!   short idle gaps),
//! * each activation then pays `setup_secs` once (spin-up/seek to the
//!   background working area),
//! * work proceeds until the interval ends; the remainder of the
//!   interval is productive time.
//!
//! [`BackgroundTask::schedule`] returns both the aggregate budget and
//! the per-interval utilization so policies can be compared (e.g. the
//! idle-wait sensitivity figure).

use crate::{CoreError, Result};
use spindle_disk::busy::BusyLog;

/// A background task's scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundTask {
    /// Idle time that must elapse before the task may start.
    pub idle_wait_secs: f64,
    /// One-time cost per activation (positioning, spin-up).
    pub setup_secs: f64,
    /// Productive rate while running, in units per second (e.g. bytes
    /// scrubbed per second).
    pub rate_per_sec: f64,
}

impl BackgroundTask {
    /// Creates a task model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for negative waits/setups or
    /// a non-positive rate.
    pub fn new(idle_wait_secs: f64, setup_secs: f64, rate_per_sec: f64) -> Result<Self> {
        if idle_wait_secs < 0.0 || setup_secs < 0.0 {
            return Err(CoreError::InvalidInput {
                reason: "idle wait and setup cost cannot be negative".into(),
            });
        }
        if !(rate_per_sec > 0.0) {
            return Err(CoreError::InvalidInput {
                reason: "background rate must be positive".into(),
            });
        }
        Ok(BackgroundTask {
            idle_wait_secs,
            setup_secs,
            rate_per_sec,
        })
    }

    /// Greedily schedules the task into every idle interval of `log`.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed busy log; kept fallible for
    /// interface uniformity.
    pub fn schedule(&self, log: &BusyLog) -> Result<BackgroundSchedule> {
        let idle = log.idle_durations_secs();
        let threshold = self.idle_wait_secs + self.setup_secs;
        let mut productive = 0.0;
        let mut activations = 0u64;
        let mut usable_intervals = 0u64;
        for &d in &idle {
            if d > threshold {
                productive += d - threshold;
                activations += 1;
                usable_intervals += 1;
            }
        }
        let span = log.span_ns() as f64 / 1e9;
        Ok(BackgroundSchedule {
            productive_secs: productive,
            activations,
            usable_intervals,
            total_intervals: idle.len() as u64,
            span_secs: span,
            work_done: productive * self.rate_per_sec,
            total_idle_secs: log.total_idle_ns() as f64 / 1e9,
        })
    }
}

/// Outcome of scheduling a background task into a busy log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundSchedule {
    /// Seconds of productive background time.
    pub productive_secs: f64,
    /// Number of task activations (one per usable interval).
    pub activations: u64,
    /// Idle intervals long enough to be used.
    pub usable_intervals: u64,
    /// Total idle intervals in the log.
    pub total_intervals: u64,
    /// Observation span in seconds.
    pub span_secs: f64,
    /// Work completed (`productive_secs × rate`).
    pub work_done: f64,
    /// Total idle time available, in seconds.
    pub total_idle_secs: f64,
}

impl BackgroundSchedule {
    /// Fraction of the idle time converted into productive background
    /// time (the rest is lost to waits, setups, and unusable short
    /// gaps).
    pub fn idle_efficiency(&self) -> f64 {
        if self.total_idle_secs == 0.0 {
            0.0
        } else {
            self.productive_secs / self.total_idle_secs
        }
    }

    /// Productive background seconds per wall-clock hour.
    pub fn productive_secs_per_hour(&self) -> f64 {
        self.productive_secs / self.span_secs * 3600.0
    }

    /// Work completed per wall-clock hour.
    pub fn work_per_hour(&self) -> f64 {
        self.work_done / self.span_secs * 3600.0
    }
}

/// Sweeps the idle-wait parameter and reports the efficiency at each
/// setting — the data behind the idle-wait sensitivity figure.
///
/// # Errors
///
/// Propagates [`BackgroundTask::new`] validation failures.
pub fn idle_wait_sweep(
    log: &BusyLog,
    waits_secs: &[f64],
    setup_secs: f64,
    rate_per_sec: f64,
) -> Result<Vec<(f64, BackgroundSchedule)>> {
    waits_secs
        .iter()
        .map(|&w| {
            let task = BackgroundTask::new(w, setup_secs, rate_per_sec)?;
            Ok((w, task.schedule(log)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_disk::busy::BusyLogBuilder;

    fn log(periods: &[(u64, u64)], span: u64) -> BusyLog {
        let mut b = BusyLogBuilder::new();
        for &(s, e) in periods {
            b.push(s, e).unwrap();
        }
        b.finish(span).unwrap()
    }

    #[test]
    fn validation() {
        assert!(BackgroundTask::new(-1.0, 0.0, 1.0).is_err());
        assert!(BackgroundTask::new(0.0, -1.0, 1.0).is_err());
        assert!(BackgroundTask::new(0.0, 0.0, 0.0).is_err());
        assert!(BackgroundTask::new(0.5, 0.1, 1e8).is_ok());
    }

    #[test]
    fn schedule_accounts_waits_and_setups() {
        // Idle: [0,10s), busy [10,11s), idle [11,16s): intervals 10s
        // and 5s.
        let l = log(&[(10_000_000_000, 11_000_000_000)], 16_000_000_000);
        let task = BackgroundTask::new(1.0, 1.0, 2.0).unwrap();
        let s = task.schedule(&l).unwrap();
        // Productive: (10-2) + (5-2) = 11 s; work = 22 units.
        assert_eq!(s.activations, 2);
        assert!((s.productive_secs - 11.0).abs() < 1e-9);
        assert!((s.work_done - 22.0).abs() < 1e-9);
        assert_eq!(s.total_intervals, 2);
        assert!((s.idle_efficiency() - 11.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn short_gaps_are_skipped() {
        // Many 0.5 s gaps with a 1 s threshold: nothing usable.
        let mut b = BusyLogBuilder::new();
        for i in 0..10u64 {
            b.push(i * 1_000_000_000, i * 1_000_000_000 + 500_000_000)
                .unwrap();
        }
        let l = b.finish(10_000_000_000).unwrap();
        let task = BackgroundTask::new(0.7, 0.3, 1.0).unwrap();
        let s = task.schedule(&l).unwrap();
        assert_eq!(s.usable_intervals, 0);
        assert_eq!(s.productive_secs, 0.0);
        assert_eq!(s.idle_efficiency(), 0.0);
    }

    #[test]
    fn zero_cost_task_uses_all_idle_time() {
        let l = log(&[(2_000_000_000, 3_000_000_000)], 10_000_000_000);
        let task = BackgroundTask::new(0.0, 0.0, 1.0).unwrap();
        let s = task.schedule(&l).unwrap();
        assert!((s.idle_efficiency() - 1.0).abs() < 1e-9);
        assert!((s.productive_secs - 9.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_monotone_in_wait() {
        let l = log(
            &[
                (1_000_000_000, 2_000_000_000),
                (30_000_000_000, 31_000_000_000),
            ],
            60_000_000_000,
        );
        let sweep = idle_wait_sweep(&l, &[0.0, 0.5, 2.0, 10.0, 100.0], 0.2, 1.0).unwrap();
        for w in sweep.windows(2) {
            assert!(
                w[1].1.productive_secs <= w[0].1.productive_secs + 1e-12,
                "efficiency must not grow with the idle wait"
            );
        }
        // An absurd wait uses nothing.
        assert_eq!(sweep.last().unwrap().1.usable_intervals, 0);
    }

    #[test]
    fn rates_scale_work_linearly() {
        let l = log(&[(5_000_000_000, 6_000_000_000)], 20_000_000_000);
        let slow = BackgroundTask::new(0.5, 0.5, 10.0)
            .unwrap()
            .schedule(&l)
            .unwrap();
        let fast = BackgroundTask::new(0.5, 0.5, 20.0)
            .unwrap()
            .schedule(&l)
            .unwrap();
        assert!((fast.work_done - 2.0 * slow.work_done).abs() < 1e-9);
        assert_eq!(fast.productive_secs, slow.productive_secs);
        assert!(fast.work_per_hour() > 0.0);
        assert!(fast.productive_secs_per_hour() > 0.0);
    }
}
