//! Hour-scale (Hour trace) analysis.
//!
//! Weeks of per-hour counters expose structure invisible at the request
//! level: daily and weekly cycles, hour-scale bursts, and slow drift in
//! the read/write mix. [`HourAnalysis`] extracts the diurnal profile,
//! peak-to-mean and dispersion statistics, periodicity evidence, and the
//! write-fraction dynamics of one drive's hour series.

use crate::{CoreError, Result};
use spindle_stats::acf::acf;
use spindle_stats::dispersion::{index_of_dispersion, peak_to_mean};
use spindle_stats::ecdf::Ecdf;
use spindle_stats::moments::StreamingMoments;
use spindle_trace::HourSeries;

/// Summary row of hour-scale statistics for one drive.
#[derive(Debug, Clone, PartialEq)]
pub struct HourSummary {
    /// Hours covered.
    pub hours: usize,
    /// Mean operations per hour.
    pub mean_ops: f64,
    /// Coefficient of variation of hourly operations.
    pub cov_ops: f64,
    /// Peak-to-mean ratio of hourly operations.
    pub peak_to_mean: f64,
    /// Index of dispersion of hourly operations.
    pub idc: f64,
    /// Mean utilization over the series.
    pub mean_utilization: f64,
    /// Fraction of total operations concentrated in the busiest 10% of
    /// hours.
    pub top_decile_share: f64,
    /// Fraction of hours with zero operations.
    pub idle_hour_fraction: f64,
    /// Lag-24 autocorrelation of hourly operations — evidence of the
    /// daily cycle.
    pub acf_24h: f64,
}

/// Hour-scale analysis of one drive's series.
#[derive(Debug)]
pub struct HourAnalysis<'a> {
    series: &'a HourSeries,
    ops: Vec<f64>,
}

impl<'a> HourAnalysis<'a> {
    /// Creates the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for series shorter than 48
    /// hours (two days — the minimum to talk about a daily cycle).
    pub fn new(series: &'a HourSeries) -> Result<Self> {
        if series.len() < 48 {
            return Err(CoreError::InvalidInput {
                reason: format!("need at least 48 hours, got {}", series.len()),
            });
        }
        Ok(HourAnalysis {
            ops: series.operations_series(),
            series,
        })
    }

    /// Computes the summary row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if the series is degenerate (no
    /// operations at all).
    pub fn summary(&self) -> Result<HourSummary> {
        let m = StreamingMoments::from_slice(&self.ops);
        let cov = m
            .coefficient_of_variation()
            .ok_or(spindle_stats::StatsError::DegenerateSeries)?;
        let total: f64 = self.ops.iter().sum();
        let mut sorted = self.ops.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("counts are finite"));
        let top_n = (sorted.len() / 10).max(1);
        let top_share = sorted.iter().take(top_n).sum::<f64>() / total;
        let idle_hours = self.ops.iter().filter(|&&o| o == 0.0).count();
        let r = acf(&self.ops, 24.min(self.ops.len() - 1))?;

        Ok(HourSummary {
            hours: self.ops.len(),
            mean_ops: m.mean(),
            cov_ops: cov,
            peak_to_mean: peak_to_mean(&self.ops)?,
            idc: index_of_dispersion(&self.ops)?,
            mean_utilization: self.series.mean_utilization(),
            top_decile_share: top_share,
            idle_hour_fraction: idle_hours as f64 / self.ops.len() as f64,
            acf_24h: *r.last().expect("acf includes requested lag"),
        })
    }

    /// Mean operations by hour of day (0–23) — the diurnal profile
    /// figure.
    pub fn diurnal_profile(&self) -> [f64; 24] {
        let mut sums = [0.0f64; 24];
        let mut counts = [0u32; 24];
        let start = self.series.records()[0].hour;
        for (i, &ops) in self.ops.iter().enumerate() {
            let hod = (start as usize + i) % 24;
            sums[hod] += ops;
            counts[hod] += 1;
        }
        let mut out = [0.0f64; 24];
        for h in 0..24 {
            if counts[h] > 0 {
                out[h] = sums[h] / counts[h] as f64;
            }
        }
        out
    }

    /// Mean operations by hour of week (0 = Monday 00:00, 167 = Sunday
    /// 23:00) — the weekly profile figure. Hours of the week never
    /// observed carry 0.
    pub fn weekly_profile(&self) -> [f64; 168] {
        let mut sums = [0.0f64; 168];
        let mut counts = [0u32; 168];
        let start = self.series.records()[0].hour;
        for (i, &ops) in self.ops.iter().enumerate() {
            let how = (start as usize + i) % 168;
            sums[how] += ops;
            counts[how] += 1;
        }
        let mut out = [0.0f64; 168];
        for h in 0..168 {
            if counts[h] > 0 {
                out[h] = sums[h] / counts[h] as f64;
            }
        }
        out
    }

    /// Ratio of mean weekday activity to mean weekend activity — the
    /// weekly-cycle scalar.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the series covers no
    /// weekend hours or the weekend is fully idle.
    pub fn weekday_weekend_ratio(&self) -> Result<f64> {
        let profile = self.weekly_profile();
        let weekday: f64 = profile[..120].iter().sum::<f64>() / 120.0;
        let weekend: f64 = profile[120..].iter().sum::<f64>() / 48.0;
        if weekend == 0.0 {
            return Err(CoreError::InvalidInput {
                reason: "no weekend activity observed".into(),
            });
        }
        Ok(weekday / weekend)
    }

    /// Per-hour write-fraction series; idle hours carry `None`.
    pub fn write_fraction_series(&self) -> Vec<Option<f64>> {
        self.series.write_fraction_series()
    }

    /// ECDF of per-hour write fractions over active hours — the
    /// read/write-dynamics distribution figure.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if every hour is idle.
    pub fn write_fraction_cdf(&self) -> Result<Ecdf> {
        let sample: Vec<f64> = self
            .series
            .write_fraction_series()
            .into_iter()
            .flatten()
            .collect();
        Ok(Ecdf::new(sample)?)
    }

    /// Range (max − min) of the daily mean write fraction across days —
    /// a scalar for how much the mix drifts day to day.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if no day has active hours.
    pub fn daily_write_fraction_swing(&self) -> Result<f64> {
        let mut daily: Vec<f64> = Vec::new();
        for day in self.series.records().chunks(24) {
            let mut writes = 0u64;
            let mut total = 0u64;
            for r in day {
                writes += r.writes;
                total += r.operations();
            }
            if total > 0 {
                daily.push(writes as f64 / total as f64);
            }
        }
        if daily.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "no active day in the series".into(),
            });
        }
        let min = daily.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = daily.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(max - min)
    }

    /// The hourly operations series (for burstiness analysis at the hour
    /// scale).
    pub fn operations(&self) -> &[f64] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_synth::hourgen::HourSeriesSpec;
    use spindle_trace::{DriveId, HourRecord};

    fn series() -> HourSeries {
        HourSeriesSpec::default().generate(1).unwrap()
    }

    #[test]
    fn rejects_short_series() {
        let recs: Vec<HourRecord> = (0..47)
            .map(|h| HourRecord::new(DriveId(0), h, 10, 10, 80, 80, 1.0).unwrap())
            .collect();
        let s = HourSeries::new(recs).unwrap();
        assert!(HourAnalysis::new(&s).is_err());
    }

    #[test]
    fn summary_reflects_generated_structure() {
        let s = series();
        let a = HourAnalysis::new(&s).unwrap();
        let sum = a.summary().unwrap();
        assert_eq!(sum.hours, s.len());
        assert!(sum.mean_ops > 1000.0);
        assert!(sum.peak_to_mean > 1.5, "peak/mean {}", sum.peak_to_mean);
        assert!(sum.idc > 10.0, "IDC {}", sum.idc);
        assert!(sum.mean_utilization > 0.0 && sum.mean_utilization < 1.0);
        assert!(sum.acf_24h > 0.1, "24h ACF {}", sum.acf_24h);
        assert!(sum.top_decile_share > 0.1 && sum.top_decile_share <= 1.0);
    }

    #[test]
    fn diurnal_profile_peaks_in_the_afternoon() {
        let s = series();
        let a = HourAnalysis::new(&s).unwrap();
        let profile = a.diurnal_profile();
        // Generator peaks at 14:00 and troughs at 02:00.
        assert!(
            profile[14] > profile[2] * 1.5,
            "profile peak {} vs trough {}",
            profile[14],
            profile[2]
        );
    }

    #[test]
    fn weekly_profile_shows_the_weekend_dip() {
        let s = series(); // generator scales weekends by 0.4
        let a = HourAnalysis::new(&s).unwrap();
        let ratio = a.weekday_weekend_ratio().unwrap();
        assert!(
            (1.8..3.5).contains(&ratio),
            "weekday/weekend ratio {ratio} (generator target 1/0.4 = 2.5)"
        );
        let profile = a.weekly_profile();
        assert_eq!(profile.len(), 168);
        assert!(profile.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn weekend_ratio_errors_without_weekend_data() {
        // 48 hours starting Monday: no weekend hours observed.
        let recs: Vec<HourRecord> = (0..48)
            .map(|h| HourRecord::new(DriveId(0), h, 10 + h as u64, 10, 160, 80, 1.0).unwrap())
            .collect();
        let s = HourSeries::new(recs).unwrap();
        let a = HourAnalysis::new(&s).unwrap();
        assert!(a.weekday_weekend_ratio().is_err());
    }

    #[test]
    fn write_fraction_cdf_centers_on_generator_mix() {
        let s = series();
        let a = HourAnalysis::new(&s).unwrap();
        let cdf = a.write_fraction_cdf().unwrap();
        let median = cdf.quantile(0.5).unwrap();
        assert!(
            (median - 0.55).abs() < 0.05,
            "median write fraction {median}"
        );
    }

    #[test]
    fn daily_swing_is_bounded() {
        let s = series();
        let a = HourAnalysis::new(&s).unwrap();
        let swing = a.daily_write_fraction_swing().unwrap();
        assert!((0.0..=1.0).contains(&swing));
    }

    #[test]
    fn constant_series_is_degenerate_for_summary() {
        let recs: Vec<HourRecord> = (0..72)
            .map(|h| HourRecord::new(DriveId(0), h, 50, 50, 400, 400, 10.0).unwrap())
            .collect();
        let s = HourSeries::new(recs).unwrap();
        let a = HourAnalysis::new(&s).unwrap();
        assert!(a.summary().is_err());
    }

    #[test]
    fn all_idle_series_errors_on_write_cdf() {
        let recs: Vec<HourRecord> = (0..72)
            .map(|h| HourRecord::new(DriveId(0), h, 0, 0, 0, 0, 0.0).unwrap())
            .collect();
        let s = HourSeries::new(recs).unwrap();
        let a = HourAnalysis::new(&s).unwrap();
        assert!(a.write_fraction_cdf().is_err());
        assert!(a.daily_write_fraction_swing().is_err());
    }
}
