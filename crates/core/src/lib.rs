//! Multi-time-scale disk workload characterization.
//!
//! This crate is the reproduction of the paper's primary contribution:
//! a framework that characterizes disk-level workloads at three
//! granularities — per-request (**millisecond**), per-hour (**hour**),
//! and cumulative (**lifetime**) — and shows that the same traffic looks
//! different, yet consistently bursty, at every scale.
//!
//! * [`millisecond`] — per-request analysis: workload summary tables,
//!   utilization-over-time series, response/interarrival statistics.
//! * [`idle`] — busy/idle structure: idle-interval distributions,
//!   idleness availability for background work, busy-period tails.
//! * [`burstiness`] — multi-scale burstiness: autocorrelation,
//!   index-of-dispersion curves, and Hurst estimation on arrival counts.
//! * [`hour`] — hour-scale analysis: diurnal/weekly structure,
//!   peak-to-mean ratios, read/write dynamics over days and weeks.
//! * [`lifetime`] — drive-family analysis: cross-drive utilization
//!   distributions, percentile tables, and saturation-run statistics.
//! * [`multiscale`] — read/write decomposition measured consistently at
//!   all three scales.
//! * [`response`] — host-visible response-time percentiles by class
//!   (read/write, hit/miss) and tail amplification.
//! * [`spatial`] — sequential-run-length and seek-distance analysis.
//! * [`background`] — idle-time background-work scheduling: how much
//!   scrubbing/rebuild work fits into the measured idle structure.
//! * [`report`] — plain-text tables and figure data used by the
//!   experiment harness to regenerate the paper's artifacts.
//!
//! # Example
//!
//! ```
//! use spindle_core::idle::IdleAnalysis;
//! use spindle_disk::busy::BusyLogBuilder;
//!
//! // A toy busy timeline: two bursts over a 10-second window.
//! let mut b = BusyLogBuilder::new();
//! b.push(1_000_000_000, 2_000_000_000).unwrap();
//! b.push(5_000_000_000, 5_500_000_000).unwrap();
//! let log = b.finish(10_000_000_000).unwrap();
//!
//! let idle = IdleAnalysis::new(&log)?;
//! assert!(idle.idle_fraction() > 0.8);
//! // All idle time sits in intervals of at least one second.
//! assert_eq!(idle.availability(&[1.0])[0].fraction_of_idle_time, 1.0);
//! # Ok::<(), spindle_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod background;
pub mod burstiness;
pub mod hour;
pub mod idle;
pub mod lifetime;
pub mod millisecond;
pub mod multiscale;
pub mod report;
pub mod response;
pub mod spatial;

mod error;

pub use error::CoreError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
