//! Drive-family (Lifetime trace) analysis.
//!
//! The lifetime counters are available for every drive of a family, so
//! this is where cross-drive variability becomes measurable: the spread
//! of lifetime utilization across nominally identical drives, and the
//! sub-population that runs flat out for hours at a time.

use crate::{CoreError, Result};
use spindle_stats::ecdf::Ecdf;
use spindle_trace::{HourSeries, LifetimeRecord};

/// Family-level percentile table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyPercentiles {
    /// Quantile level in `[0, 1]`.
    pub level: f64,
    /// Lifetime mean utilization at this quantile.
    pub utilization: f64,
    /// Megabytes moved per power-on hour at this quantile.
    pub mb_per_hour: f64,
    /// Operations per power-on hour at this quantile.
    pub ops_per_hour: f64,
}

/// Quantile levels reported in the family percentile table.
pub const FAMILY_LEVELS: [f64; 7] = [0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99];

/// Analysis over the lifetime records of a drive family.
#[derive(Debug)]
pub struct FamilyAnalysis<'a> {
    records: &'a [LifetimeRecord],
}

impl<'a> FamilyAnalysis<'a> {
    /// Creates the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for fewer than 10 drives —
    /// family statistics over a handful of drives are noise.
    pub fn new(records: &'a [LifetimeRecord]) -> Result<Self> {
        if records.len() < 10 {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "family analysis needs at least 10 drives, got {}",
                    records.len()
                ),
            });
        }
        Ok(FamilyAnalysis { records })
    }

    /// Number of drives.
    pub fn drives(&self) -> usize {
        self.records.len()
    }

    /// ECDF across the family of lifetime mean utilization — the
    /// cross-drive variability figure.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if construction fails (cannot happen
    /// for validated records).
    pub fn utilization_cdf(&self) -> Result<Ecdf> {
        Ok(Ecdf::new(
            self.records
                .iter()
                .map(LifetimeRecord::mean_utilization)
                .collect(),
        )?)
    }

    /// ECDF across the family of MB moved per power-on hour.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if construction fails.
    pub fn mb_per_hour_cdf(&self) -> Result<Ecdf> {
        Ok(Ecdf::new(
            self.records
                .iter()
                .map(LifetimeRecord::mb_per_hour)
                .collect(),
        )?)
    }

    /// The family percentile table at [`FAMILY_LEVELS`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if any quantile is unavailable.
    pub fn percentiles(&self) -> Result<Vec<FamilyPercentiles>> {
        let util = self.utilization_cdf()?;
        let mb = self.mb_per_hour_cdf()?;
        let ops = Ecdf::new(
            self.records
                .iter()
                .map(LifetimeRecord::ops_per_hour)
                .collect(),
        )?;
        FAMILY_LEVELS
            .iter()
            .map(|&level| {
                Ok(FamilyPercentiles {
                    level,
                    utilization: util.quantile(level)?,
                    mb_per_hour: mb.quantile(level)?,
                    ops_per_hour: ops.quantile(level)?,
                })
            })
            .collect()
    }

    /// Ratio of the 95th-percentile to the median utilization — the
    /// scalar "variability across drives of the same family" indicator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the median utilization is
    /// zero.
    pub fn tail_to_median_ratio(&self) -> Result<f64> {
        let cdf = self.utilization_cdf()?;
        let median = cdf.quantile(0.5)?;
        if median == 0.0 {
            return Err(CoreError::InvalidInput {
                reason: "median family utilization is zero".into(),
            });
        }
        Ok(cdf.quantile(0.95)? / median)
    }

    /// Gini coefficient of lifetime operations across the family:
    /// 0 = every drive did the same work, → 1 = one drive did it all.
    /// The standard inequality scalar for "variability across drives of
    /// the same family".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the family serviced no
    /// operations at all.
    pub fn gini_operations(&self) -> Result<f64> {
        let mut ops: Vec<f64> = self.records.iter().map(|r| r.operations() as f64).collect();
        ops.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
        let n = ops.len() as f64;
        let total: f64 = ops.iter().sum();
        if total == 0.0 {
            return Err(CoreError::InvalidInput {
                reason: "family serviced no operations".into(),
            });
        }
        // G = (2·Σ i·x_(i) / (n·Σ x)) − (n + 1)/n, with 1-based ranks.
        let weighted: f64 = ops
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x)
            .sum();
        Ok((2.0 * weighted / (n * total) - (n + 1.0) / n).clamp(0.0, 1.0))
    }

    /// Mean write fraction across drives that serviced any commands.
    pub fn mean_write_fraction(&self) -> Option<f64> {
        let fracs: Vec<f64> = self
            .records
            .iter()
            .filter_map(LifetimeRecord::write_fraction)
            .collect();
        if fracs.is_empty() {
            None
        } else {
            Some(fracs.iter().sum::<f64>() / fracs.len() as f64)
        }
    }
}

/// One point of the saturation-run curve: the fraction of drives whose
/// longest run of consecutive hours at ≥ `threshold` utilization reaches
/// `run_hours`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationPoint {
    /// Minimum run length in hours.
    pub run_hours: usize,
    /// Fraction of the family reaching it.
    pub fraction_of_drives: f64,
}

/// Computes the saturation-run curve over the family's hour series for
/// run lengths `1..=max_run_hours` at the given utilization threshold.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] for an empty family or a
/// threshold outside `(0, 1]`.
pub fn saturation_curve(
    series: &[HourSeries],
    threshold: f64,
    max_run_hours: usize,
) -> Result<Vec<SaturationPoint>> {
    if series.is_empty() {
        return Err(CoreError::InvalidInput {
            reason: "no hour series supplied".into(),
        });
    }
    if !(threshold > 0.0 && threshold <= 1.0) {
        return Err(CoreError::InvalidInput {
            reason: "saturation threshold must lie in (0, 1]".into(),
        });
    }
    let runs: Vec<usize> = series
        .iter()
        .map(|s| s.longest_saturated_run(threshold))
        .collect();
    Ok((1..=max_run_hours)
        .map(|k| SaturationPoint {
            run_hours: k,
            fraction_of_drives: runs.iter().filter(|&&r| r >= k).count() as f64 / runs.len() as f64,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_synth::family::FamilySpec;
    use spindle_synth::hourgen::{HourSeriesSpec, WEEK_HOURS};
    use spindle_trace::DriveId;

    fn family() -> Vec<spindle_synth::family::DriveRecord> {
        FamilySpec {
            drives: 120,
            template: HourSeriesSpec {
                hours: 2 * WEEK_HOURS,
                ..Default::default()
            },
            saturator_fraction: 0.1,
            ..Default::default()
        }
        .generate(42)
        .unwrap()
    }

    #[test]
    fn rejects_tiny_families() {
        let recs: Vec<LifetimeRecord> = (0..5)
            .map(|i| LifetimeRecord::new(DriveId(i), 100, 10, 10, 80, 80, 1.0).unwrap())
            .collect();
        assert!(FamilyAnalysis::new(&recs).is_err());
    }

    #[test]
    fn utilization_cdf_spans_the_family() {
        let fam = family();
        let lifetimes: Vec<LifetimeRecord> = fam.iter().map(|d| d.lifetime).collect();
        let a = FamilyAnalysis::new(&lifetimes).unwrap();
        assert_eq!(a.drives(), 120);
        let cdf = a.utilization_cdf().unwrap();
        assert!(cdf.min() >= 0.0);
        assert!(cdf.max() <= 1.0);
        // Heavy upper tail: p95 well above the median.
        let ratio = a.tail_to_median_ratio().unwrap();
        assert!(ratio > 2.0, "tail/median ratio {ratio}");
    }

    #[test]
    fn percentile_table_is_monotone() {
        let fam = family();
        let lifetimes: Vec<LifetimeRecord> = fam.iter().map(|d| d.lifetime).collect();
        let a = FamilyAnalysis::new(&lifetimes).unwrap();
        let rows = a.percentiles().unwrap();
        assert_eq!(rows.len(), FAMILY_LEVELS.len());
        for w in rows.windows(2) {
            assert!(w[1].utilization >= w[0].utilization);
            assert!(w[1].mb_per_hour >= w[0].mb_per_hour);
            assert!(w[1].ops_per_hour >= w[0].ops_per_hour);
        }
    }

    #[test]
    fn saturation_curve_is_monotone_and_detects_saturators() {
        let fam = family();
        let series: Vec<HourSeries> = fam.iter().map(|d| d.series.clone()).collect();
        let curve = saturation_curve(&series, 0.99, 24).unwrap();
        assert_eq!(curve.len(), 24);
        for w in curve.windows(2) {
            assert!(w[1].fraction_of_drives <= w[0].fraction_of_drives + 1e-12);
        }
        // A visible portion of the family saturates for at least 2
        // consecutive hours (the saturator sub-population).
        let at_2h = curve[1].fraction_of_drives;
        assert!(at_2h > 0.03, "fraction with >= 2h runs: {at_2h}");
        // But only a minority — most drives are moderate.
        assert!(at_2h < 0.5, "fraction with >= 2h runs: {at_2h}");
    }

    #[test]
    fn saturation_curve_validates_inputs() {
        assert!(saturation_curve(&[], 0.9, 10).is_err());
        let fam = family();
        let series: Vec<HourSeries> = fam.iter().take(3).map(|d| d.series.clone()).collect();
        assert!(saturation_curve(&series, 0.0, 10).is_err());
        assert!(saturation_curve(&series, 1.5, 10).is_err());
    }

    #[test]
    fn gini_of_equal_family_is_zero_and_skew_raises_it() {
        // Perfectly equal family.
        let equal: Vec<LifetimeRecord> = (0..20)
            .map(|i| LifetimeRecord::new(DriveId(i), 100, 500, 500, 4_000, 4_000, 10.0).unwrap())
            .collect();
        let a = FamilyAnalysis::new(&equal).unwrap();
        assert!(a.gini_operations().unwrap() < 1e-9);

        // One drive does 100× the work of the rest.
        let mut skewed = equal.clone();
        skewed[0] =
            LifetimeRecord::new(DriveId(0), 100, 50_000, 50_000, 400_000, 400_000, 99.0).unwrap();
        let b = FamilyAnalysis::new(&skewed).unwrap();
        assert!(b.gini_operations().unwrap() > 0.5);
    }

    #[test]
    fn generated_family_has_substantial_inequality() {
        let fam = family();
        let lifetimes: Vec<LifetimeRecord> = fam.iter().map(|d| d.lifetime).collect();
        let a = FamilyAnalysis::new(&lifetimes).unwrap();
        let g = a.gini_operations().unwrap();
        // Log-normal load scales with sigma = 1 give a Gini well above
        // an egalitarian fleet but below total concentration.
        assert!((0.3..0.9).contains(&g), "Gini {g}");
    }

    #[test]
    fn mean_write_fraction_matches_generator() {
        let fam = family();
        let lifetimes: Vec<LifetimeRecord> = fam.iter().map(|d| d.lifetime).collect();
        let a = FamilyAnalysis::new(&lifetimes).unwrap();
        let wf = a.mean_write_fraction().unwrap();
        // Template write fraction 0.55; saturation episodes push writes
        // up slightly on some drives.
        assert!((0.5..0.7).contains(&wf), "mean write fraction {wf}");
    }
}
