//! Per-request (Millisecond trace) analysis.
//!
//! [`MillisecondAnalysis`] combines the host-visible request stream with
//! the simulated service process and produces the per-environment
//! workload summary of the paper's millisecond-scale tables: arrival
//! intensity and variability, request-size and direction mix,
//! sequentiality, utilization, and response times.

use crate::{CoreError, Result};
use spindle_disk::sim::SimResult;
use spindle_stats::dispersion::interarrival_scv;
use spindle_stats::moments::StreamingMoments;
use spindle_trace::{OpKind, Request};

/// Summary statistics of one drive's millisecond-scale workload —
/// one row of the workload-summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Number of requests.
    pub requests: u64,
    /// Observation span in seconds.
    pub span_secs: f64,
    /// Mean arrival rate in requests per second.
    pub arrival_rate: f64,
    /// Squared coefficient of variation of interarrival times (1 ≈
    /// Poisson; larger = burstier).
    pub interarrival_scv: f64,
    /// Mean request size in KiB.
    pub mean_request_kb: f64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Fraction of requests that start exactly where the previous
    /// request on the drive ended.
    pub sequential_fraction: f64,
    /// Mean drive utilization over the span.
    pub mean_utilization: f64,
    /// Mean host-visible response time in milliseconds.
    pub mean_response_ms: f64,
    /// Read cache hit ratio, if any reads were issued.
    pub read_hit_ratio: Option<f64>,
}

/// Millisecond-trace analysis of one drive.
#[derive(Debug)]
pub struct MillisecondAnalysis<'a> {
    requests: &'a [Request],
    sim: &'a SimResult,
}

impl<'a> MillisecondAnalysis<'a> {
    /// Creates the analysis over a request stream and the simulation
    /// result obtained by running that stream through the disk model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the stream is empty or its
    /// length disagrees with the simulation's completion count.
    pub fn new(requests: &'a [Request], sim: &'a SimResult) -> Result<Self> {
        if requests.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "request stream is empty".into(),
            });
        }
        if requests.len() != sim.completed.len() {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "{} requests but {} completions — stream and simulation disagree",
                    requests.len(),
                    sim.completed.len()
                ),
            });
        }
        Ok(MillisecondAnalysis { requests, sim })
    }

    /// Computes the summary row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if the stream has fewer than two
    /// requests (interarrival statistics undefined).
    pub fn summary(&self) -> Result<WorkloadSummary> {
        let _span = spindle_obs::ObsSpan::new(spindle_obs::global(), "core.millisecond.summary");
        let n = self.requests.len() as u64;
        let span_secs = self.sim.busy.span_ns() as f64 / 1e9;
        let interarrivals: Vec<f64> = self
            .requests
            .windows(2)
            .map(|w| (w[1].arrival_ns - w[0].arrival_ns) as f64 / 1e9)
            .collect();
        let scv = interarrival_scv(&interarrivals)?;

        let mut sizes = StreamingMoments::new();
        let mut writes = 0u64;
        let mut sequential = 0u64;
        for (i, r) in self.requests.iter().enumerate() {
            sizes.push(r.bytes() as f64 / 1024.0);
            if r.op == OpKind::Write {
                writes += 1;
            }
            if i > 0 && r.is_sequential_after(&self.requests[i - 1]) {
                sequential += 1;
            }
        }

        Ok(WorkloadSummary {
            requests: n,
            span_secs,
            arrival_rate: n as f64 / span_secs,
            interarrival_scv: scv,
            mean_request_kb: sizes.mean(),
            write_fraction: writes as f64 / n as f64,
            sequential_fraction: sequential as f64 / (n - 1).max(1) as f64,
            mean_utilization: self.sim.utilization(),
            mean_response_ms: self.sim.mean_response_ms(),
            read_hit_ratio: self.sim.read_hit_ratio(),
        })
    }

    /// Drive utilization per window of `window_secs`, the series behind
    /// the utilization-over-time figure.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `window_secs` is not
    /// positive.
    pub fn utilization_series(&self, window_secs: f64) -> Result<Vec<f64>> {
        if !(window_secs > 0.0) {
            return Err(CoreError::InvalidInput {
                reason: "window must be positive".into(),
            });
        }
        self.sim
            .busy
            .utilization_series((window_secs * 1e9) as u64)
            .map_err(|e| CoreError::InvalidInput {
                reason: e.to_string(),
            })
    }

    /// Arrival timestamps in seconds (the input to burstiness analysis).
    pub fn arrival_times_secs(&self) -> Vec<f64> {
        self.requests.iter().map(Request::arrival_secs).collect()
    }

    /// Response-time moments in milliseconds.
    pub fn response_moments(&self) -> StreamingMoments {
        self.sim
            .completed
            .iter()
            .map(|c| c.response_ns() as f64 / 1e6)
            .collect()
    }

    /// Splits arrival timestamps by direction — the input to per-class
    /// burstiness comparisons.
    pub fn arrivals_by_op(&self) -> (Vec<f64>, Vec<f64>) {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for r in self.requests {
            match r.op {
                OpKind::Read => reads.push(r.arrival_secs()),
                OpKind::Write => writes.push(r.arrival_secs()),
            }
        }
        (reads, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_disk::profile::DriveProfile;
    use spindle_disk::sim::{DiskSim, SimConfig};
    use spindle_trace::DriveId;

    fn run(requests: &[Request]) -> SimResult {
        DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default())
            .run(requests)
            .unwrap()
    }

    fn mixed_stream() -> Vec<Request> {
        (0..400)
            .map(|i| {
                let op = if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                // 25 req/s with some sequential pairs.
                let lba = if i % 4 == 1 {
                    // continues the previous request
                    ((i - 1) as u64 * 131_071 * 8) % 100_000_000 + 16
                } else {
                    (i as u64 * 131_071 * 8) % 100_000_000
                };
                Request::new(i as u64 * 40_000_000, DriveId(0), op, lba, 16).unwrap()
            })
            .collect()
    }

    #[test]
    fn rejects_empty_or_mismatched_inputs() {
        let reqs = mixed_stream();
        let sim = run(&reqs);
        assert!(MillisecondAnalysis::new(&[], &sim).is_err());
        assert!(MillisecondAnalysis::new(&reqs[..10], &sim).is_err());
        assert!(MillisecondAnalysis::new(&reqs, &sim).is_ok());
    }

    #[test]
    fn summary_fields_are_consistent() {
        let reqs = mixed_stream();
        let sim = run(&reqs);
        let a = MillisecondAnalysis::new(&reqs, &sim).unwrap();
        let s = a.summary().unwrap();
        assert_eq!(s.requests, 400);
        assert!(
            (s.arrival_rate - 25.0).abs() < 2.0,
            "rate {}",
            s.arrival_rate
        );
        assert!((s.write_fraction - 1.0 / 3.0).abs() < 0.01);
        assert!((s.mean_request_kb - 8.0).abs() < 1e-9);
        assert!(s.mean_utilization > 0.0 && s.mean_utilization < 0.5);
        assert!(s.mean_response_ms > 0.0);
        // Exactly periodic arrivals: SCV ~ 0.
        assert!(s.interarrival_scv < 0.01);
        // Every 4th request is sequential after its predecessor.
        assert!((s.sequential_fraction - 0.25).abs() < 0.02);
        assert!(s.read_hit_ratio.is_some());
    }

    #[test]
    fn utilization_series_covers_span() {
        let reqs = mixed_stream();
        let sim = run(&reqs);
        let a = MillisecondAnalysis::new(&reqs, &sim).unwrap();
        let series = a.utilization_series(1.0).unwrap();
        let span_secs = sim.busy.span_ns() as f64 / 1e9;
        assert_eq!(series.len(), span_secs.ceil() as usize);
        assert!(series.iter().all(|&u| (0.0..=1.0).contains(&u)));
        assert!(a.utilization_series(0.0).is_err());
    }

    #[test]
    fn arrivals_split_by_direction() {
        let reqs = mixed_stream();
        let sim = run(&reqs);
        let a = MillisecondAnalysis::new(&reqs, &sim).unwrap();
        let (reads, writes) = a.arrivals_by_op();
        assert_eq!(reads.len() + writes.len(), 400);
        assert!((writes.len() as f64 - 400.0 / 3.0).abs() < 2.0);
        let all = a.arrival_times_secs();
        assert_eq!(all.len(), 400);
        assert!(all.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn response_moments_are_positive() {
        let reqs = mixed_stream();
        let sim = run(&reqs);
        let a = MillisecondAnalysis::new(&reqs, &sim).unwrap();
        let m = a.response_moments();
        assert_eq!(m.count(), 400);
        assert!(m.mean() > 0.0);
        assert!(
            m.max().unwrap() < 1000.0,
            "response {} ms",
            m.max().unwrap()
        );
    }
}
