//! Busy/idle structure analysis.
//!
//! The paper's central observations about idleness are that (a) drives
//! spend most of their time idle, (b) the idle time is concentrated in
//! *long* intervals rather than fragmented, and (c) this makes substantial
//! background work (scrubbing, destaging, power management) feasible.
//! [`IdleAnalysis`] extracts the distributions behind those claims from a
//! [`BusyLog`], and [`AvailabilityRow`] quantifies (c) directly.

use crate::{CoreError, Result};
use spindle_disk::busy::BusyLog;
use spindle_stats::ecdf::Ecdf;
use spindle_stats::fit::{fit_best, FitResult};

/// Idle/busy distribution analysis over one drive's busy timeline.
#[derive(Debug, Clone)]
pub struct IdleAnalysis {
    idle_secs: Vec<f64>,
    busy_secs: Vec<f64>,
    total_idle_secs: f64,
    span_secs: f64,
}

impl IdleAnalysis {
    /// Builds the analysis from a busy timeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the log contains neither
    /// idle nor busy periods (cannot happen for a well-formed log with a
    /// positive span).
    pub fn new(log: &BusyLog) -> Result<Self> {
        let idle_secs = log.idle_durations_secs();
        let busy_secs = log.busy_durations_secs();
        if idle_secs.is_empty() && busy_secs.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "busy log has neither busy nor idle periods".into(),
            });
        }
        Ok(IdleAnalysis {
            total_idle_secs: idle_secs.iter().sum(),
            idle_secs,
            busy_secs,
            span_secs: log.span_ns() as f64 / 1e9,
        })
    }

    /// Idle interval durations in seconds.
    pub fn idle_durations(&self) -> &[f64] {
        &self.idle_secs
    }

    /// Busy period durations in seconds.
    pub fn busy_durations(&self) -> &[f64] {
        &self.busy_secs
    }

    /// Fraction of the observation window spent idle.
    pub fn idle_fraction(&self) -> f64 {
        self.total_idle_secs / self.span_secs
    }

    /// Number of idle intervals.
    pub fn idle_intervals(&self) -> usize {
        self.idle_secs.len()
    }

    /// Mean idle interval length in seconds, or `None` with no idle
    /// intervals.
    pub fn mean_idle_secs(&self) -> Option<f64> {
        if self.idle_secs.is_empty() {
            None
        } else {
            Some(self.total_idle_secs / self.idle_secs.len() as f64)
        }
    }

    /// ECDF of idle interval durations — the data behind the paper's
    /// idle-interval CDF figure.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if there are no idle intervals.
    pub fn idle_cdf(&self) -> Result<Ecdf> {
        Ok(Ecdf::new(self.idle_secs.clone())?)
    }

    /// ECDF of busy period durations (its complement is the busy-period
    /// CCDF figure).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if there are no busy periods.
    pub fn busy_cdf(&self) -> Result<Ecdf> {
        Ok(Ecdf::new(self.busy_secs.clone())?)
    }

    /// Idleness availability at each threshold: how much of the idle
    /// time sits in intervals at least that long, and hence is usable by
    /// background tasks needing that much uninterrupted time.
    pub fn availability(&self, thresholds_secs: &[f64]) -> Vec<AvailabilityRow> {
        thresholds_secs
            .iter()
            .map(|&thr| {
                let mut time = 0.0;
                let mut count = 0usize;
                for &d in &self.idle_secs {
                    if d >= thr {
                        time += d;
                        count += 1;
                    }
                }
                AvailabilityRow {
                    threshold_secs: thr,
                    fraction_of_idle_time: if self.total_idle_secs > 0.0 {
                        time / self.total_idle_secs
                    } else {
                        0.0
                    },
                    fraction_of_intervals: if self.idle_secs.is_empty() {
                        0.0
                    } else {
                        count as f64 / self.idle_secs.len() as f64
                    },
                }
            })
            .collect()
    }

    /// Fits the idle-interval distribution against the standard families
    /// (exponential / Pareto / Weibull / log-normal), best first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if the sample is unusable (empty or
    /// containing non-positive durations).
    pub fn fit_idle_distribution(&self) -> Result<Vec<FitResult>> {
        // Zero-length idle gaps (back-to-back busy periods) are merged
        // away by the busy log, but guard against numerically zero
        // durations anyway.
        let positive: Vec<f64> = self
            .idle_secs
            .iter()
            .cloned()
            .filter(|&d| d > 0.0)
            .collect();
        Ok(fit_best(&positive)?)
    }
}

/// One row of the idleness-availability table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityRow {
    /// Minimum interval length a background task needs, in seconds.
    pub threshold_secs: f64,
    /// Fraction of total idle time inside qualifying intervals.
    pub fraction_of_idle_time: f64,
    /// Fraction of idle intervals that qualify.
    pub fraction_of_intervals: f64,
}

/// The threshold ladder used in the paper-style availability table:
/// 10 ms, 100 ms, 1 s, 10 s, 60 s.
pub const AVAILABILITY_THRESHOLDS: [f64; 5] = [0.01, 0.1, 1.0, 10.0, 60.0];

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_disk::busy::BusyLogBuilder;

    fn log(periods: &[(u64, u64)], span: u64) -> BusyLog {
        let mut b = BusyLogBuilder::new();
        for &(s, e) in periods {
            b.push(s, e).unwrap();
        }
        b.finish(span).unwrap()
    }

    #[test]
    fn fractions_and_means() {
        // Busy 2s of a 10s window; idle intervals: 1s, 3s, 4s.
        let l = log(
            &[
                (1_000_000_000, 2_000_000_000),
                (5_000_000_000, 6_000_000_000),
            ],
            10_000_000_000,
        );
        let a = IdleAnalysis::new(&l).unwrap();
        assert!((a.idle_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(a.idle_intervals(), 3);
        assert!((a.mean_idle_secs().unwrap() - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.busy_durations().len(), 2);
    }

    #[test]
    fn idle_cdf_reflects_durations() {
        let l = log(&[(2_000_000_000, 3_000_000_000)], 10_000_000_000);
        // Idle: 2s and 7s.
        let a = IdleAnalysis::new(&l).unwrap();
        let cdf = a.idle_cdf().unwrap();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.cdf(2.0), 0.5);
        assert_eq!(cdf.cdf(7.0), 1.0);
    }

    #[test]
    fn availability_thresholds_partition_idle_time() {
        // Idle intervals: 0.05s, 0.5s, 5s (total 5.55s).
        let l = log(
            &[
                (50_000_000, 100_000_000),
                (600_000_000, 700_000_000),
                (5_700_000_000, 5_750_000_000),
            ],
            10_750_000_000,
        );
        let a = IdleAnalysis::new(&l).unwrap();
        let rows = a.availability(&AVAILABILITY_THRESHOLDS);
        assert_eq!(rows.len(), 5);
        // All idle time is in intervals >= 10ms.
        assert!((rows[0].fraction_of_idle_time - 1.0).abs() < 1e-9);
        // Threshold 1s keeps only the 5s interval.
        let total = 0.05 + 0.5 + 5.0 + 5.0; // includes trailing idle 5s
        let frac_1s = rows[2].fraction_of_idle_time;
        assert!((frac_1s - 10.0 / total).abs() < 0.01, "frac {frac_1s}");
        // 60s threshold excludes everything.
        assert_eq!(rows[4].fraction_of_idle_time, 0.0);
        assert_eq!(rows[4].fraction_of_intervals, 0.0);
    }

    #[test]
    fn fully_busy_log_has_no_idle() {
        let l = log(&[(0, 1_000_000_000)], 1_000_000_000);
        let a = IdleAnalysis::new(&l).unwrap();
        assert_eq!(a.idle_fraction(), 0.0);
        assert_eq!(a.mean_idle_secs(), None);
        assert!(a.idle_cdf().is_err());
        let rows = a.availability(&[1.0]);
        assert_eq!(rows[0].fraction_of_idle_time, 0.0);
    }

    #[test]
    fn fully_idle_log() {
        let l = log(&[], 5_000_000_000);
        let a = IdleAnalysis::new(&l).unwrap();
        assert_eq!(a.idle_fraction(), 1.0);
        assert!(a.busy_cdf().is_err());
        assert_eq!(a.availability(&[1.0])[0].fraction_of_idle_time, 1.0);
    }

    #[test]
    fn fit_identifies_heavy_tailed_idleness() {
        // Construct an idle-duration pattern with a heavy tail: many
        // short gaps, a few enormous ones (Pareto-ish).
        let mut b = BusyLogBuilder::new();
        let mut t = 0u64;
        for i in 0..400u64 {
            // Busy 1 ms, then idle: mostly 10 ms, every 40th gap is
            // 10^(i/100) seconds long.
            b.push(t, t + 1_000_000).unwrap();
            t += 1_000_000;
            let idle_ns = if i % 40 == 0 {
                1_000_000_000 * (1 + i / 40) * (1 + i / 40)
            } else {
                10_000_000
            };
            t += idle_ns;
        }
        let l = b.finish(t).unwrap();
        let a = IdleAnalysis::new(&l).unwrap();
        let fits = a.fit_idle_distribution().unwrap();
        // The exponential must NOT be the best fit for this sample.
        assert_ne!(fits[0].distribution.name(), "exponential");
    }

    #[test]
    fn availability_is_monotone_in_threshold() {
        let l = log(
            &[
                (1_000_000_000, 1_500_000_000),
                (4_000_000_000, 4_200_000_000),
            ],
            20_000_000_000,
        );
        let a = IdleAnalysis::new(&l).unwrap();
        let rows = a.availability(&AVAILABILITY_THRESHOLDS);
        for w in rows.windows(2) {
            assert!(w[1].fraction_of_idle_time <= w[0].fraction_of_idle_time + 1e-12);
            assert!(w[1].fraction_of_intervals <= w[0].fraction_of_intervals + 1e-12);
        }
    }
}
