//! Property-based tests for the trace data model and codecs.

use proptest::prelude::*;
use spindle_trace::lifetime::accumulate_lifetime;
use spindle_trace::transform::{
    merge_sorted, rebase_time, split_by_drive, summarize, time_window, validate_sorted,
};
use spindle_trace::{
    binary, csv, text, DriveId, HourRecord, OpKind, Request, TraceError, SKIP_SAMPLE_MAX,
};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u64..1_000_000_000_000,
        0u32..16,
        prop::bool::ANY,
        0u64..1_000_000_000,
        1u32..100_000,
    )
        .prop_map(|(t, d, w, lba, sectors)| {
            let op = if w { OpKind::Write } else { OpKind::Read };
            Request::new(t, DriveId(d), op, lba, sectors).expect("valid by construction")
        })
}

fn arb_sorted_stream(max: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(arb_request(), 0..max).prop_map(|mut v| {
        v.sort_by_key(|r| r.arrival_ns);
        v
    })
}

proptest! {
    #[test]
    fn binary_roundtrip_is_lossless(reqs in prop::collection::vec(arb_request(), 0..100)) {
        let buf = binary::encode_requests(&reqs);
        let back = binary::decode_requests(&buf).unwrap();
        prop_assert_eq!(reqs, back);
    }

    #[test]
    fn text_roundtrip_is_lossless(reqs in prop::collection::vec(arb_request(), 0..100)) {
        let mut buf = Vec::new();
        text::write_requests(&mut buf, &reqs).unwrap();
        let back = text::read_requests(buf.as_slice()).unwrap();
        prop_assert_eq!(reqs, back);
    }

    #[test]
    fn truncated_binary_never_roundtrips_silently(
        reqs in prop::collection::vec(arb_request(), 1..50),
        cut in 1usize..24,
    ) {
        let buf = binary::encode_requests(&reqs);
        let cut = cut.min(buf.len() - 1);
        // Removing bytes must yield an error, never a silently shorter
        // trace.
        prop_assert!(binary::decode_requests(&buf[..buf.len() - cut]).is_err());
    }

    #[test]
    fn split_by_drive_partitions_the_stream(reqs in arb_sorted_stream(200)) {
        let split = split_by_drive(&reqs);
        let total: usize = split.values().map(Vec::len).sum();
        prop_assert_eq!(total, reqs.len());
        for (drive, stream) in &split {
            prop_assert!(stream.iter().all(|r| r.drive == *drive));
            prop_assert!(validate_sorted(stream).is_ok());
        }
    }

    #[test]
    fn merge_of_split_streams_restores_order(reqs in arb_sorted_stream(150)) {
        let split = split_by_drive(&reqs);
        let streams: Vec<Vec<Request>> = split.into_values().collect();
        let merged = merge_sorted(&streams).unwrap();
        prop_assert_eq!(merged.len(), reqs.len());
        prop_assert!(validate_sorted(&merged).is_ok());
        // Same multiset of requests.
        let mut a = merged;
        let mut b = reqs;
        let key = |r: &Request| (r.arrival_ns, r.drive.0, r.lba, r.sectors);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn time_window_returns_exactly_in_range(reqs in arb_sorted_stream(150), a in 0u64..1_000_000_000_000, len in 0u64..1_000_000_000_000) {
        let b = a.saturating_add(len);
        let w = time_window(&reqs, a, b);
        prop_assert!(w.iter().all(|r| r.arrival_ns >= a && r.arrival_ns < b));
        let expected = reqs.iter().filter(|r| r.arrival_ns >= a && r.arrival_ns < b).count();
        prop_assert_eq!(w.len(), expected);
    }

    #[test]
    fn rebase_preserves_gaps(reqs in arb_sorted_stream(100), origin in 0u64..1_000_000) {
        let rebased = rebase_time(&reqs, origin);
        prop_assert_eq!(rebased.len(), reqs.len());
        if let Some(first) = rebased.first() {
            prop_assert_eq!(first.arrival_ns, origin);
        }
        for (orig, new) in reqs.windows(2).zip(rebased.windows(2)) {
            prop_assert_eq!(
                orig[1].arrival_ns - orig[0].arrival_ns,
                new[1].arrival_ns - new[0].arrival_ns
            );
        }
    }

    #[test]
    fn summary_counts_are_consistent(reqs in arb_sorted_stream(150)) {
        let s = summarize(&reqs);
        prop_assert_eq!(s.requests, reqs.len() as u64);
        prop_assert_eq!(s.reads + s.writes, s.requests);
        let bytes: u64 = reqs.iter().map(Request::bytes).sum();
        prop_assert_eq!(s.bytes, bytes);
    }

    #[test]
    fn lifetime_accumulation_matches_sums(
        hours in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0.0f64..3600.0),
            1..100,
        )
    ) {
        let records: Vec<HourRecord> = hours
            .iter()
            .enumerate()
            .map(|(h, &(r, w, busy))| {
                HourRecord::new(DriveId(0), h as u32, r, w, r * 8, w * 8, busy).unwrap()
            })
            .collect();
        let lt = accumulate_lifetime(&records).unwrap();
        prop_assert_eq!(lt.power_on_hours, records.len() as u64);
        let reads: u64 = hours.iter().map(|h| h.0).sum();
        let writes: u64 = hours.iter().map(|h| h.1).sum();
        prop_assert_eq!(lt.lifetime_reads, reads);
        prop_assert_eq!(lt.lifetime_writes, writes);
        prop_assert!(lt.mean_utilization() >= 0.0 && lt.mean_utilization() <= 1.0);
    }
}

// --- hostile input -------------------------------------------------------
//
// The readers below are fed arbitrary, truncated, and bit-flipped bytes.
// The contract under attack: no panic, strict errors carry a line number
// inside the file, and lenient readers fail only on I/O (here: invalid
// UTF-8) while keeping their skip accounting consistent.

/// An MSR-Cambridge CSV body with sorted timestamps (so every row also
/// survives request conversion), prefixed by the standard header.
fn arb_msr_trace() -> impl Strategy<Value = (String, usize)> {
    prop::collection::vec(
        (
            1u64..1_000_000,
            0u32..4,
            prop::bool::ANY,
            0u64..1_000_000,
            1u64..1_048_576,
        ),
        1..40,
    )
    .prop_map(|rows| {
        let mut ts = 0u64;
        let mut out = String::from(csv::MSR_HEADER);
        out.push('\n');
        for (dt, disk, w, lba, size) in &rows {
            ts += dt;
            let op = if *w { "Write" } else { "Read" };
            out.push_str(&format!("{ts},srv,{disk},{op},{},{size},{dt}\n", lba * 512));
        }
        (out, rows.len())
    })
}

fn line_count(bytes: &[u8]) -> u64 {
    bytes.iter().filter(|b| **b == b'\n').count() as u64 + 1
}

fn skip_report_is_consistent(skips: &spindle_trace::SkipReport) -> bool {
    skips.sample_lines.len() <= SKIP_SAMPLE_MAX && skips.skipped >= skips.sample_lines.len() as u64
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_readers(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        // Strict readers: any outcome is fine as long as errors are
        // structured — a Parse error must point at a line in the file.
        for result in [text::read_requests(bytes.as_slice()).err(),
                       csv::read_msr_requests(bytes.as_slice()).err()] {
            if let Some(TraceError::Parse { line, .. }) = result {
                prop_assert!(line >= 1 && line <= line_count(&bytes), "line {line} out of range");
            }
        }
        // Lenient readers: the only permitted failure is I/O (invalid
        // UTF-8 in this in-memory setting); damage is skipped, not fatal.
        match text::read_requests_lenient(bytes.as_slice()) {
            Ok((_, skips)) => prop_assert!(skip_report_is_consistent(&skips)),
            Err(e) => prop_assert!(matches!(e, TraceError::Io(_)), "unexpected lenient error: {e}"),
        }
        match csv::read_msr_requests_lenient(bytes.as_slice()) {
            Ok((_, skips)) => prop_assert!(skip_report_is_consistent(&skips)),
            Err(e) => prop_assert!(matches!(e, TraceError::Io(_)), "unexpected lenient error: {e}"),
        }
    }

    #[test]
    fn bit_flipped_text_trace_is_caught_or_harmless(
        reqs in prop::collection::vec(arb_request(), 1..40),
        flip_at in 0usize..65_536,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        text::write_requests(&mut buf, &reqs).unwrap();
        let pos = flip_at % buf.len();
        buf[pos] ^= 1 << bit;

        // Strict: success or a structured error naming a real line.
        match text::read_requests(buf.as_slice()) {
            Ok(survivors) => prop_assert!(survivors.len() <= reqs.len() + 1),
            Err(TraceError::Parse { line, .. }) => {
                prop_assert!(line >= 1 && line <= line_count(&buf), "line {line} out of range");
            }
            Err(TraceError::Io(_)) | Err(TraceError::InvalidRecord { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
        // Lenient: only I/O may fail; otherwise the accounting holds up.
        match text::read_requests_lenient(buf.as_slice()) {
            Ok((survivors, skips)) => {
                prop_assert!(skip_report_is_consistent(&skips));
                prop_assert!(survivors.len() <= reqs.len() + 1);
            }
            Err(e) => prop_assert!(matches!(e, TraceError::Io(_)), "unexpected lenient error: {e}"),
        }
    }

    #[test]
    fn truncated_text_trace_yields_a_clean_prefix(
        reqs in prop::collection::vec(arb_request(), 1..40),
        cut_at in 0usize..65_536,
    ) {
        let mut buf = Vec::new();
        text::write_requests(&mut buf, &reqs).unwrap();
        // The text codec is pure ASCII, so cutting anywhere is UTF-8 safe.
        buf.truncate(cut_at % buf.len());

        let (survivors, skips) = text::read_requests_lenient(buf.as_slice()).unwrap();
        // Only the severed final line is at risk: it can be lost, or —
        // when the cut lands after a digit — parse as a shorter but
        // still valid record. Everything before the cut parses back
        // exactly as written.
        prop_assert!(skips.skipped <= 1, "one cut can cost at most one record: {skips:?}");
        prop_assert!(survivors.len() <= reqs.len());
        let intact = survivors.len().saturating_sub(1);
        prop_assert_eq!(&survivors[..intact], &reqs[..intact]);
    }

    #[test]
    fn corrupted_msr_row_is_reported_by_line(
        (trace, rows) in arb_msr_trace(),
        victim in 0usize..65_536,
    ) {
        let victim = victim % rows;
        let line_no = victim as u64 + 2; // +1 for the header, +1 for 1-basing
        let corrupted: String = trace
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i as u64 + 1 == line_no { "!!corrupt!!\n".to_owned() } else { format!("{l}\n") }
            })
            .collect();

        // Strict parsing names exactly the damaged line.
        match csv::read_msr_requests(corrupted.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => prop_assert_eq!(line, line_no),
            other => prop_assert!(false, "expected a parse error at line {line_no}, got {other:?}"),
        }
        // Lenient parsing drops exactly that row and records where.
        let (survivors, skips) = csv::read_msr_requests_lenient(corrupted.as_bytes()).unwrap();
        prop_assert_eq!(survivors.len(), rows - 1);
        prop_assert_eq!(skips.skipped, 1);
        prop_assert_eq!(skips.sample_lines.as_slice(), &[line_no]);
    }
}
