//! Property-based tests for the trace data model and codecs.

use proptest::prelude::*;
use spindle_trace::lifetime::accumulate_lifetime;
use spindle_trace::transform::{
    merge_sorted, rebase_time, split_by_drive, summarize, time_window, validate_sorted,
};
use spindle_trace::{binary, text, DriveId, HourRecord, OpKind, Request};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u64..1_000_000_000_000,
        0u32..16,
        prop::bool::ANY,
        0u64..1_000_000_000,
        1u32..100_000,
    )
        .prop_map(|(t, d, w, lba, sectors)| {
            let op = if w { OpKind::Write } else { OpKind::Read };
            Request::new(t, DriveId(d), op, lba, sectors).expect("valid by construction")
        })
}

fn arb_sorted_stream(max: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(arb_request(), 0..max).prop_map(|mut v| {
        v.sort_by_key(|r| r.arrival_ns);
        v
    })
}

proptest! {
    #[test]
    fn binary_roundtrip_is_lossless(reqs in prop::collection::vec(arb_request(), 0..100)) {
        let buf = binary::encode_requests(&reqs);
        let back = binary::decode_requests(&buf).unwrap();
        prop_assert_eq!(reqs, back);
    }

    #[test]
    fn text_roundtrip_is_lossless(reqs in prop::collection::vec(arb_request(), 0..100)) {
        let mut buf = Vec::new();
        text::write_requests(&mut buf, &reqs).unwrap();
        let back = text::read_requests(buf.as_slice()).unwrap();
        prop_assert_eq!(reqs, back);
    }

    #[test]
    fn truncated_binary_never_roundtrips_silently(
        reqs in prop::collection::vec(arb_request(), 1..50),
        cut in 1usize..24,
    ) {
        let buf = binary::encode_requests(&reqs);
        let cut = cut.min(buf.len() - 1);
        // Removing bytes must yield an error, never a silently shorter
        // trace.
        prop_assert!(binary::decode_requests(&buf[..buf.len() - cut]).is_err());
    }

    #[test]
    fn split_by_drive_partitions_the_stream(reqs in arb_sorted_stream(200)) {
        let split = split_by_drive(&reqs);
        let total: usize = split.values().map(Vec::len).sum();
        prop_assert_eq!(total, reqs.len());
        for (drive, stream) in &split {
            prop_assert!(stream.iter().all(|r| r.drive == *drive));
            prop_assert!(validate_sorted(stream).is_ok());
        }
    }

    #[test]
    fn merge_of_split_streams_restores_order(reqs in arb_sorted_stream(150)) {
        let split = split_by_drive(&reqs);
        let streams: Vec<Vec<Request>> = split.into_values().collect();
        let merged = merge_sorted(&streams).unwrap();
        prop_assert_eq!(merged.len(), reqs.len());
        prop_assert!(validate_sorted(&merged).is_ok());
        // Same multiset of requests.
        let mut a = merged;
        let mut b = reqs;
        let key = |r: &Request| (r.arrival_ns, r.drive.0, r.lba, r.sectors);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn time_window_returns_exactly_in_range(reqs in arb_sorted_stream(150), a in 0u64..1_000_000_000_000, len in 0u64..1_000_000_000_000) {
        let b = a.saturating_add(len);
        let w = time_window(&reqs, a, b);
        prop_assert!(w.iter().all(|r| r.arrival_ns >= a && r.arrival_ns < b));
        let expected = reqs.iter().filter(|r| r.arrival_ns >= a && r.arrival_ns < b).count();
        prop_assert_eq!(w.len(), expected);
    }

    #[test]
    fn rebase_preserves_gaps(reqs in arb_sorted_stream(100), origin in 0u64..1_000_000) {
        let rebased = rebase_time(&reqs, origin);
        prop_assert_eq!(rebased.len(), reqs.len());
        if let Some(first) = rebased.first() {
            prop_assert_eq!(first.arrival_ns, origin);
        }
        for (orig, new) in reqs.windows(2).zip(rebased.windows(2)) {
            prop_assert_eq!(
                orig[1].arrival_ns - orig[0].arrival_ns,
                new[1].arrival_ns - new[0].arrival_ns
            );
        }
    }

    #[test]
    fn summary_counts_are_consistent(reqs in arb_sorted_stream(150)) {
        let s = summarize(&reqs);
        prop_assert_eq!(s.requests, reqs.len() as u64);
        prop_assert_eq!(s.reads + s.writes, s.requests);
        let bytes: u64 = reqs.iter().map(Request::bytes).sum();
        prop_assert_eq!(s.bytes, bytes);
    }

    #[test]
    fn lifetime_accumulation_matches_sums(
        hours in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0.0f64..3600.0),
            1..100,
        )
    ) {
        let records: Vec<HourRecord> = hours
            .iter()
            .enumerate()
            .map(|(h, &(r, w, busy))| {
                HourRecord::new(DriveId(0), h as u32, r, w, r * 8, w * 8, busy).unwrap()
            })
            .collect();
        let lt = accumulate_lifetime(&records).unwrap();
        prop_assert_eq!(lt.power_on_hours, records.len() as u64);
        let reads: u64 = hours.iter().map(|h| h.0).sum();
        let writes: u64 = hours.iter().map(|h| h.1).sum();
        prop_assert_eq!(lt.lifetime_reads, reads);
        prop_assert_eq!(lt.lifetime_writes, writes);
        prop_assert!(lt.mean_utilization() >= 0.0 && lt.mean_utilization() <= 1.0);
    }
}
