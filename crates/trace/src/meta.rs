//! Trace-set metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Granularity of a trace set — which of the paper's three time scales it
/// records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Per-request records with sub-millisecond timestamps.
    Millisecond,
    /// Per-hour activity counters.
    Hour,
    /// Cumulative lifetime counters.
    Lifetime,
}

impl Granularity {
    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Millisecond => "Millisecond",
            Granularity::Hour => "Hour",
            Granularity::Lifetime => "Lifetime",
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Descriptive metadata for a trace set, mirroring the paper's trace
/// inventory table: what was recorded, from how many drives, and for how
/// long.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Short identifier (e.g. `"mail"`, `"web"`).
    pub name: String,
    /// Which time scale the set records.
    pub granularity: Granularity,
    /// Number of drives covered.
    pub drives: u32,
    /// Observation span in seconds (per drive).
    pub span_secs: f64,
    /// Free-form description of the workload environment.
    pub environment: String,
}

impl TraceMeta {
    /// Creates trace metadata.
    pub fn new(
        name: impl Into<String>,
        granularity: Granularity,
        drives: u32,
        span_secs: f64,
        environment: impl Into<String>,
    ) -> Self {
        TraceMeta {
            name: name.into(),
            granularity,
            drives,
            span_secs,
            environment: environment.into(),
        }
    }

    /// Observation span expressed in hours.
    pub fn span_hours(&self) -> f64 {
        self.span_secs / 3600.0
    }

    /// Observation span expressed in days.
    pub fn span_days(&self) -> f64 {
        self.span_secs / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_names() {
        assert_eq!(Granularity::Millisecond.to_string(), "Millisecond");
        assert_eq!(Granularity::Hour.name(), "Hour");
        assert_eq!(Granularity::Lifetime.name(), "Lifetime");
    }

    #[test]
    fn span_conversions() {
        let m = TraceMeta::new(
            "mail",
            Granularity::Millisecond,
            4,
            86_400.0,
            "e-mail server",
        );
        assert!((m.span_hours() - 24.0).abs() < 1e-12);
        assert!((m.span_days() - 1.0).abs() < 1e-12);
        assert_eq!(m.name, "mail");
        assert_eq!(m.drives, 4);
    }
}
