//! Lifetime-granularity trace records.
//!
//! The Lifetime traces are cumulative counters maintained by the drive
//! itself over its entire deployment — the coarsest of the three time
//! scales, but the only one available for *every* member of a drive
//! family, which is what makes cross-family variability analysis possible.

use crate::{DriveId, Result, TraceError, SECTOR_BYTES};
use serde::{Deserialize, Serialize};

/// Cumulative per-drive counters over the drive's deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeRecord {
    /// Drive the counters belong to.
    pub drive: DriveId,
    /// Total hours the drive has been powered on.
    pub power_on_hours: u64,
    /// Total read commands completed over the lifetime.
    pub lifetime_reads: u64,
    /// Total write commands completed over the lifetime.
    pub lifetime_writes: u64,
    /// Total sectors read over the lifetime.
    pub sectors_read: u64,
    /// Total sectors written over the lifetime.
    pub sectors_written: u64,
    /// Total hours the drive spent busy servicing requests.
    pub busy_hours: f64,
}

impl LifetimeRecord {
    /// Creates a lifetime record, validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if `power_on_hours == 0`, if
    /// `busy_hours` is negative, not finite, or exceeds `power_on_hours`,
    /// or if sector counts are inconsistent with command counts.
    pub fn new(
        drive: DriveId,
        power_on_hours: u64,
        lifetime_reads: u64,
        lifetime_writes: u64,
        sectors_read: u64,
        sectors_written: u64,
        busy_hours: f64,
    ) -> Result<Self> {
        if power_on_hours == 0 {
            return Err(TraceError::InvalidRecord {
                reason: "lifetime record needs at least one power-on hour".into(),
            });
        }
        if !busy_hours.is_finite() || busy_hours < 0.0 || busy_hours > power_on_hours as f64 {
            return Err(TraceError::InvalidRecord {
                reason: format!("busy_hours {busy_hours} outside [0, power_on_hours]"),
            });
        }
        if lifetime_reads == 0 && sectors_read > 0 {
            return Err(TraceError::InvalidRecord {
                reason: "sectors read without read commands".into(),
            });
        }
        if lifetime_writes == 0 && sectors_written > 0 {
            return Err(TraceError::InvalidRecord {
                reason: "sectors written without write commands".into(),
            });
        }
        Ok(LifetimeRecord {
            drive,
            power_on_hours,
            lifetime_reads,
            lifetime_writes,
            sectors_read,
            sectors_written,
            busy_hours,
        })
    }

    /// Total commands over the lifetime.
    pub fn operations(&self) -> u64 {
        self.lifetime_reads + self.lifetime_writes
    }

    /// Total bytes moved over the lifetime.
    pub fn bytes(&self) -> u64 {
        (self.sectors_read + self.sectors_written) * SECTOR_BYTES
    }

    /// Lifetime-average utilization in `[0, 1]`: busy hours over power-on
    /// hours.
    pub fn mean_utilization(&self) -> f64 {
        self.busy_hours / self.power_on_hours as f64
    }

    /// Lifetime-average data rate in megabytes per power-on hour.
    pub fn mb_per_hour(&self) -> f64 {
        self.bytes() as f64 / 1e6 / self.power_on_hours as f64
    }

    /// Lifetime-average command rate per power-on hour.
    pub fn ops_per_hour(&self) -> f64 {
        self.operations() as f64 / self.power_on_hours as f64
    }

    /// Fraction of lifetime commands that are writes, or `None` for a
    /// drive that never serviced a command.
    pub fn write_fraction(&self) -> Option<f64> {
        let total = self.operations();
        if total == 0 {
            None
        } else {
            Some(self.lifetime_writes as f64 / total as f64)
        }
    }
}

/// Accumulates hour records into a lifetime record, the way drive
/// firmware accumulates its lifetime counters.
///
/// # Errors
///
/// Returns [`TraceError::InvalidRecord`] if `hours` is empty or the
/// records span multiple drives.
pub fn accumulate_lifetime(hours: &[crate::HourRecord]) -> Result<LifetimeRecord> {
    let first = hours.first().ok_or_else(|| TraceError::InvalidRecord {
        reason: "cannot accumulate an empty hour series".into(),
    })?;
    let drive = first.drive;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut sr = 0u64;
    let mut sw = 0u64;
    let mut busy = 0.0f64;
    for h in hours {
        if h.drive != drive {
            return Err(TraceError::InvalidRecord {
                reason: "hour records span multiple drives".into(),
            });
        }
        reads += h.reads;
        writes += h.writes;
        sr += h.sectors_read;
        sw += h.sectors_written;
        busy += h.busy_secs / 3600.0;
    }
    LifetimeRecord::new(drive, hours.len() as u64, reads, writes, sr, sw, busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HourRecord;

    #[test]
    fn validation() {
        assert!(LifetimeRecord::new(DriveId(0), 0, 1, 1, 8, 8, 0.0).is_err());
        assert!(LifetimeRecord::new(DriveId(0), 10, 1, 1, 8, 8, -1.0).is_err());
        assert!(LifetimeRecord::new(DriveId(0), 10, 1, 1, 8, 8, 11.0).is_err());
        assert!(LifetimeRecord::new(DriveId(0), 10, 0, 1, 8, 8, 1.0).is_err());
        assert!(LifetimeRecord::new(DriveId(0), 10, 1, 0, 8, 8, 1.0).is_err());
        assert!(LifetimeRecord::new(DriveId(0), 10, 1, 1, 8, 8, 1.0).is_ok());
    }

    #[test]
    fn derived_quantities() {
        let r = LifetimeRecord::new(
            DriveId(0),
            1000,
            600_000,
            400_000,
            4_800_000,
            3_200_000,
            100.0,
        )
        .unwrap();
        assert_eq!(r.operations(), 1_000_000);
        assert_eq!(r.bytes(), 8_000_000 * 512);
        assert!((r.mean_utilization() - 0.1).abs() < 1e-12);
        assert!((r.ops_per_hour() - 1000.0).abs() < 1e-12);
        assert!((r.write_fraction().unwrap() - 0.4).abs() < 1e-12);
        assert!((r.mb_per_hour() - 8_000_000.0 * 512.0 / 1e6 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn idle_drive_write_fraction_is_none() {
        let r = LifetimeRecord::new(DriveId(0), 100, 0, 0, 0, 0, 0.0).unwrap();
        assert_eq!(r.write_fraction(), None);
        assert_eq!(r.mean_utilization(), 0.0);
    }

    #[test]
    fn accumulation_matches_manual_sum() {
        let hours: Vec<HourRecord> = (0..48)
            .map(|h| HourRecord::new(DriveId(2), h, 100, 50, 800, 400, 36.0).unwrap())
            .collect();
        let lt = accumulate_lifetime(&hours).unwrap();
        assert_eq!(lt.power_on_hours, 48);
        assert_eq!(lt.lifetime_reads, 4800);
        assert_eq!(lt.lifetime_writes, 2400);
        assert_eq!(lt.sectors_read, 38_400);
        assert_eq!(lt.sectors_written, 19_200);
        assert!((lt.busy_hours - 48.0 * 0.01).abs() < 1e-9);
        assert!((lt.mean_utilization() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn accumulation_rejects_mixed_drives() {
        let a = HourRecord::new(DriveId(0), 0, 1, 1, 8, 8, 1.0).unwrap();
        let b = HourRecord::new(DriveId(1), 1, 1, 1, 8, 8, 1.0).unwrap();
        assert!(accumulate_lifetime(&[a, b]).is_err());
        assert!(accumulate_lifetime(&[]).is_err());
    }
}
