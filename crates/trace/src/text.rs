//! Line-oriented text codec for request traces.
//!
//! The format is one request per line, comma-separated, in the spirit of
//! the SPC and blktrace text exports most trace repositories use:
//!
//! ```text
//! # spindle request trace v1
//! # arrival_ns,drive,op,lba,sectors
//! 1500000,0,R,2048,16
//! 2250000,0,W,4096,8
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. The reader is
//! streaming: it yields `Result<Request>` per line and never buffers the
//! whole trace.

use crate::{DriveId, OpKind, Request, Result, SkipReport, TraceError};
use std::io::{BufRead, BufReader, Read, Write};

/// Header comment written at the top of every text trace.
pub const TEXT_HEADER: &str = "# spindle request trace v1\n# arrival_ns,drive,op,lba,sectors\n";

/// Writes requests in the text format, preceded by [`TEXT_HEADER`].
///
/// A `&mut W` can be passed wherever a `W: Write` is expected.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_requests<'a, W, I>(mut w: W, requests: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a Request>,
{
    w.write_all(TEXT_HEADER.as_bytes())?;
    for r in requests {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.arrival_ns,
            r.drive.0,
            r.op.code(),
            r.lba,
            r.sectors
        )?;
    }
    Ok(())
}

/// Streaming reader over a text-format request trace.
///
/// Implements `Iterator<Item = Result<Request>>`; parsing stops at the
/// first I/O error.
#[derive(Debug)]
pub struct TextReader<R> {
    lines: std::io::Lines<BufReader<R>>,
    line_no: u64,
    lenient: bool,
    skips: SkipReport,
}

impl<R: Read> TextReader<R> {
    /// Creates a reader over any `Read` source (a `&mut R` also works).
    pub fn new(source: R) -> Self {
        TextReader {
            lines: BufReader::new(source).lines(),
            line_no: 0,
            lenient: false,
            skips: SkipReport::default(),
        }
    }

    /// Switches the reader to lenient mode: malformed lines are
    /// skipped (and noted in [`TextReader::skip_report`]) instead of
    /// ending the stream; I/O errors still propagate.
    #[must_use]
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// What lenient mode has skipped so far.
    #[must_use]
    pub fn skip_report(&self) -> &SkipReport {
        &self.skips
    }
}

fn parse_line(line: &str, line_no: u64) -> Result<Request> {
    let err = |reason: String| TraceError::Parse {
        line: line_no,
        reason,
    };
    let mut fields = line.split(',');
    let mut next = |name: &str| {
        fields
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| err(format!("missing field `{name}`")))
    };
    let arrival_ns: u64 = next("arrival_ns")?
        .parse()
        .map_err(|e| err(format!("bad arrival_ns: {e}")))?;
    let drive: u32 = next("drive")?
        .parse()
        .map_err(|e| err(format!("bad drive id: {e}")))?;
    let op_str = next("op")?;
    let mut op_chars = op_str.chars();
    let op_char = op_chars.next().expect("field is non-empty");
    if op_chars.next().is_some() {
        return Err(err(format!(
            "op field must be a single character, got {op_str:?}"
        )));
    }
    let op = OpKind::from_code(op_char).map_err(|e| err(e.to_string()))?;
    let lba: u64 = next("lba")?
        .parse()
        .map_err(|e| err(format!("bad lba: {e}")))?;
    let sectors: u32 = next("sectors")?
        .parse()
        .map_err(|e| err(format!("bad sectors: {e}")))?;
    if fields.next().is_some() {
        return Err(err("too many fields".into()));
    }
    Request::new(arrival_ns, DriveId(drive), op, lba, sectors).map_err(|e| err(e.to_string()))
}

impl<R: Read> Iterator for TextReader<R> {
    type Item = Result<Request>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match parse_line(trimmed, self.line_no) {
                Err(e) if self.lenient && e.is_record_level() => {
                    self.skips.note(self.line_no);
                }
                other => return Some(other),
            }
        }
    }
}

/// Reads an entire text trace into memory.
///
/// # Errors
///
/// Propagates the first parse or I/O error.
pub fn read_requests<R: Read>(source: R) -> Result<Vec<Request>> {
    TextReader::new(source).collect()
}

/// Reads an entire text trace into memory, skipping malformed lines
/// instead of failing; the [`SkipReport`] says what was dropped.
///
/// # Errors
///
/// Returns only [`TraceError::Io`] — record-level damage is skipped.
pub fn read_requests_lenient<R: Read>(source: R) -> Result<(Vec<Request>, SkipReport)> {
    let mut reader = TextReader::new(source).lenient();
    let requests: Vec<Request> = reader.by_ref().collect::<Result<_>>()?;
    Ok((requests, reader.skips))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::new(1_500_000, DriveId(0), OpKind::Read, 2048, 16).unwrap(),
            Request::new(2_250_000, DriveId(0), OpKind::Write, 4096, 8).unwrap(),
            Request::new(9_000_000, DriveId(3), OpKind::Read, 0, 128).unwrap(),
        ]
    }

    #[test]
    fn roundtrip() {
        let reqs = sample_requests();
        let mut buf = Vec::new();
        write_requests(&mut buf, &reqs).unwrap();
        let back = read_requests(buf.as_slice()).unwrap();
        assert_eq!(back, reqs);
    }

    #[test]
    fn header_and_comments_are_skipped() {
        let text = "# comment\n\n  \n10,1,W,100,4\n# trailing comment\n";
        let reqs = read_requests(text.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].op, OpKind::Write);
    }

    #[test]
    fn whitespace_around_fields_is_tolerated() {
        let reqs = read_requests(" 10 , 1 , R , 100 , 4 \n".as_bytes()).unwrap();
        assert_eq!(reqs[0].lba, 100);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "10,1,R,100,4\nnot,a,valid,line,x\n";
        let err = read_requests(text.as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "10,1,R,100",     // too few fields
            "10,1,R,100,4,9", // too many fields
            "10,1,X,100,4",   // bad op
            "10,1,RW,100,4",  // multi-char op
            "-1,1,R,100,4",   // negative arrival
            "10,1,R,100,0",   // zero sectors
            "ten,1,R,100,4",  // non-numeric
        ] {
            assert!(
                read_requests(bad.as_bytes()).is_err(),
                "line {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn lenient_reader_skips_damage_and_reports_lines() {
        let text = "1,0,R,0,1\nnot,a,valid,line,x\n3,0,W,8,1\n10,1,X,100,4\n";
        let (reqs, skips) = read_requests_lenient(text.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].arrival_ns, 3);
        assert_eq!(skips.skipped, 2);
        assert_eq!(skips.sample_lines, vec![2, 4]);
        // Strict mode still rejects the same input.
        assert!(read_requests(text.as_bytes()).is_err());
    }

    #[test]
    fn streaming_reader_yields_per_line() {
        let text = "1,0,R,0,1\n2,0,W,8,1\n";
        let mut reader = TextReader::new(text.as_bytes());
        assert_eq!(reader.next().unwrap().unwrap().arrival_ns, 1);
        assert_eq!(reader.next().unwrap().unwrap().arrival_ns, 2);
        assert!(reader.next().is_none());
    }

    #[test]
    fn written_output_starts_with_header() {
        let mut buf = Vec::new();
        write_requests(&mut buf, &sample_requests()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("# spindle request trace v1"));
    }
}
