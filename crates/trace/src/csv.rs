//! CSV codecs for hour and lifetime records.
//!
//! The coarse-granularity trace sets are small enough that a
//! line-oriented text format is the right interchange: one record per
//! line, with a header naming the columns. Lines starting with `#` and
//! blank lines are ignored on read.
//!
//! Hour format:
//!
//! ```text
//! drive,hour,reads,writes,sectors_read,sectors_written,busy_secs
//! 0,0,1200,800,9600,6400,14.2
//! ```
//!
//! Lifetime format:
//!
//! ```text
//! drive,power_on_hours,reads,writes,sectors_read,sectors_written,busy_hours
//! 0,1344,1612800,1075200,12902400,8601600,53.1
//! ```
//!
//! For request-granularity interchange with published block traces the
//! module also speaks the MSR-Cambridge format (timestamp, hostname,
//! disk, type, offset, size, latency) via the streaming [`MsrReader`];
//! see [`read_msr_requests`].

use crate::{DriveId, HourRecord, LifetimeRecord, OpKind, Request, Result, SkipReport, TraceError};
use std::io::{BufRead, BufReader, Read, Write};

/// Header line of the hour CSV format.
pub const HOUR_HEADER: &str = "drive,hour,reads,writes,sectors_read,sectors_written,busy_secs";
/// Header line of the lifetime CSV format.
pub const LIFETIME_HEADER: &str =
    "drive,power_on_hours,reads,writes,sectors_read,sectors_written,busy_hours";

/// Writes hour records as CSV (header first).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_hours<'a, W, I>(mut w: W, records: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a HourRecord>,
{
    writeln!(w, "{HOUR_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.drive.0, r.hour, r.reads, r.writes, r.sectors_read, r.sectors_written, r.busy_secs
        )?;
    }
    Ok(())
}

/// Writes lifetime records as CSV (header first).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_lifetimes<'a, W, I>(mut w: W, records: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a LifetimeRecord>,
{
    writeln!(w, "{LIFETIME_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.drive.0,
            r.power_on_hours,
            r.lifetime_reads,
            r.lifetime_writes,
            r.sectors_read,
            r.sectors_written,
            r.busy_hours
        )?;
    }
    Ok(())
}

struct LineFields<'a> {
    line_no: u64,
    fields: std::str::Split<'a, char>,
}

impl<'a> LineFields<'a> {
    fn new(line: &'a str, line_no: u64) -> Self {
        LineFields {
            line_no,
            fields: line.split(','),
        }
    }

    fn err(&self, reason: String) -> TraceError {
        TraceError::Parse {
            line: self.line_no,
            reason,
        }
    }

    fn next<T: std::str::FromStr>(&mut self, name: &str) -> Result<T>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .fields
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| self.err(format!("missing field `{name}`")))?;
        raw.parse()
            .map_err(|e| self.err(format!("bad {name}: {e}")))
    }

    fn finish(mut self) -> Result<()> {
        if self.fields.next().is_some() {
            return Err(self.err("too many fields".into()));
        }
        Ok(())
    }
}

fn data_lines<R: Read>(
    source: R,
    expected_header: &'static str,
) -> impl Iterator<Item = Result<(u64, String)>> {
    let mut line_no = 0u64;
    let mut header_seen = false;
    BufReader::new(source).lines().filter_map(move |line| {
        let line = match line {
            Ok(l) => l,
            Err(e) => return Some(Err(e.into())),
        };
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        if !header_seen {
            header_seen = true;
            if trimmed.eq_ignore_ascii_case(expected_header) {
                return None;
            }
            // Headerless files are accepted; fall through to parse the
            // first line as data.
        }
        Some(Ok((line_no, trimmed.to_owned())))
    })
}

fn parse_hour_line(line: &str, line_no: u64) -> Result<HourRecord> {
    let mut f = LineFields::new(line, line_no);
    let drive: u32 = f.next("drive")?;
    let hour: u32 = f.next("hour")?;
    let reads: u64 = f.next("reads")?;
    let writes: u64 = f.next("writes")?;
    let sr: u64 = f.next("sectors_read")?;
    let sw: u64 = f.next("sectors_written")?;
    let busy: f64 = f.next("busy_secs")?;
    f.finish()?;
    HourRecord::new(DriveId(drive), hour, reads, writes, sr, sw, busy)
}

fn parse_lifetime_line(line: &str, line_no: u64) -> Result<LifetimeRecord> {
    let mut f = LineFields::new(line, line_no);
    let drive: u32 = f.next("drive")?;
    let poh: u64 = f.next("power_on_hours")?;
    let reads: u64 = f.next("reads")?;
    let writes: u64 = f.next("writes")?;
    let sr: u64 = f.next("sectors_read")?;
    let sw: u64 = f.next("sectors_written")?;
    let busy: f64 = f.next("busy_hours")?;
    f.finish()?;
    LifetimeRecord::new(DriveId(drive), poh, reads, writes, sr, sw, busy)
}

/// The shared CSV driver: strict mode fails on the first bad record,
/// lenient mode skips record-level errors (noting the line) and only
/// propagates I/O failures.
fn read_records<R: Read, T>(
    source: R,
    header: &'static str,
    parse: fn(&str, u64) -> Result<T>,
    lenient: bool,
) -> Result<(Vec<T>, SkipReport)> {
    let mut out = Vec::new();
    let mut skips = SkipReport::default();
    for item in data_lines(source, header) {
        let (line_no, line) = item?;
        match parse(&line, line_no) {
            Ok(rec) => out.push(rec),
            Err(e) if lenient && e.is_record_level() => skips.note(line_no),
            Err(e) => return Err(e),
        }
    }
    Ok((out, skips))
}

/// Reads hour records from CSV.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a line number on malformed input
/// and [`TraceError::InvalidRecord`] for counter-inconsistent records.
pub fn read_hours<R: Read>(source: R) -> Result<Vec<HourRecord>> {
    read_records(source, HOUR_HEADER, parse_hour_line, false).map(|(v, _)| v)
}

/// Reads hour records from CSV, skipping malformed records instead of
/// failing the file; the [`SkipReport`] says what was dropped.
///
/// # Errors
///
/// Returns only [`TraceError::Io`] — record-level damage is skipped.
pub fn read_hours_lenient<R: Read>(source: R) -> Result<(Vec<HourRecord>, SkipReport)> {
    read_records(source, HOUR_HEADER, parse_hour_line, true)
}

/// Reads lifetime records from CSV.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a line number on malformed input
/// and [`TraceError::InvalidRecord`] for counter-inconsistent records.
pub fn read_lifetimes<R: Read>(source: R) -> Result<Vec<LifetimeRecord>> {
    read_records(source, LIFETIME_HEADER, parse_lifetime_line, false).map(|(v, _)| v)
}

/// Reads lifetime records from CSV, skipping malformed records instead
/// of failing the file; the [`SkipReport`] says what was dropped.
///
/// # Errors
///
/// Returns only [`TraceError::Io`] — record-level damage is skipped.
pub fn read_lifetimes_lenient<R: Read>(source: R) -> Result<(Vec<LifetimeRecord>, SkipReport)> {
    read_records(source, LIFETIME_HEADER, parse_lifetime_line, true)
}

/// Header line of the MSR-Cambridge block-trace format (matched
/// case-insensitively; headerless files are accepted).
pub const MSR_HEADER: &str = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime";

/// One MSR-Cambridge trace row.
///
/// Timestamps and latencies are Windows filetime ticks (100 ns units);
/// offset and size are bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrRecord {
    /// Issue time in 100 ns ticks since the filetime epoch.
    pub timestamp_100ns: u64,
    /// Server the volume belonged to (e.g. `usr`, `proj`).
    pub hostname: String,
    /// Disk number within the server.
    pub disk: u32,
    /// Read or write.
    pub op: OpKind,
    /// Starting byte offset on the volume.
    pub offset_bytes: u64,
    /// Transfer length in bytes.
    pub size_bytes: u64,
    /// Measured response time in 100 ns ticks.
    pub latency_100ns: u64,
}

impl MsrRecord {
    /// Converts to a [`Request`], with arrivals made relative to
    /// `base_100ns` (normally the first record's timestamp). Byte
    /// offsets map onto 512-byte sectors; sub-sector transfers round up
    /// to one sector.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if the timestamp precedes
    /// `base_100ns` or the extent falls outside the addressable range.
    pub fn to_request(&self, base_100ns: u64) -> Result<Request> {
        let rel = self
            .timestamp_100ns
            .checked_sub(base_100ns)
            .ok_or_else(|| TraceError::InvalidRecord {
                reason: format!(
                    "timestamp {} precedes the stream base {}",
                    self.timestamp_100ns, base_100ns
                ),
            })?;
        let arrival_ns = rel
            .checked_mul(100)
            .ok_or_else(|| TraceError::InvalidRecord {
                reason: "timestamp overflows the nanosecond range".into(),
            })?;
        let lba = self.offset_bytes / 512;
        let sectors = u32::try_from(self.size_bytes.div_ceil(512).max(1)).map_err(|_| {
            TraceError::InvalidRecord {
                reason: format!("transfer of {} bytes is too large", self.size_bytes),
            }
        })?;
        Request::new(arrival_ns, DriveId(self.disk), self.op, lba, sectors)
    }
}

/// Streaming reader for MSR-Cambridge CSV traces.
///
/// Yields one [`MsrRecord`] at a time without materializing the file,
/// so multi-gigabyte traces replay at fixed memory — chain with
/// [`MsrReader::requests`] and feed a bounded channel into
/// `DiskSim::run_stream`. Comment (`#`) and blank lines are skipped,
/// and an optional header line is recognized case-insensitively.
pub struct MsrReader<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
    line_no: u64,
    header_seen: bool,
    lenient: bool,
    skips: SkipReport,
}

impl<R: Read> std::fmt::Debug for MsrReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsrReader")
            .field("line_no", &self.line_no)
            .field("header_seen", &self.header_seen)
            .field("lenient", &self.lenient)
            .field("skips", &self.skips)
            .finish_non_exhaustive()
    }
}

impl<R: Read> MsrReader<R> {
    /// Wraps a byte source.
    pub fn new(source: R) -> Self {
        MsrReader {
            lines: BufReader::new(source).lines(),
            line_no: 0,
            header_seen: false,
            lenient: false,
            skips: SkipReport::default(),
        }
    }

    /// Switches the reader to lenient mode: record-level damage is
    /// skipped (and noted in [`MsrReader::skip_report`]) instead of
    /// ending the stream; I/O errors still propagate.
    #[must_use]
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// What lenient mode has skipped so far.
    #[must_use]
    pub fn skip_report(&self) -> &SkipReport {
        &self.skips
    }

    /// Adapts the stream to [`Request`]s: arrivals become nanoseconds
    /// relative to the first record's timestamp.
    pub fn requests(self) -> MsrRequests<R> {
        MsrRequests {
            inner: self,
            base_100ns: None,
        }
    }

    fn parse_line(line: &str, line_no: u64) -> Result<MsrRecord> {
        let mut f = LineFields::new(line, line_no);
        let timestamp_100ns: u64 = f.next("timestamp")?;
        let hostname: String = f.next("hostname")?;
        let disk: u32 = f.next("disk")?;
        let op_raw: String = f.next("type")?;
        let op = match op_raw.to_ascii_lowercase().as_str() {
            "read" | "r" => OpKind::Read,
            "write" | "w" => OpKind::Write,
            other => {
                return Err(TraceError::Parse {
                    line: line_no,
                    reason: format!("bad type `{other}` (expected Read or Write)"),
                })
            }
        };
        let offset_bytes: u64 = f.next("offset")?;
        let size_bytes: u64 = f.next("size")?;
        let latency_100ns: u64 = f.next("latency")?;
        f.finish()?;
        Ok(MsrRecord {
            timestamp_100ns,
            hostname,
            disk,
            op,
            offset_bytes,
            size_bytes,
            latency_100ns,
        })
    }
}

impl<R: Read> Iterator for MsrReader<R> {
    type Item = Result<MsrRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if !self.header_seen {
                self.header_seen = true;
                if trimmed.eq_ignore_ascii_case(MSR_HEADER) {
                    continue;
                }
            }
            match Self::parse_line(trimmed, self.line_no) {
                Err(e) if self.lenient && e.is_record_level() => {
                    self.skips.note(self.line_no);
                }
                other => return Some(other),
            }
        }
    }
}

/// Streaming [`Request`] adapter returned by [`MsrReader::requests`].
pub struct MsrRequests<R: Read> {
    inner: MsrReader<R>,
    base_100ns: Option<u64>,
}

impl<R: Read> std::fmt::Debug for MsrRequests<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsrRequests")
            .field("inner", &self.inner)
            .field("base_100ns", &self.base_100ns)
            .finish()
    }
}

impl<R: Read> MsrRequests<R> {
    /// What lenient mode has skipped so far (parse damage in the
    /// underlying reader plus records that failed request conversion).
    #[must_use]
    pub fn skip_report(&self) -> &SkipReport {
        self.inner.skip_report()
    }
}

impl<R: Read> Iterator for MsrRequests<R> {
    type Item = Result<Request>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let record = match self.inner.next()? {
                Ok(r) => r,
                Err(e) => return Some(Err(e)),
            };
            let base = *self.base_100ns.get_or_insert(record.timestamp_100ns);
            match record.to_request(base) {
                Err(e) if self.inner.lenient && e.is_record_level() => {
                    self.inner.skips.note(self.inner.line_no);
                }
                other => return Some(other),
            }
        }
    }
}

/// Reads an entire MSR-Cambridge CSV trace as [`Request`]s.
///
/// Arrivals are relative to the first record. The result preserves
/// file order; run it through
/// [`transform::validate_sorted`](crate::transform::validate_sorted)
/// or sort by arrival before simulation if the source interleaves
/// disks.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a line number on malformed input.
pub fn read_msr_requests<R: Read>(source: R) -> Result<Vec<Request>> {
    MsrReader::new(source).requests().collect()
}

/// Reads an entire MSR-Cambridge CSV trace leniently: damaged rows
/// (and rows that fail request conversion) are skipped and counted in
/// the returned [`SkipReport`] instead of failing the read.
///
/// # Errors
///
/// Returns only [`TraceError::Io`] — record-level damage is skipped.
pub fn read_msr_requests_lenient<R: Read>(source: R) -> Result<(Vec<Request>, SkipReport)> {
    let mut it = MsrReader::new(source).lenient().requests();
    let requests: Vec<Request> = it.by_ref().collect::<Result<_>>()?;
    Ok((requests, it.skip_report().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour(drive: u32, h: u32) -> HourRecord {
        HourRecord::new(DriveId(drive), h, 100 + h as u64, 50, 800, 400, 12.5).unwrap()
    }

    fn lifetime(drive: u32) -> LifetimeRecord {
        LifetimeRecord::new(DriveId(drive), 1000, 5_000, 3_000, 40_000, 24_000, 42.25).unwrap()
    }

    #[test]
    fn hour_roundtrip() {
        let recs = vec![hour(0, 0), hour(0, 1), hour(3, 7)];
        let mut buf = Vec::new();
        write_hours(&mut buf, &recs).unwrap();
        let back = read_hours(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn lifetime_roundtrip() {
        let recs = vec![lifetime(0), lifetime(1), lifetime(999)];
        let mut buf = Vec::new();
        write_lifetimes(&mut buf, &recs).unwrap();
        let back = read_lifetimes(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn output_starts_with_header() {
        let mut buf = Vec::new();
        write_hours(&mut buf, &[hour(0, 0)]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with(HOUR_HEADER));
    }

    #[test]
    fn comments_blanks_and_header_are_skipped() {
        let text = format!("# comment\n\n{HOUR_HEADER}\n0,0,10,5,80,40,1.5\n");
        let recs = read_hours(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].reads, 10);
    }

    #[test]
    fn headerless_input_is_accepted() {
        let recs = read_hours("0,0,10,5,80,40,1.5\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = format!("{HOUR_HEADER}\n0,0,10,5,80,40,1.5\n0,1,ten,5,80,40,1.5\n");
        match read_hours(text.as_bytes()).unwrap_err() {
            TraceError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rows_are_rejected() {
        for bad in [
            "0,0,10,5,80,40",       // too few fields
            "0,0,10,5,80,40,1.5,9", // too many fields
            "0,0,10,5,80,40,-2.0",  // invalid busy
            "0,0,0,5,80,40,1.0",    // sectors read without reads
        ] {
            assert!(read_hours(bad.as_bytes()).is_err(), "{bad:?} accepted");
        }
        assert!(read_lifetimes("0,0,1,1,8,8,0.0".as_bytes()).is_err()); // zero POH
    }

    #[test]
    fn empty_input_yields_empty_vec() {
        assert!(read_hours("".as_bytes()).unwrap().is_empty());
        assert!(read_lifetimes("# nothing\n".as_bytes()).unwrap().is_empty());
    }

    const MSR_SAMPLE: &str = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372016382155,usr,0,Write,2512192512,4096,289350
128166372026382245,usr,0,read,2512197120,512,1234
";

    #[test]
    fn msr_reader_parses_records() {
        let recs: Vec<MsrRecord> = MsrReader::new(MSR_SAMPLE.as_bytes())
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].hostname, "usr");
        assert_eq!(recs[0].op, OpKind::Read);
        assert_eq!(recs[1].op, OpKind::Write);
        assert_eq!(recs[0].offset_bytes, 7_014_609_920);
        assert_eq!(recs[0].latency_100ns, 41_286);
    }

    #[test]
    fn msr_requests_are_relative_and_sector_granular() {
        let reqs = read_msr_requests(MSR_SAMPLE.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 3);
        // First arrival is the stream base.
        assert_eq!(reqs[0].arrival_ns, 0);
        // 100 ns ticks become nanoseconds.
        assert_eq!(
            reqs[1].arrival_ns,
            (128_166_372_016_382_155u64 - 128_166_372_003_061_629) * 100
        );
        assert_eq!(reqs[0].lba, 7_014_609_920 / 512);
        assert_eq!(reqs[0].sectors, 24_576 / 512);
        // Sub-sector transfers round up to one sector.
        assert_eq!(reqs[2].sectors, 1);
        crate::transform::validate_sorted(&reqs).unwrap();
    }

    #[test]
    fn msr_headerless_and_comment_lines() {
        let text = "# trace\n128166372003061629,web,2,W,1024,8192,10\n";
        let reqs = read_msr_requests(text.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].drive, DriveId(2));
        assert_eq!(reqs[0].op, OpKind::Write);
        assert_eq!(reqs[0].sectors, 16);
    }

    #[test]
    fn msr_malformed_rows_are_rejected() {
        for bad in [
            "1,usr,0,Flush,0,512,10",  // unknown op
            "1,usr,0,Read,0,512",      // too few fields
            "1,usr,0,Read,0,512,10,9", // too many fields
            "x,usr,0,Read,0,512,10",   // bad timestamp
        ] {
            assert!(
                read_msr_requests(bad.as_bytes()).is_err(),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn lenient_hours_skip_damage_and_report_lines() {
        let text = format!(
            "{HOUR_HEADER}\n0,0,10,5,80,40,1.5\ngarbage line\n0,1,ten,5,80,40,1.5\n0,2,10,5,80,40,1.5\n"
        );
        let (recs, skips) = read_hours_lenient(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].hour, 2);
        assert_eq!(skips.skipped, 2);
        assert_eq!(skips.sample_lines, vec![3, 4]);
        // Strict mode still rejects the same input.
        assert!(read_hours(text.as_bytes()).is_err());
    }

    #[test]
    fn lenient_lifetimes_skip_invalid_records() {
        // Line 2 is counter-inconsistent (zero POH), not just unparsable.
        let text = format!("{LIFETIME_HEADER}\n0,0,1,1,8,8,0.0\n0,1000,1,1,8,8,0.5\n");
        let (recs, skips) = read_lifetimes_lenient(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(skips.skipped, 1);
        assert_eq!(skips.sample_lines, vec![2]);
    }

    #[test]
    fn lenient_clean_file_reports_nothing() {
        let text = format!("{HOUR_HEADER}\n0,0,10,5,80,40,1.5\n");
        let (recs, skips) = read_hours_lenient(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(skips.is_empty());
    }

    #[test]
    fn msr_lenient_skips_bad_rows_and_conversions() {
        // Row 3 is unparsable; row 4's timestamp precedes the stream
        // base, which fails request conversion rather than parsing.
        let text = "\
128166372003061629,usr,0,Read,7014609920,24576,41286\n\
128166372016382155,usr,0,Write,2512192512,4096,289350\n\
1,usr,0,Oops,0,512,10\n\
128166372000000000,usr,0,Read,0,512,10\n\
128166372026382245,usr,0,Read,2512197120,512,1234\n";
        let mut reqs = MsrReader::new(text.as_bytes()).lenient().requests();
        let got: Vec<Request> = reqs.by_ref().collect::<Result<_>>().unwrap();
        assert_eq!(got.len(), 3);
        let skips = reqs.skip_report();
        assert_eq!(skips.skipped, 2);
        assert_eq!(skips.sample_lines, vec![3, 4]);
        // Strict mode rejects the same stream.
        assert!(read_msr_requests(text.as_bytes()).is_err());
    }

    #[test]
    fn msr_parse_errors_carry_line_numbers() {
        let text = format!("{MSR_HEADER}\n1,usr,0,Read,0,512,10\n2,usr,0,Oops,0,512,10\n");
        match read_msr_requests(text.as_bytes()).unwrap_err() {
            TraceError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }
}
