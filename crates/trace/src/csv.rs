//! CSV codecs for hour and lifetime records.
//!
//! The coarse-granularity trace sets are small enough that a
//! line-oriented text format is the right interchange: one record per
//! line, with a header naming the columns. Lines starting with `#` and
//! blank lines are ignored on read.
//!
//! Hour format:
//!
//! ```text
//! drive,hour,reads,writes,sectors_read,sectors_written,busy_secs
//! 0,0,1200,800,9600,6400,14.2
//! ```
//!
//! Lifetime format:
//!
//! ```text
//! drive,power_on_hours,reads,writes,sectors_read,sectors_written,busy_hours
//! 0,1344,1612800,1075200,12902400,8601600,53.1
//! ```

use crate::{DriveId, HourRecord, LifetimeRecord, Result, TraceError};
use std::io::{BufRead, BufReader, Read, Write};

/// Header line of the hour CSV format.
pub const HOUR_HEADER: &str = "drive,hour,reads,writes,sectors_read,sectors_written,busy_secs";
/// Header line of the lifetime CSV format.
pub const LIFETIME_HEADER: &str =
    "drive,power_on_hours,reads,writes,sectors_read,sectors_written,busy_hours";

/// Writes hour records as CSV (header first).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_hours<'a, W, I>(mut w: W, records: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a HourRecord>,
{
    writeln!(w, "{HOUR_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.drive.0, r.hour, r.reads, r.writes, r.sectors_read, r.sectors_written, r.busy_secs
        )?;
    }
    Ok(())
}

/// Writes lifetime records as CSV (header first).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_lifetimes<'a, W, I>(mut w: W, records: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a LifetimeRecord>,
{
    writeln!(w, "{LIFETIME_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.drive.0,
            r.power_on_hours,
            r.lifetime_reads,
            r.lifetime_writes,
            r.sectors_read,
            r.sectors_written,
            r.busy_hours
        )?;
    }
    Ok(())
}

struct LineFields<'a> {
    line_no: u64,
    fields: std::str::Split<'a, char>,
}

impl<'a> LineFields<'a> {
    fn new(line: &'a str, line_no: u64) -> Self {
        LineFields {
            line_no,
            fields: line.split(','),
        }
    }

    fn err(&self, reason: String) -> TraceError {
        TraceError::Parse {
            line: self.line_no,
            reason,
        }
    }

    fn next<T: std::str::FromStr>(&mut self, name: &str) -> Result<T>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .fields
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| self.err(format!("missing field `{name}`")))?;
        raw.parse()
            .map_err(|e| self.err(format!("bad {name}: {e}")))
    }

    fn finish(mut self) -> Result<()> {
        if self.fields.next().is_some() {
            return Err(self.err("too many fields".into()));
        }
        Ok(())
    }
}

fn data_lines<R: Read>(
    source: R,
    expected_header: &'static str,
) -> impl Iterator<Item = Result<(u64, String)>> {
    let mut line_no = 0u64;
    let mut header_seen = false;
    BufReader::new(source).lines().filter_map(move |line| {
        let line = match line {
            Ok(l) => l,
            Err(e) => return Some(Err(e.into())),
        };
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        if !header_seen {
            header_seen = true;
            if trimmed == expected_header {
                return None;
            }
            // Headerless files are accepted; fall through to parse the
            // first line as data.
        }
        Some(Ok((line_no, trimmed.to_owned())))
    })
}

/// Reads hour records from CSV.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a line number on malformed input
/// and [`TraceError::InvalidRecord`] for counter-inconsistent records.
pub fn read_hours<R: Read>(source: R) -> Result<Vec<HourRecord>> {
    let mut out = Vec::new();
    for item in data_lines(source, HOUR_HEADER) {
        let (line_no, line) = item?;
        let mut f = LineFields::new(&line, line_no);
        let drive: u32 = f.next("drive")?;
        let hour: u32 = f.next("hour")?;
        let reads: u64 = f.next("reads")?;
        let writes: u64 = f.next("writes")?;
        let sr: u64 = f.next("sectors_read")?;
        let sw: u64 = f.next("sectors_written")?;
        let busy: f64 = f.next("busy_secs")?;
        f.finish()?;
        out.push(HourRecord::new(
            DriveId(drive),
            hour,
            reads,
            writes,
            sr,
            sw,
            busy,
        )?);
    }
    Ok(out)
}

/// Reads lifetime records from CSV.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a line number on malformed input
/// and [`TraceError::InvalidRecord`] for counter-inconsistent records.
pub fn read_lifetimes<R: Read>(source: R) -> Result<Vec<LifetimeRecord>> {
    let mut out = Vec::new();
    for item in data_lines(source, LIFETIME_HEADER) {
        let (line_no, line) = item?;
        let mut f = LineFields::new(&line, line_no);
        let drive: u32 = f.next("drive")?;
        let poh: u64 = f.next("power_on_hours")?;
        let reads: u64 = f.next("reads")?;
        let writes: u64 = f.next("writes")?;
        let sr: u64 = f.next("sectors_read")?;
        let sw: u64 = f.next("sectors_written")?;
        let busy: f64 = f.next("busy_hours")?;
        f.finish()?;
        out.push(LifetimeRecord::new(
            DriveId(drive),
            poh,
            reads,
            writes,
            sr,
            sw,
            busy,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour(drive: u32, h: u32) -> HourRecord {
        HourRecord::new(DriveId(drive), h, 100 + h as u64, 50, 800, 400, 12.5).unwrap()
    }

    fn lifetime(drive: u32) -> LifetimeRecord {
        LifetimeRecord::new(DriveId(drive), 1000, 5_000, 3_000, 40_000, 24_000, 42.25).unwrap()
    }

    #[test]
    fn hour_roundtrip() {
        let recs = vec![hour(0, 0), hour(0, 1), hour(3, 7)];
        let mut buf = Vec::new();
        write_hours(&mut buf, &recs).unwrap();
        let back = read_hours(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn lifetime_roundtrip() {
        let recs = vec![lifetime(0), lifetime(1), lifetime(999)];
        let mut buf = Vec::new();
        write_lifetimes(&mut buf, &recs).unwrap();
        let back = read_lifetimes(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn output_starts_with_header() {
        let mut buf = Vec::new();
        write_hours(&mut buf, &[hour(0, 0)]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with(HOUR_HEADER));
    }

    #[test]
    fn comments_blanks_and_header_are_skipped() {
        let text = format!("# comment\n\n{HOUR_HEADER}\n0,0,10,5,80,40,1.5\n");
        let recs = read_hours(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].reads, 10);
    }

    #[test]
    fn headerless_input_is_accepted() {
        let recs = read_hours("0,0,10,5,80,40,1.5\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = format!("{HOUR_HEADER}\n0,0,10,5,80,40,1.5\n0,1,ten,5,80,40,1.5\n");
        match read_hours(text.as_bytes()).unwrap_err() {
            TraceError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rows_are_rejected() {
        for bad in [
            "0,0,10,5,80,40",       // too few fields
            "0,0,10,5,80,40,1.5,9", // too many fields
            "0,0,10,5,80,40,-2.0",  // invalid busy
            "0,0,0,5,80,40,1.0",    // sectors read without reads
        ] {
            assert!(read_hours(bad.as_bytes()).is_err(), "{bad:?} accepted");
        }
        assert!(read_lifetimes("0,0,1,1,8,8,0.0".as_bytes()).is_err()); // zero POH
    }

    #[test]
    fn empty_input_yields_empty_vec() {
        assert!(read_hours("".as_bytes()).unwrap().is_empty());
        assert!(read_lifetimes("# nothing\n".as_bytes()).unwrap().is_empty());
    }
}
