//! Stream transformations over request traces.
//!
//! Slicing, splitting, merging, and validation of request streams. The
//! analyses always operate on a single drive's stream over a known
//! observation window; these helpers carve that out of raw multi-drive
//! traces.

use crate::{DriveId, OpKind, Request, Result, TraceError};
use std::collections::BTreeMap;

/// Checks that arrivals are non-decreasing — the invariant every analysis
/// and the disk simulator rely on.
///
/// # Errors
///
/// Returns [`TraceError::InvalidRecord`] naming the first offending index.
pub fn validate_sorted(requests: &[Request]) -> Result<()> {
    for (i, w) in requests.windows(2).enumerate() {
        if w[1].arrival_ns < w[0].arrival_ns {
            return Err(TraceError::InvalidRecord {
                reason: format!(
                    "arrival order violated at index {}: {} ns after {} ns",
                    i + 1,
                    w[1].arrival_ns,
                    w[0].arrival_ns
                ),
            });
        }
    }
    Ok(())
}

/// Splits a multi-drive stream into per-drive streams, preserving arrival
/// order within each drive.
pub fn split_by_drive(requests: &[Request]) -> BTreeMap<DriveId, Vec<Request>> {
    let mut map: BTreeMap<DriveId, Vec<Request>> = BTreeMap::new();
    for &r in requests {
        map.entry(r.drive).or_default().push(r);
    }
    map
}

/// Returns the requests whose arrival falls in `[start_ns, end_ns)`.
pub fn time_window(requests: &[Request], start_ns: u64, end_ns: u64) -> Vec<Request> {
    requests
        .iter()
        .filter(|r| r.arrival_ns >= start_ns && r.arrival_ns < end_ns)
        .copied()
        .collect()
}

/// Returns only the requests of the given direction.
pub fn filter_op(requests: &[Request], op: OpKind) -> Vec<Request> {
    requests.iter().filter(|r| r.op == op).copied().collect()
}

/// Merges several individually sorted streams into one sorted stream
/// (k-way merge, stable for equal timestamps in input order).
///
/// # Errors
///
/// Returns [`TraceError::InvalidRecord`] if any input stream is not
/// sorted.
pub fn merge_sorted(streams: &[Vec<Request>]) -> Result<Vec<Request>> {
    for s in streams {
        validate_sorted(s)?;
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(r) = s.get(cursors[i]) {
                match best {
                    Some((_, t)) if r.arrival_ns >= t => {}
                    _ => best = Some((i, r.arrival_ns)),
                }
            }
        }
        match best {
            Some((i, _)) => {
                out.push(streams[i][cursors[i]]);
                cursors[i] += 1;
            }
            None => break,
        }
    }
    Ok(out)
}

/// Shifts every arrival so the first request arrives at `origin_ns`
/// (usually 0) — normalizes traces captured with wall-clock timestamps.
///
/// Returns an empty vector for empty input.
pub fn rebase_time(requests: &[Request], origin_ns: u64) -> Vec<Request> {
    let Some(first) = requests.first() else {
        return Vec::new();
    };
    let base = first.arrival_ns;
    requests
        .iter()
        .map(|r| Request {
            arrival_ns: origin_ns + (r.arrival_ns - base),
            ..*r
        })
        .collect()
}

/// Summary counters for one stream — the per-trace sanity block printed by
/// the CLI before analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamSummary {
    /// Number of requests.
    pub requests: u64,
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Arrival time of the first request (ns), 0 for an empty stream.
    pub first_arrival_ns: u64,
    /// Arrival time of the last request (ns), 0 for an empty stream.
    pub last_arrival_ns: u64,
    /// Number of distinct drives.
    pub drives: u32,
}

impl StreamSummary {
    /// Span between first and last arrival, in seconds.
    pub fn span_secs(&self) -> f64 {
        (self.last_arrival_ns - self.first_arrival_ns) as f64 / 1e9
    }

    /// Mean arrival rate over the span in requests per second, or `None`
    /// for fewer than two requests.
    pub fn arrival_rate(&self) -> Option<f64> {
        if self.requests < 2 || self.span_secs() == 0.0 {
            None
        } else {
            Some(self.requests as f64 / self.span_secs())
        }
    }
}

/// Computes the [`StreamSummary`] of a stream.
pub fn summarize(requests: &[Request]) -> StreamSummary {
    let mut s = StreamSummary::default();
    let mut drives = std::collections::BTreeSet::new();
    for r in requests {
        s.requests += 1;
        match r.op {
            OpKind::Read => s.reads += 1,
            OpKind::Write => s.writes += 1,
        }
        s.bytes += r.bytes();
        drives.insert(r.drive);
    }
    s.drives = drives.len() as u32;
    if let (Some(first), Some(last)) = (requests.first(), requests.last()) {
        s.first_arrival_ns = first.arrival_ns;
        s.last_arrival_ns = last.arrival_ns;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, drive: u32, op: OpKind) -> Request {
        Request::new(t, DriveId(drive), op, t, 8).unwrap()
    }

    #[test]
    fn sorted_validation() {
        let good = vec![
            req(1, 0, OpKind::Read),
            req(1, 0, OpKind::Write),
            req(5, 0, OpKind::Read),
        ];
        assert!(validate_sorted(&good).is_ok());
        let bad = vec![req(5, 0, OpKind::Read), req(1, 0, OpKind::Read)];
        assert!(validate_sorted(&bad).is_err());
        assert!(validate_sorted(&[]).is_ok());
    }

    #[test]
    fn split_preserves_order() {
        let stream = vec![
            req(1, 0, OpKind::Read),
            req(2, 1, OpKind::Read),
            req(3, 0, OpKind::Write),
            req(4, 1, OpKind::Write),
        ];
        let split = split_by_drive(&stream);
        assert_eq!(split.len(), 2);
        assert_eq!(split[&DriveId(0)].len(), 2);
        assert_eq!(split[&DriveId(0)][1].arrival_ns, 3);
        assert_eq!(split[&DriveId(1)][0].arrival_ns, 2);
    }

    #[test]
    fn window_is_half_open() {
        let stream: Vec<Request> = (0..10).map(|t| req(t, 0, OpKind::Read)).collect();
        let w = time_window(&stream, 2, 5);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].arrival_ns, 2);
        assert_eq!(w[2].arrival_ns, 4);
    }

    #[test]
    fn op_filter() {
        let stream = vec![req(1, 0, OpKind::Read), req(2, 0, OpKind::Write)];
        assert_eq!(filter_op(&stream, OpKind::Read).len(), 1);
        assert_eq!(filter_op(&stream, OpKind::Write)[0].arrival_ns, 2);
    }

    #[test]
    fn merge_interleaves() {
        let a = vec![req(1, 0, OpKind::Read), req(5, 0, OpKind::Read)];
        let b = vec![req(2, 1, OpKind::Write), req(3, 1, OpKind::Write)];
        let merged = merge_sorted(&[a, b]).unwrap();
        let times: Vec<u64> = merged.iter().map(|r| r.arrival_ns).collect();
        assert_eq!(times, vec![1, 2, 3, 5]);
        assert!(validate_sorted(&merged).is_ok());
    }

    #[test]
    fn merge_rejects_unsorted_input() {
        let bad = vec![req(5, 0, OpKind::Read), req(1, 0, OpKind::Read)];
        assert!(merge_sorted(&[bad]).is_err());
    }

    #[test]
    fn merge_is_stable_for_ties() {
        let a = vec![req(3, 0, OpKind::Read)];
        let b = vec![req(3, 1, OpKind::Write)];
        let merged = merge_sorted(&[a, b]).unwrap();
        assert_eq!(merged[0].drive, DriveId(0));
        assert_eq!(merged[1].drive, DriveId(1));
    }

    #[test]
    fn rebase_shifts_to_origin() {
        let stream = vec![req(1000, 0, OpKind::Read), req(1500, 0, OpKind::Read)];
        let rebased = rebase_time(&stream, 0);
        assert_eq!(rebased[0].arrival_ns, 0);
        assert_eq!(rebased[1].arrival_ns, 500);
        let rebased10 = rebase_time(&stream, 10);
        assert_eq!(rebased10[0].arrival_ns, 10);
        assert!(rebase_time(&[], 0).is_empty());
    }

    #[test]
    fn summary_counts() {
        let stream = vec![
            req(100, 0, OpKind::Read),
            req(200, 1, OpKind::Write),
            req(1_000_000_300, 0, OpKind::Write),
        ];
        let s = summarize(&stream);
        assert_eq!(s.requests, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes, 3 * 8 * 512);
        assert_eq!(s.drives, 2);
        assert!((s.span_secs() - 1.0000002).abs() < 1e-6);
        assert!(s.arrival_rate().unwrap() > 2.9);
    }

    #[test]
    fn summary_of_empty_stream() {
        let s = summarize(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.arrival_rate(), None);
        assert_eq!(s.span_secs(), 0.0);
    }
}
