//! Trace anonymization.
//!
//! Disk traces leak information through their logical addresses
//! (filesystem layout, database table positions), which is one reason
//! trace sets like the paper's stay closed. The standard mitigation is
//! address scrambling that preserves the *structure* the analyses need —
//! sequentiality, request sizes, timing — while destroying absolute
//! placement: the LBA space is cut into fixed-size extents and the
//! extents are permuted by a keyed pseudorandom permutation, keeping
//! offsets within each extent intact.
//!
//! The permutation is a 4-round Feistel network over the extent index
//! space, so it is deterministic in the key, invertible in principle
//! (given the key), and needs no stored mapping table.

use crate::{Request, Result, TraceError};

/// Keyed extent-permuting anonymizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anonymizer {
    key: u64,
    extent_sectors: u64,
    /// Number of extents (permutation domain size).
    extents: u64,
    /// Feistel half-width in bits.
    half_bits: u32,
}

impl Anonymizer {
    /// Creates an anonymizer for a drive of `capacity_sectors`, cut into
    /// extents of `extent_sectors`.
    ///
    /// The permutation domain is the next even-bit-width power of two of
    /// the extent count; out-of-domain outputs are cycle-walked back, so
    /// every extent maps inside the drive.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if `extent_sectors == 0` or
    /// the capacity holds fewer than two extents (nothing to permute).
    pub fn new(key: u64, capacity_sectors: u64, extent_sectors: u64) -> Result<Self> {
        if extent_sectors == 0 {
            return Err(TraceError::InvalidRecord {
                reason: "extent size must be at least one sector".into(),
            });
        }
        let extents = capacity_sectors / extent_sectors;
        if extents < 2 {
            return Err(TraceError::InvalidRecord {
                reason: "anonymization needs at least two extents".into(),
            });
        }
        // Feistel over 2·half_bits >= bits(extents), half_bits >= 1.
        let bits = 64 - (extents - 1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        Ok(Anonymizer {
            key,
            extent_sectors,
            extents,
            half_bits,
        })
    }

    fn round(&self, half: u64, round: u32) -> u64 {
        // A small mix function (SplitMix64 finalizer) keyed per round.
        let mut z = half
            .wrapping_add(self.key)
            .wrapping_add(u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Permutes one extent index through the Feistel network,
    /// cycle-walking until the result lands inside the extent count.
    fn permute_extent(&self, extent: u64) -> u64 {
        debug_assert!(extent < self.extents);
        let mask = (1u64 << self.half_bits) - 1;
        let mut value = extent;
        loop {
            let mut left = value >> self.half_bits;
            let mut right = value & mask;
            for round in 0..4 {
                let next_left = right;
                let next_right = left ^ (self.round(right, round) & mask);
                left = next_left;
                right = next_right;
            }
            value = (left << self.half_bits) | right;
            if value < self.extents {
                return value;
            }
        }
    }

    /// Anonymizes one LBA: the containing extent is permuted, the
    /// offset within the extent is preserved.
    pub fn map_lba(&self, lba: u64) -> u64 {
        let extent = (lba / self.extent_sectors).min(self.extents - 1);
        let offset = lba - extent * self.extent_sectors;
        self.permute_extent(extent) * self.extent_sectors + offset
    }

    /// Anonymizes a request stream (timing, sizes, direction, and drive
    /// ids are untouched).
    pub fn anonymize(&self, requests: &[Request]) -> Vec<Request> {
        requests
            .iter()
            .map(|r| Request {
                lba: self.map_lba(r.lba),
                ..*r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DriveId, OpKind};

    const CAP: u64 = 1_000_000;
    const EXTENT: u64 = 1_000;

    fn anon(key: u64) -> Anonymizer {
        Anonymizer::new(key, CAP, EXTENT).unwrap()
    }

    fn req(t: u64, lba: u64) -> Request {
        Request::new(t, DriveId(0), OpKind::Read, lba, 8).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Anonymizer::new(1, CAP, 0).is_err());
        assert!(Anonymizer::new(1, 100, 100).is_err());
        assert!(Anonymizer::new(1, 2_000, 1_000).is_ok());
    }

    #[test]
    fn permutation_is_a_bijection() {
        let a = Anonymizer::new(7, 64_000, 1_000).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for e in 0..64u64 {
            let mapped = a.permute_extent(e);
            assert!(mapped < 64);
            assert!(seen.insert(mapped), "extent {e} collides at {mapped}");
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn mapping_is_deterministic_and_key_sensitive() {
        let a = anon(42);
        let b = anon(42);
        let c = anon(43);
        assert_eq!(a.map_lba(123_456), b.map_lba(123_456));
        // Different keys almost surely map differently; check several
        // probes to make a collision astronomically unlikely.
        let differs = (0..32u64).any(|i| a.map_lba(i * 31_000) != c.map_lba(i * 31_000));
        assert!(differs);
    }

    #[test]
    fn offsets_within_extents_are_preserved() {
        let a = anon(9);
        for lba in [0u64, 999, 1_000, 500_500, 999_999] {
            let mapped = a.map_lba(lba);
            assert_eq!(mapped % EXTENT, lba % EXTENT);
            assert!(mapped < CAP);
        }
    }

    #[test]
    fn sequential_runs_inside_an_extent_survive() {
        let a = anon(5);
        // 10 sequential requests inside one extent.
        let reqs: Vec<Request> = (0..10).map(|i| req(i, 2_000 + i * 8)).collect();
        let out = a.anonymize(&reqs);
        for w in out.windows(2) {
            assert!(w[1].is_sequential_after(&w[0]));
        }
    }

    #[test]
    fn absolute_placement_is_destroyed() {
        let a = anon(99);
        // Many extents must move: count fixed points over 1000 extents.
        let fixed = (0..1_000u64).filter(|&e| a.permute_extent(e) == e).count();
        assert!(fixed < 20, "{fixed} fixed extents out of 1000");
    }

    #[test]
    fn stream_metadata_is_untouched() {
        let a = anon(3);
        let reqs = vec![
            Request::new(5, DriveId(2), OpKind::Write, 10_000, 64).unwrap(),
            Request::new(9, DriveId(2), OpKind::Read, 20_000, 8).unwrap(),
        ];
        let out = a.anonymize(&reqs);
        assert_eq!(out.len(), 2);
        for (o, r) in out.iter().zip(&reqs) {
            assert_eq!(o.arrival_ns, r.arrival_ns);
            assert_eq!(o.drive, r.drive);
            assert_eq!(o.op, r.op);
            assert_eq!(o.sectors, r.sectors);
        }
    }
}
