//! Compact binary codec for request traces.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SPN1"
//! 4       2     version (currently 1)
//! 6       2     reserved (0)
//! 8       8     record count
//! 16      25·n  records
//! ```
//!
//! Each record is 25 bytes: `arrival_ns: u64`, `drive: u32`, `lba: u64`,
//! `sectors: u32`, `op: u8` (0 = read, 1 = write). The fixed-size layout
//! keeps a day-long millisecond trace of a busy drive (tens of millions of
//! requests) under a gigabyte and supports exact preallocation on read.

use crate::{DriveId, OpKind, Request, Result, TraceError};
use bytes::{Buf, BufMut};
use std::io::{Read, Write};

/// Magic bytes identifying a spindle binary trace.
pub const MAGIC: &[u8; 4] = b"SPN1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Size of one encoded record in bytes.
pub const RECORD_BYTES: usize = 25;
const HEADER_BYTES: usize = 16;

/// Encodes requests into the binary format, returning the buffer.
pub fn encode_requests(requests: &[Request]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + requests.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0);
    buf.put_u64_le(requests.len() as u64);
    for r in requests {
        buf.put_u64_le(r.arrival_ns);
        buf.put_u32_le(r.drive.0);
        buf.put_u64_le(r.lba);
        buf.put_u32_le(r.sectors);
        buf.put_u8(match r.op {
            OpKind::Read => 0,
            OpKind::Write => 1,
        });
    }
    spindle_obs::global()
        .counter("trace.requests_encoded")
        .add(requests.len() as u64);
    buf
}

/// Writes requests in the binary format to any writer (a `&mut W` also
/// works).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_requests<W: Write>(mut w: W, requests: &[Request]) -> Result<()> {
    w.write_all(&encode_requests(requests))?;
    Ok(())
}

/// Decodes a binary trace from a byte slice.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`],
/// or [`TraceError::TruncatedRecord`] for malformed input, and
/// [`TraceError::InvalidRecord`] if a decoded record violates request
/// invariants.
pub fn decode_requests(mut data: &[u8]) -> Result<Vec<Request>> {
    if data.len() < HEADER_BYTES {
        return Err(TraceError::TruncatedRecord);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let _reserved = data.get_u16_le();
    let count = data.get_u64_le() as usize;
    if data.remaining() != count * RECORD_BYTES {
        return Err(TraceError::TruncatedRecord);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let arrival_ns = data.get_u64_le();
        let drive = data.get_u32_le();
        let lba = data.get_u64_le();
        let sectors = data.get_u32_le();
        let op = match data.get_u8() {
            0 => OpKind::Read,
            1 => OpKind::Write,
            other => {
                return Err(TraceError::InvalidRecord {
                    reason: format!("unknown op byte {other}"),
                })
            }
        };
        out.push(Request::new(arrival_ns, DriveId(drive), op, lba, sectors)?);
    }
    spindle_obs::global()
        .counter("trace.requests_decoded")
        .add(out.len() as u64);
    Ok(out)
}

/// Reads a binary trace from any reader (a `&mut R` also works).
///
/// # Errors
///
/// Propagates I/O errors and all decoding errors of [`decode_requests`].
pub fn read_requests<R: Read>(mut r: R) -> Result<Vec<Request>> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    decode_requests(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Request> {
        vec![
            Request::new(1, DriveId(0), OpKind::Read, 100, 8).unwrap(),
            Request::new(2, DriveId(9), OpKind::Write, u64::MAX - 16, 16).unwrap(),
            Request::new(u64::MAX, DriveId(u32::MAX), OpKind::Read, 0, u32::MAX).unwrap(),
        ]
    }

    #[test]
    fn roundtrip_via_buffer() {
        let reqs = sample();
        let buf = encode_requests(&reqs);
        assert_eq!(buf.len(), 16 + reqs.len() * RECORD_BYTES);
        assert_eq!(decode_requests(&buf).unwrap(), reqs);
    }

    #[test]
    fn roundtrip_via_io() {
        let reqs = sample();
        let mut buf = Vec::new();
        write_requests(&mut buf, &reqs).unwrap();
        assert_eq!(read_requests(buf.as_slice()).unwrap(), reqs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let buf = encode_requests(&[]);
        assert_eq!(decode_requests(&buf).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = encode_requests(&sample());
        buf[0] = b'X';
        assert!(matches!(decode_requests(&buf), Err(TraceError::BadMagic)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = encode_requests(&sample());
        buf[4] = 99;
        assert!(matches!(
            decode_requests(&buf),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let buf = encode_requests(&sample());
        assert!(matches!(
            decode_requests(&buf[..buf.len() - 1]),
            Err(TraceError::TruncatedRecord)
        ));
        assert!(matches!(
            decode_requests(&buf[..8]),
            Err(TraceError::TruncatedRecord)
        ));
    }

    #[test]
    fn excess_bytes_are_detected() {
        let mut buf = encode_requests(&sample());
        buf.push(0);
        assert!(matches!(
            decode_requests(&buf),
            Err(TraceError::TruncatedRecord)
        ));
    }

    #[test]
    fn bad_op_byte_is_rejected() {
        let mut buf = encode_requests(&sample()[..1]);
        let last = buf.len() - 1;
        buf[last] = 7;
        assert!(matches!(
            decode_requests(&buf),
            Err(TraceError::InvalidRecord { .. })
        ));
    }

    #[test]
    fn zero_sector_record_is_rejected_on_decode() {
        // Hand-craft a header + one record with sectors = 0.
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(1);
        buf.put_u64_le(5);
        buf.put_u32_le(0);
        buf.put_u64_le(10);
        buf.put_u32_le(0); // sectors = 0
        buf.put_u8(0);
        assert!(matches!(
            decode_requests(&buf),
            Err(TraceError::InvalidRecord { .. })
        ));
    }
}
