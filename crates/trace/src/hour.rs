//! Per-hour (hour-granularity) trace records.
//!
//! The Hour traces record, for each drive and each hour of deployment, the
//! number of read and write commands completed, the sectors moved in each
//! direction, and the time the drive spent busy. [`HourSeries`] wraps a
//! contiguous run of such records for one drive and offers the derived
//! series (total operations, throughput, write fraction, utilization) the
//! hour-scale analyses consume.

use crate::{DriveId, Result, TraceError, SECTOR_BYTES};
use serde::{Deserialize, Serialize};

/// Activity counters for one drive over one hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HourRecord {
    /// Drive the counters belong to.
    pub drive: DriveId,
    /// Hour index from the start of the observation (0-based,
    /// consecutive).
    pub hour: u32,
    /// Read commands completed in this hour.
    pub reads: u64,
    /// Write commands completed in this hour.
    pub writes: u64,
    /// Sectors read in this hour.
    pub sectors_read: u64,
    /// Sectors written in this hour.
    pub sectors_written: u64,
    /// Seconds (0–3600) the drive was servicing requests in this hour.
    pub busy_secs: f64,
}

impl HourRecord {
    /// Creates an hour record, validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if `busy_secs` is outside
    /// `[0, 3600]` or not finite, or if sector counts are inconsistent
    /// with command counts (sectors moved with zero commands).
    pub fn new(
        drive: DriveId,
        hour: u32,
        reads: u64,
        writes: u64,
        sectors_read: u64,
        sectors_written: u64,
        busy_secs: f64,
    ) -> Result<Self> {
        if !busy_secs.is_finite() || !(0.0..=3600.0).contains(&busy_secs) {
            return Err(TraceError::InvalidRecord {
                reason: format!("busy_secs {busy_secs} outside [0, 3600]"),
            });
        }
        if reads == 0 && sectors_read > 0 {
            return Err(TraceError::InvalidRecord {
                reason: "sectors read without read commands".into(),
            });
        }
        if writes == 0 && sectors_written > 0 {
            return Err(TraceError::InvalidRecord {
                reason: "sectors written without write commands".into(),
            });
        }
        Ok(HourRecord {
            drive,
            hour,
            reads,
            writes,
            sectors_read,
            sectors_written,
            busy_secs,
        })
    }

    /// Total commands (reads + writes) in this hour.
    pub fn operations(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved in this hour.
    pub fn bytes(&self) -> u64 {
        (self.sectors_read + self.sectors_written) * SECTOR_BYTES
    }

    /// Fraction of commands that are writes, or `None` for an idle hour.
    pub fn write_fraction(&self) -> Option<f64> {
        let total = self.operations();
        if total == 0 {
            None
        } else {
            Some(self.writes as f64 / total as f64)
        }
    }

    /// Utilization in `[0, 1]`: fraction of the hour spent busy.
    pub fn utilization(&self) -> f64 {
        self.busy_secs / 3600.0
    }
}

/// A contiguous sequence of hour records for a single drive.
///
/// Construction validates that all records target the same drive and that
/// hour indices are consecutive starting from the first record's index —
/// gaps would silently bias every burstiness statistic computed from the
/// series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourSeries {
    records: Vec<HourRecord>,
}

impl HourSeries {
    /// Wraps records into a validated series.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if the records are empty,
    /// span multiple drives, or have non-consecutive hour indices.
    pub fn new(records: Vec<HourRecord>) -> Result<Self> {
        let first = records.first().ok_or_else(|| TraceError::InvalidRecord {
            reason: "hour series must contain at least one record".into(),
        })?;
        let drive = first.drive;
        let start = first.hour;
        for (i, r) in records.iter().enumerate() {
            if r.drive != drive {
                return Err(TraceError::InvalidRecord {
                    reason: format!("record {i} targets {} but series is for {drive}", r.drive),
                });
            }
            let expected = start + i as u32;
            if r.hour != expected {
                return Err(TraceError::InvalidRecord {
                    reason: format!("record {i} has hour {} but {expected} expected", r.hour),
                });
            }
        }
        Ok(HourSeries { records })
    }

    /// The drive this series describes.
    pub fn drive(&self) -> DriveId {
        self.records[0].drive
    }

    /// Number of hours covered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Never true: construction rejects empty series. Provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrowed view of the records.
    pub fn records(&self) -> &[HourRecord] {
        &self.records
    }

    /// Iterator over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, HourRecord> {
        self.records.iter()
    }

    /// Per-hour total operation counts (the main hour-scale burstiness
    /// series).
    pub fn operations_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.operations() as f64).collect()
    }

    /// Per-hour bytes-moved series.
    pub fn bytes_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.bytes() as f64).collect()
    }

    /// Per-hour utilization series (values in `[0, 1]`).
    pub fn utilization_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.utilization()).collect()
    }

    /// Per-hour write-fraction series; idle hours yield `None`.
    pub fn write_fraction_series(&self) -> Vec<Option<f64>> {
        self.records.iter().map(|r| r.write_fraction()).collect()
    }

    /// Longest run of consecutive hours whose utilization is at least
    /// `threshold` — the statistic behind the paper's "a portion of drives
    /// fully utilize the available bandwidth for hours at a time".
    pub fn longest_saturated_run(&self, threshold: f64) -> usize {
        let mut best = 0usize;
        let mut current = 0usize;
        for r in &self.records {
            if r.utilization() >= threshold {
                current += 1;
                best = best.max(current);
            } else {
                current = 0;
            }
        }
        best
    }

    /// Total operations over the whole series.
    pub fn total_operations(&self) -> u64 {
        self.records.iter().map(|r| r.operations()).sum()
    }

    /// Mean utilization over the whole series.
    pub fn mean_utilization(&self) -> f64 {
        self.records.iter().map(|r| r.utilization()).sum::<f64>() / self.records.len() as f64
    }
}

impl<'a> IntoIterator for &'a HourSeries {
    type Item = &'a HourRecord;
    type IntoIter = std::slice::Iter<'a, HourRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hour: u32, reads: u64, writes: u64, busy: f64) -> HourRecord {
        HourRecord::new(DriveId(1), hour, reads, writes, reads * 8, writes * 8, busy).unwrap()
    }

    #[test]
    fn record_validation() {
        assert!(HourRecord::new(DriveId(0), 0, 1, 1, 8, 8, -1.0).is_err());
        assert!(HourRecord::new(DriveId(0), 0, 1, 1, 8, 8, 3601.0).is_err());
        assert!(HourRecord::new(DriveId(0), 0, 0, 1, 8, 8, 10.0).is_err());
        assert!(HourRecord::new(DriveId(0), 0, 1, 0, 8, 8, 10.0).is_err());
        assert!(HourRecord::new(DriveId(0), 0, 1, 1, 8, 8, f64::NAN).is_err());
        assert!(HourRecord::new(DriveId(0), 0, 0, 0, 0, 0, 0.0).is_ok());
    }

    #[test]
    fn derived_record_quantities() {
        let r = rec(0, 30, 10, 360.0);
        assert_eq!(r.operations(), 40);
        assert_eq!(r.bytes(), 40 * 8 * 512);
        assert!((r.write_fraction().unwrap() - 0.25).abs() < 1e-12);
        assert!((r.utilization() - 0.1).abs() < 1e-12);
        let idle = rec(1, 0, 0, 0.0);
        assert_eq!(idle.write_fraction(), None);
    }

    #[test]
    fn series_rejects_gaps_and_mixed_drives() {
        assert!(HourSeries::new(vec![]).is_err());
        assert!(HourSeries::new(vec![rec(0, 1, 1, 1.0), rec(2, 1, 1, 1.0)]).is_err());
        let other = HourRecord::new(DriveId(2), 1, 1, 1, 8, 8, 1.0).unwrap();
        assert!(HourSeries::new(vec![rec(0, 1, 1, 1.0), other]).is_err());
    }

    #[test]
    fn series_accepts_nonzero_start() {
        let s = HourSeries::new(vec![rec(5, 1, 1, 1.0), rec(6, 2, 2, 2.0)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.drive(), DriveId(1));
    }

    #[test]
    fn derived_series() {
        let s = HourSeries::new(vec![
            rec(0, 10, 10, 360.0),
            rec(1, 0, 0, 0.0),
            rec(2, 5, 15, 1800.0),
        ])
        .unwrap();
        assert_eq!(s.operations_series(), vec![20.0, 0.0, 20.0]);
        assert_eq!(s.utilization_series(), vec![0.1, 0.0, 0.5]);
        let wf = s.write_fraction_series();
        assert!((wf[0].unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(wf[1], None);
        assert!((wf[2].unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(s.total_operations(), 40);
        assert!((s.mean_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn longest_saturated_run_counts_consecutive_hours() {
        let mk = |busy: f64, hour: u32| rec(hour, 1, 1, busy);
        // Utilizations: 1.0, 1.0, 0.1, 1.0, 1.0, 1.0.
        let s = HourSeries::new(vec![
            mk(3600.0, 0),
            mk(3600.0, 1),
            mk(360.0, 2),
            mk(3600.0, 3),
            mk(3600.0, 4),
            mk(3600.0, 5),
        ])
        .unwrap();
        assert_eq!(s.longest_saturated_run(0.95), 3);
        assert_eq!(s.longest_saturated_run(0.05), 6);
        assert_eq!(s.longest_saturated_run(1.01), 0);
    }

    #[test]
    fn iteration() {
        let s = HourSeries::new(vec![rec(0, 1, 1, 1.0), rec(1, 2, 2, 2.0)]).unwrap();
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
        assert_eq!(s.records().len(), 2);
    }
}
