//! Disk-level trace data model and I/O.
//!
//! The paper characterizes three sets of traces that differ in the
//! granularity of the recorded information; this crate defines one record
//! type per granularity plus the codecs to store and stream them:
//!
//! * [`Request`] — the **Millisecond** traces: one record per disk request
//!   with nanosecond arrival time, logical block address, length, and
//!   direction.
//! * [`HourRecord`] — the **Hour** traces: per-drive, per-hour activity
//!   counters (reads, writes, sectors moved, busy time) as collected by
//!   drive-resident monitoring over weeks.
//! * [`LifetimeRecord`] — the **Lifetime** traces: cumulative per-drive
//!   counters over the drive's entire deployment, available for every
//!   member of a drive family.
//!
//! Codecs: a line-oriented text format ([`text`]) for interoperability and
//! a compact binary format ([`binary`]) for large request streams. Stream
//! transformations (time-window slicing, per-drive splitting, merging)
//! live in [`transform`].
//!
//! # Example
//!
//! ```
//! use spindle_trace::{Request, OpKind, DriveId};
//!
//! let r = Request::new(1_500_000, DriveId(0), OpKind::Read, 2048, 16).unwrap();
//! assert_eq!(r.bytes(), 16 * 512);
//! assert_eq!(r.end_lba(), 2064);
//! assert!((r.arrival_secs() - 0.0015).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anonymize;
pub mod binary;
pub mod csv;
pub mod hour;
pub mod lifetime;
pub mod meta;
pub mod request;
pub mod text;
pub mod transform;

mod error;

pub use error::{SkipReport, TraceError, SKIP_SAMPLE_MAX};
pub use hour::{HourRecord, HourSeries};
pub use lifetime::LifetimeRecord;
pub use meta::{Granularity, TraceMeta};
pub use request::{DriveId, OpKind, Request, SECTOR_BYTES};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TraceError>;
