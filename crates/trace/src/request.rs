//! Per-request (millisecond-granularity) trace records.

use crate::{Result, TraceError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per logical sector. Enterprise drives of the paper's era use
/// 512-byte logical sectors.
pub const SECTOR_BYTES: u64 = 512;

/// Identifier of a drive within a trace set.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DriveId(pub u32);

impl fmt::Display for DriveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drive-{}", self.0)
    }
}

impl From<u32> for DriveId {
    fn from(v: u32) -> Self {
        DriveId(v)
    }
}

/// Direction of a disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Data flows from the medium to the host.
    Read,
    /// Data flows from the host to the medium.
    Write,
}

impl OpKind {
    /// Single-character code used by the text trace format (`R`/`W`).
    pub fn code(self) -> char {
        match self {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        }
    }

    /// Parses the single-character code, accepting lower case.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] for anything but `R`/`W`.
    pub fn from_code(c: char) -> Result<Self> {
        match c {
            'R' | 'r' => Ok(OpKind::Read),
            'W' | 'w' => Ok(OpKind::Write),
            other => Err(TraceError::InvalidRecord {
                reason: format!("unknown op code {other:?} (expected R or W)"),
            }),
        }
    }

    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, OpKind::Read)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("read"),
            OpKind::Write => f.write_str("write"),
        }
    }
}

/// One disk request as recorded in the Millisecond traces: arrival time,
/// target drive, direction, start LBA, and length in sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in nanoseconds from the trace origin.
    pub arrival_ns: u64,
    /// Drive the request targets.
    pub drive: DriveId,
    /// Read or write.
    pub op: OpKind,
    /// First logical block address touched.
    pub lba: u64,
    /// Number of sectors transferred (non-zero).
    pub sectors: u32,
}

impl Request {
    /// Creates a request, validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if `sectors == 0` or if
    /// `lba + sectors` overflows.
    pub fn new(
        arrival_ns: u64,
        drive: DriveId,
        op: OpKind,
        lba: u64,
        sectors: u32,
    ) -> Result<Self> {
        if sectors == 0 {
            return Err(TraceError::InvalidRecord {
                reason: "request must transfer at least one sector".into(),
            });
        }
        if lba.checked_add(sectors as u64).is_none() {
            return Err(TraceError::InvalidRecord {
                reason: "request extends past the addressable LBA range".into(),
            });
        }
        Ok(Request {
            arrival_ns,
            drive,
            op,
            lba,
            sectors,
        })
    }

    /// Arrival time in seconds from the trace origin.
    pub fn arrival_secs(&self) -> f64 {
        self.arrival_ns as f64 / 1e9
    }

    /// Bytes transferred by this request.
    pub fn bytes(&self) -> u64 {
        self.sectors as u64 * SECTOR_BYTES
    }

    /// First LBA past the end of the transfer.
    pub fn end_lba(&self) -> u64 {
        self.lba + self.sectors as u64
    }

    /// Whether this request starts exactly where `prev` ended — the
    /// sequentiality criterion used in access-pattern analysis.
    pub fn is_sequential_after(&self, prev: &Request) -> bool {
        self.drive == prev.drive && self.lba == prev.end_lba()
    }

    /// Whether the LBA ranges of the two requests overlap (same drive
    /// only).
    pub fn overlaps(&self, other: &Request) -> bool {
        self.drive == other.drive && self.lba < other.end_lba() && other.lba < self.end_lba()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(Request::new(0, DriveId(0), OpKind::Read, 0, 0).is_err());
        assert!(Request::new(0, DriveId(0), OpKind::Read, u64::MAX, 2).is_err());
        assert!(Request::new(0, DriveId(0), OpKind::Read, 0, 1).is_ok());
    }

    #[test]
    fn derived_quantities() {
        let r = Request::new(2_000_000_000, DriveId(3), OpKind::Write, 100, 8).unwrap();
        assert_eq!(r.bytes(), 4096);
        assert_eq!(r.end_lba(), 108);
        assert!((r.arrival_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sequentiality_requires_same_drive_and_adjacency() {
        let a = Request::new(0, DriveId(0), OpKind::Read, 100, 8).unwrap();
        let b = Request::new(1, DriveId(0), OpKind::Read, 108, 8).unwrap();
        let c = Request::new(2, DriveId(1), OpKind::Read, 116, 8).unwrap();
        let d = Request::new(3, DriveId(0), OpKind::Read, 200, 8).unwrap();
        assert!(b.is_sequential_after(&a));
        assert!(!c.is_sequential_after(&b));
        assert!(!d.is_sequential_after(&b));
    }

    #[test]
    fn overlap_detection() {
        let a = Request::new(0, DriveId(0), OpKind::Write, 100, 10).unwrap();
        let b = Request::new(0, DriveId(0), OpKind::Read, 105, 10).unwrap();
        let c = Request::new(0, DriveId(0), OpKind::Read, 110, 10).unwrap();
        let d = Request::new(0, DriveId(1), OpKind::Read, 105, 10).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c)); // adjacent, not overlapping
        assert!(!a.overlaps(&d)); // different drive
    }

    #[test]
    fn op_codes_roundtrip() {
        assert_eq!(OpKind::from_code('R').unwrap(), OpKind::Read);
        assert_eq!(OpKind::from_code('w').unwrap(), OpKind::Write);
        assert!(OpKind::from_code('X').is_err());
        assert_eq!(OpKind::Read.code(), 'R');
        assert_eq!(OpKind::Write.code(), 'W');
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Write.is_read());
    }

    #[test]
    fn display_formats() {
        assert_eq!(DriveId(7).to_string(), "drive-7");
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Write.to_string(), "write");
    }
}
