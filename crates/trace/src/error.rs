use std::fmt;
use std::io;

/// Error type for trace construction, parsing, and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying I/O failure while reading or writing a trace.
    Io(io::Error),
    /// A text-format line could not be parsed.
    Parse {
        /// 1-based line number within the input.
        line: u64,
        /// What went wrong.
        reason: String,
    },
    /// The binary stream did not start with the expected magic bytes.
    BadMagic,
    /// The binary stream declares an unsupported format version.
    UnsupportedVersion(u16),
    /// The binary stream ended in the middle of a record.
    TruncatedRecord,
    /// A record violated a structural invariant (zero-length request,
    /// out-of-order arrival, inconsistent counters, …).
    InvalidRecord {
        /// Description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            TraceError::BadMagic => write!(f, "not a spindle binary trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary trace version {v}")
            }
            TraceError::TruncatedRecord => write!(f, "binary trace ends mid-record"),
            TraceError::InvalidRecord { reason } => write!(f, "invalid record: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::Parse {
            line: 17,
            reason: "expected 5 fields".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("5 fields"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = TraceError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
