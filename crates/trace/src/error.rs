use std::fmt;
use std::io;

/// Error type for trace construction, parsing, and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying I/O failure while reading or writing a trace.
    Io(io::Error),
    /// A text-format line could not be parsed.
    Parse {
        /// 1-based line number within the input.
        line: u64,
        /// What went wrong.
        reason: String,
    },
    /// The binary stream did not start with the expected magic bytes.
    BadMagic,
    /// The binary stream declares an unsupported format version.
    UnsupportedVersion(u16),
    /// The binary stream ended in the middle of a record.
    TruncatedRecord,
    /// A record violated a structural invariant (zero-length request,
    /// out-of-order arrival, inconsistent counters, …).
    InvalidRecord {
        /// Description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            TraceError::BadMagic => write!(f, "not a spindle binary trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary trace version {v}")
            }
            TraceError::TruncatedRecord => write!(f, "binary trace ends mid-record"),
            TraceError::InvalidRecord { reason } => write!(f, "invalid record: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl TraceError {
    /// True for errors scoped to a single record — the kind a lenient
    /// reader may skip. I/O and container-level errors (bad magic,
    /// wrong version) are never record-level: skipping past them would
    /// silently misread everything that follows.
    #[must_use]
    pub fn is_record_level(&self) -> bool {
        matches!(
            self,
            TraceError::Parse { .. } | TraceError::InvalidRecord { .. }
        )
    }
}

/// Upper bound on the line numbers a [`SkipReport`] retains; the count
/// keeps climbing past it.
pub const SKIP_SAMPLE_MAX: usize = 8;

/// What a lenient reader dropped: a total count plus a bounded sample
/// of offending line numbers (first [`SKIP_SAMPLE_MAX`], so the report
/// stays O(1) even on a pathologically corrupt multi-gigabyte trace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkipReport {
    /// Number of records skipped.
    pub skipped: u64,
    /// 1-based line numbers of the first skipped records.
    pub sample_lines: Vec<u64>,
}

impl SkipReport {
    pub(crate) fn note(&mut self, line: u64) {
        if self.sample_lines.len() < SKIP_SAMPLE_MAX {
            self.sample_lines.push(line);
        }
        self.skipped += 1;
    }

    /// True when nothing was skipped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.skipped == 0
    }
}

impl fmt::Display for SkipReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no records skipped");
        }
        let lines: Vec<String> = self.sample_lines.iter().map(u64::to_string).collect();
        let ellipsis = if (self.skipped as usize) > self.sample_lines.len() {
            ", …"
        } else {
            ""
        };
        write!(
            f,
            "skipped {} malformed record{} (line{} {}{})",
            self.skipped,
            if self.skipped == 1 { "" } else { "s" },
            if self.skipped == 1 { "" } else { "s" },
            lines.join(", "),
            ellipsis
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::Parse {
            line: 17,
            reason: "expected 5 fields".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("5 fields"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = TraceError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }

    #[test]
    fn record_level_classification() {
        assert!(TraceError::Parse {
            line: 1,
            reason: "x".into()
        }
        .is_record_level());
        assert!(TraceError::InvalidRecord { reason: "x".into() }.is_record_level());
        assert!(!TraceError::BadMagic.is_record_level());
        assert!(!TraceError::TruncatedRecord.is_record_level());
        assert!(!TraceError::from(io::Error::other("x")).is_record_level());
    }

    #[test]
    fn skip_report_bounds_its_sample() {
        let mut rep = SkipReport::default();
        assert!(rep.is_empty());
        assert_eq!(rep.to_string(), "no records skipped");
        for line in 1..=20 {
            rep.note(line);
        }
        assert_eq!(rep.skipped, 20);
        assert_eq!(rep.sample_lines.len(), SKIP_SAMPLE_MAX);
        assert_eq!(rep.sample_lines[0], 1);
        let text = rep.to_string();
        assert!(text.contains("skipped 20"), "{text}");
        assert!(text.contains('…'), "sample truncation is visible: {text}");
    }
}
