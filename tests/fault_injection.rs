//! Panic isolation under injected faults, end to end: a worker panic
//! at a fixed ordinal must quarantine exactly that experiment while
//! every other shard completes, and the surviving output must be
//! byte-identical to a fault-free run at every `--jobs` value.

use spindle_bench::{matrix, ExpConfig};
use spindle_engine::Pool;
use std::sync::{Arc, Mutex, OnceLock};

/// The installed fault plan is process-global, so tests that install
/// one must not overlap.
fn plan_slot() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A reduced-scale config: small enough to run the matrix many times,
/// large enough that every experiment produces real content.
fn tiny() -> ExpConfig {
    let mut cfg = ExpConfig::quick();
    cfg.ms_span_secs = 300.0;
    cfg.hour_weeks = 2;
    cfg.family_drives = 12;
    cfg
}

fn ids(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| (*s).to_owned()).collect()
}

fn concat_outputs(results: &[matrix::MatrixResult]) -> String {
    let mut out = String::new();
    for res in results {
        out.push_str(res.output.as_ref().expect("surviving output"));
        out.push('\n');
    }
    out
}

#[test]
fn injected_panic_quarantines_one_shard_at_every_pool_width() {
    let _guard = plan_slot();
    let cfg = tiny();
    let ids = ids(&["t1", "t2", "t3", "t5"]);
    const VICTIM: usize = 2; // ids[2] == "t3"

    // Fault-free baseline of the survivors only.
    let survivors = [&ids[0], &ids[1], &ids[3]];
    let baseline: String = survivors
        .iter()
        .map(|id| matrix::run_one(id, &cfg).expect("baseline run") + "\n")
        .collect();

    for jobs in [1, 2, 8] {
        let plan = spindle_harden::FaultPlan::parse(&format!("panic@{VICTIM}")).unwrap();
        spindle_harden::install(Arc::new(plan));
        let outcome = matrix::run_matrix_isolated(&ids, &cfg, &Pool::new(jobs), |_| {});
        spindle_harden::uninstall();

        // Exactly the injected shard failed, and the report names it.
        assert_eq!(outcome.failures.len(), 1, "--jobs {jobs}");
        let failure = &outcome.failures[0];
        assert_eq!(failure.ordinal, VICTIM, "--jobs {jobs}");
        assert!(
            failure.payload.contains("injected fault"),
            "--jobs {jobs}: payload was {:?}",
            failure.payload
        );
        let report = failure.to_string();
        assert!(
            report.contains(&format!("shard {VICTIM} panicked")),
            "--jobs {jobs}: report was {report:?}"
        );

        // Every other shard completed, in request order, byte-identical
        // to the fault-free run.
        let survivor_ids: Vec<&str> = outcome.results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(survivor_ids, ["t1", "t2", "t5"], "--jobs {jobs}");
        assert_eq!(
            concat_outputs(&outcome.results),
            baseline,
            "--jobs {jobs}: surviving output diverged from the fault-free run"
        );
    }
}

#[test]
fn fault_free_isolated_matrix_matches_the_plain_matrix() {
    let _guard = plan_slot();
    spindle_harden::uninstall();
    let cfg = tiny();
    let ids = ids(&["t2", "t1", "f2"]);
    let pool = Pool::new(2);

    let plain = matrix::run_matrix(&ids, &cfg, &pool);
    let mut seen = Vec::new();
    let outcome = matrix::run_matrix_isolated(&ids, &cfg, &pool, |r| seen.push(r.id.clone()));

    assert!(outcome.failures.is_empty());
    assert_eq!(
        concat_outputs(&outcome.results),
        concat_outputs(&plain),
        "isolation layer changed fault-free output"
    );
    // The completion hook observed every shard in request order.
    assert_eq!(seen, ids);
}

#[test]
fn every_shard_panicking_still_drains_the_matrix() {
    let _guard = plan_slot();
    let cfg = tiny();
    let ids = ids(&["t1", "t2"]);

    let plan = spindle_harden::FaultPlan::parse("panic@0,panic@1").unwrap();
    spindle_harden::install(Arc::new(plan));
    let outcome = matrix::run_matrix_isolated(&ids, &cfg, &Pool::new(2), |_| {});
    spindle_harden::uninstall();

    assert!(outcome.results.is_empty());
    let ordinals: Vec<usize> = outcome.failures.iter().map(|f| f.ordinal).collect();
    assert_eq!(ordinals, [0, 1]);
}
