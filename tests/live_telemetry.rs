//! Live telemetry scraped from a real `experiments --serve` run.
//!
//! Spawns the actual binary with `--serve 127.0.0.1:0`, discovers the
//! bound port from the stderr announcement, and exercises the HTTP
//! endpoints while (and just after) the matrix runs: `/metrics` must
//! pass the shared Prometheus exposition checker, `/healthz` must
//! answer, and `/status` must report the run's progress as JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

/// Spawns `experiments` with `--serve 127.0.0.1:0` plus `args`, reads
/// stderr until the bind announcement, and returns the child plus the
/// bound address. A generous linger keeps the endpoint alive after the
/// (quick) run finishes so scrapes cannot race completion.
fn spawn_serving(args: &[&str]) -> (Child, String, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(bin())
        .args(["--quick", "--serve", "127.0.0.1:0"])
        .args(args)
        .env_remove("SPINDLE_FAULTS")
        .env("SPINDLE_SERVE_LINGER_MS", "20000")
        // Unread stdout could fill the pipe and stall the child; this
        // test only cares about the telemetry side channel.
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn experiments binary");
    let stderr = child.stderr.take().expect("stderr is piped");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut seen = String::new();
    for _ in 0..100 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stderr") == 0 {
            break;
        }
        seen.push_str(&line);
        if let Some(rest) = line.trim().strip_prefix("# serving telemetry on http://") {
            addr = Some(rest.trim().to_owned());
            break;
        }
    }
    let addr = addr.unwrap_or_else(|| panic!("no bind announcement in stderr:\n{seen}"));
    (child, addr, reader)
}

/// One blocking HTTP GET against the embedded server; returns
/// (status-line, headers, body).
fn get(addr: &str, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_owned(), headers.to_owned(), body.to_owned())
}

#[test]
fn metrics_endpoint_serves_valid_exposition_from_a_live_run() {
    let (child, addr, stderr) = spawn_serving(&["t2", "t3", "f1", "f5"]);

    // /healthz answers while the run is live.
    let (status, _, body) = get(&addr, "/healthz");
    assert!(status.contains("200"), "healthz: {status}");
    assert_eq!(body, "ok\n");

    // /metrics passes the same structural checker the encoder's unit
    // tests use, and carries the run's own metric families.
    let (status, headers, body) = get(&addr, "/metrics");
    assert!(status.contains("200"), "metrics: {status}");
    assert!(
        headers.contains(spindle_obs::prom::CONTENT_TYPE),
        "wrong content type:\n{headers}"
    );
    spindle_obs::prom::check_exposition(&body)
        .unwrap_or_else(|e| panic!("invalid /metrics exposition: {e}\n{body}"));

    // /status is JSON with the run's phase and progress.
    let (status, headers, body) = get(&addr, "/status");
    assert!(status.contains("200"), "status: {status}");
    assert!(headers.contains("application/json"), "{headers}");
    let json = spindle_obs::json::parse(&body).expect("status parses as JSON");
    assert_eq!(json.get("total").and_then(|v| v.as_u64()), Some(4));
    assert!(json.get("phase").and_then(|v| v.as_str()).is_some());
    assert!(json.get("completed").and_then(|v| v.as_u64()).is_some());

    // Unknown paths 404 without killing the server.
    let (status, _, _) = get(&addr, "/nope");
    assert!(status.contains("404"), "{status}");

    // After the matrix drains, a final scrape still works (linger) and
    // reports the full completion count.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let (_, _, body) = get(&addr, "/status");
        let json = spindle_obs::json::parse(&body).expect("status parses as JSON");
        let completed = json.get("completed").and_then(|v| v.as_u64()).unwrap_or(0);
        if completed == 4 {
            let (_, _, metrics) = get(&addr, "/metrics");
            spindle_obs::prom::check_exposition(&metrics)
                .unwrap_or_else(|e| panic!("invalid final exposition: {e}"));
            assert!(
                metrics.contains("matrix_completed 4"),
                "progress counter missing from final scrape:\n{metrics}"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "run never completed; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // The run is done and scraped; don't sit out the linger window.
    let mut child = child;
    child.kill().ok();
    child.wait().expect("reap experiments");
    drop(stderr);
}

#[test]
fn serve_announces_bound_port_and_exits_cleanly_without_linger() {
    let out = Command::new(bin())
        .args(["--quick", "--serve", "127.0.0.1:0", "t1"])
        .env_remove("SPINDLE_FAULTS")
        .env("SPINDLE_SERVE_LINGER_MS", "0")
        .output()
        .expect("run experiments binary");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "{stderr}");
    assert!(
        stderr.contains("# serving telemetry on http://127.0.0.1:"),
        "no bind announcement:\n{stderr}"
    );
    // The announcement must not leak onto stdout.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains("serving telemetry"), "{stdout}");
}
