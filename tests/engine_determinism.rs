//! The engine's determinism contract, end to end: the experiment
//! matrix must render byte-identical artifacts for every `--jobs`
//! value, with or without metrics attached.

use spindle_bench::{matrix, ExpConfig};
use spindle_engine::{Pool, PoolMetrics};
use spindle_obs::MetricsRegistry;

/// A reduced-scale config: small enough to run the whole matrix three
/// times, large enough that every experiment produces real content.
fn tiny() -> ExpConfig {
    let mut cfg = ExpConfig::quick();
    cfg.ms_span_secs = 300.0;
    cfg.hour_weeks = 2;
    cfg.family_drives = 12;
    cfg
}

/// Renders the full matrix through a pool and concatenates the
/// artifacts in table order.
fn render(pool: &Pool) -> String {
    let ids: Vec<String> = matrix::EXPERIMENTS
        .iter()
        .map(|(id, _)| (*id).to_owned())
        .collect();
    let cfg = tiny();
    let mut out = String::new();
    for res in matrix::run_matrix(&ids, &cfg, pool) {
        let body = res
            .output
            .unwrap_or_else(|e| panic!("{} failed: {e}", res.id));
        out.push_str(&body);
        out.push('\n');
    }
    out
}

#[test]
fn matrix_artifacts_are_byte_identical_across_jobs() {
    let sequential = render(&Pool::new(1));
    assert!(!sequential.is_empty());
    for jobs in [2, 8] {
        let parallel = render(&Pool::new(jobs));
        assert_eq!(
            sequential, parallel,
            "experiment artifacts differ between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn engine_metrics_do_not_change_artifacts() {
    let plain = render(&Pool::new(2));
    let registry: &'static MetricsRegistry = Box::leak(Box::new(MetricsRegistry::new()));
    let observed = render(&Pool::new(2).metrics(PoolMetrics::new(registry)));
    assert_eq!(plain, observed, "attaching engine counters changed output");

    // The counters themselves did land in the registry.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("engine.tasks_executed"),
        Some(matrix::EXPERIMENTS.len() as u64)
    );
    let per_worker: u64 = (0..2)
        .map(|w| {
            snap.counter(&format!("engine.worker.{w}.tasks_executed"))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(per_worker, matrix::EXPERIMENTS.len() as u64);
    assert!(snap.span("engine.map").is_some());
}
