//! Cross-crate round-trip: synthetic traces survive both codecs byte-
//! for-byte, and simulation results are identical regardless of the
//! storage format used in between.

use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_synth::presets::Environment;
use spindle_trace::transform::{split_by_drive, validate_sorted};
use spindle_trace::{binary, text, Request};

fn sample_trace() -> Vec<Request> {
    Environment::Web.spec(300.0).generate(77).unwrap()
}

#[test]
fn text_roundtrip_preserves_synthetic_traces() {
    let requests = sample_trace();
    let mut buf = Vec::new();
    text::write_requests(&mut buf, &requests).unwrap();
    let back = text::read_requests(buf.as_slice()).unwrap();
    assert_eq!(requests, back);
}

#[test]
fn binary_roundtrip_preserves_synthetic_traces() {
    let requests = sample_trace();
    let mut buf = Vec::new();
    binary::write_requests(&mut buf, &requests).unwrap();
    let back = binary::read_requests(buf.as_slice()).unwrap();
    assert_eq!(requests, back);
}

#[test]
fn binary_format_is_smaller_than_text() {
    let requests = sample_trace();
    let mut tbuf = Vec::new();
    text::write_requests(&mut tbuf, &requests).unwrap();
    let bbuf = binary::encode_requests(&requests);
    assert!(
        bbuf.len() < tbuf.len(),
        "binary {} bytes !< text {} bytes",
        bbuf.len(),
        tbuf.len()
    );
}

#[test]
fn simulation_is_identical_across_codecs() {
    let requests = sample_trace();
    let mut tbuf = Vec::new();
    text::write_requests(&mut tbuf, &requests).unwrap();
    let from_text = text::read_requests(tbuf.as_slice()).unwrap();
    let bbuf = binary::encode_requests(&requests);
    let from_binary = binary::decode_requests(&bbuf).unwrap();

    let run = |reqs: &[Request]| {
        DiskSim::new(DriveProfile::savvio_10k(), SimConfig::default())
            .run(reqs)
            .unwrap()
    };
    let a = run(&from_text);
    let b = run(&from_binary);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.busy, b.busy);
    assert_eq!(a.destages, b.destages);
}

#[test]
fn generated_traces_satisfy_stream_invariants() {
    for env in Environment::all() {
        let requests = env.spec(200.0).generate(5).unwrap();
        validate_sorted(&requests).unwrap();
        let split = split_by_drive(&requests);
        assert_eq!(split.len(), 1, "{env} uses a single drive");
        for r in &requests {
            assert!(r.sectors > 0);
        }
    }
}
