//! Integration: a full generate → simulate pipeline run with
//! observability enabled must account for every request, both in the
//! metrics registry and in the event log, and the JSON export of that
//! registry must round-trip through the parser.

use spindle_bench::pipeline::EnvRun;
use spindle_bench::ExpConfig;
use spindle_disk::sim::SimConfig;
use spindle_obs::json::{self, Json};
use spindle_obs::sink::{JsonSink, MetricsSink};
use spindle_obs::{EventKind, MetricsRegistry, ObsConfig};
use spindle_synth::presets::Environment;
use spindle_trace::OpKind;

fn observed_run(env: Environment) -> (EnvRun, MetricsRegistry) {
    let mut cfg = ExpConfig::quick();
    cfg.ms_span_secs = 120.0;
    // Size the ring so the full event stream of this short run fits
    // without wrapping — the counting assertions need every event.
    let obs_cfg = ObsConfig {
        metrics: true,
        events: true,
        event_capacity: 1 << 20,
    };
    let registry = MetricsRegistry::new();
    let run = EnvRun::observed(env, &cfg, SimConfig::default(), &obs_cfg, &registry)
        .expect("observed pipeline run succeeds");
    (run, registry)
}

#[test]
fn registry_accounts_for_every_request() {
    for env in [Environment::Mail, Environment::Web] {
        let (run, registry) = observed_run(env);
        let snap = registry.snapshot();
        let total = run.requests.len() as u64;
        assert!(total > 0, "{env}: empty run proves nothing");

        assert_eq!(
            snap.counter("disk.requests_completed"),
            Some(total),
            "{env}: every request must be counted exactly once"
        );

        let reads_issued = run.requests.iter().filter(|r| r.op == OpKind::Read).count() as u64;
        let hits = snap.counter("disk.read_hits").unwrap_or(0);
        let misses = snap.counter("disk.read_misses").unwrap_or(0);
        assert_eq!(
            hits + misses,
            reads_issued,
            "{env}: cache hits + misses must equal reads issued"
        );
        // Cross-check against the simulator's own accounting.
        assert_eq!(hits, run.sim.read_hits, "{env}");
        assert_eq!(misses, run.sim.read_misses, "{env}");

        let writes_issued = total - reads_issued;
        assert_eq!(
            snap.counter("disk.writes_cached").unwrap_or(0)
                + snap.counter("disk.writes_forced").unwrap_or(0),
            writes_issued,
            "{env}: every write is either cached or forced"
        );

        let resp = snap
            .histogram("disk.response_us")
            .expect("response histogram present");
        assert_eq!(resp.count, total, "{env}: one response sample per request");
        let depth = snap
            .histogram("disk.queue_depth")
            .expect("queue-depth histogram present");
        assert_eq!(depth.count, total, "{env}: one depth sample per dispatch");

        // Per-stage spans were timed.
        for stage in ["pipeline.generate", "pipeline.simulate"] {
            let s = snap
                .span(stage)
                .unwrap_or_else(|| panic!("{env}: missing span {stage}"));
            assert_eq!(s.count, 1, "{env}: {stage} runs once");
        }
    }
}

#[test]
fn event_log_is_consistent_with_the_metrics() {
    let (run, registry) = observed_run(Environment::Web);
    let snap = registry.snapshot();
    let log = run.events.expect("event tracing was enabled");
    assert_eq!(
        log.total_recorded(),
        log.len() as u64,
        "ring must not have wrapped for the counting assertions below"
    );
    let events = log.snapshot();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
    let total = run.requests.len() as u64;

    assert_eq!(count(EventKind::RequestEnqueue), total);
    assert_eq!(count(EventKind::RequestDispatch), total);
    assert_eq!(count(EventKind::RequestComplete), total);
    assert_eq!(
        count(EventKind::CacheHit),
        snap.counter("disk.read_hits").unwrap_or(0)
            + snap.counter("disk.writes_cached").unwrap_or(0)
    );
    assert_eq!(
        count(EventKind::CacheMiss),
        snap.counter("disk.read_misses").unwrap_or(0)
            + snap.counter("disk.writes_forced").unwrap_or(0)
    );
    assert_eq!(
        count(EventKind::Destage),
        snap.counter("disk.destages").unwrap_or(0)
    );
    assert_eq!(count(EventKind::IdleBegin), count(EventKind::IdleEnd));

    // Timestamps come out of the ring oldest-first.
    for w in events.windows(2) {
        assert!(
            w[1].t_ns >= w[0].t_ns || w[1].kind == EventKind::RequestEnqueue,
            "non-enqueue events are emitted in simulation-time order"
        );
    }
}

#[test]
fn json_export_of_a_real_run_round_trips() {
    let (run, registry) = observed_run(Environment::Mail);
    let text = JsonSink
        .export_string(&registry.snapshot())
        .expect("export succeeds");
    let doc = json::parse(text.trim()).expect("export is valid JSON");

    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("disk.requests_completed"))
            .and_then(Json::as_u64),
        Some(run.requests.len() as u64)
    );
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("disk.response_us"))
        .expect("response-time histogram exported");
    let p50 = hist.get("p50").and_then(Json::as_f64).unwrap();
    let p95 = hist.get("p95").and_then(Json::as_f64).unwrap();
    let p99 = hist.get("p99").and_then(Json::as_f64).unwrap();
    assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
    assert!(doc
        .get("spans")
        .and_then(|s| s.get("pipeline.simulate"))
        .is_some());
    // Re-emitting the parsed document is a fixed point.
    assert_eq!(json::parse(&doc.to_string()).unwrap(), doc);
}

#[test]
fn disabled_observability_changes_nothing() {
    let mut cfg = ExpConfig::quick();
    cfg.ms_span_secs = 60.0;
    // Dev's session gate can draw a single off-sojourn covering a span
    // this short; this seed is known to produce traffic within 60s.
    cfg.seed = 20091;
    let registry = MetricsRegistry::new();
    let plain = EnvRun::new(Environment::Dev, &cfg).unwrap();
    let observed = EnvRun::observed(
        Environment::Dev,
        &cfg,
        SimConfig::default(),
        &ObsConfig::enabled(),
        &registry,
    )
    .unwrap();
    assert_eq!(plain.requests, observed.requests);
    assert_eq!(plain.sim.completed, observed.sim.completed);
    assert_eq!(plain.sim.busy, observed.sim.busy);
    assert!(plain.events.is_none());
}
