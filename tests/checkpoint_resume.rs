//! Checkpoint/resume for the experiment matrix, exercised through the
//! real `experiments` binary: a run killed mid-matrix by an injected
//! `kill@N` fault must, after `--resume`, re-run only the incomplete
//! experiments and produce stdout byte-identical to an uninterrupted
//! run.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Exit status the binary uses for an injected kill (looks like
/// SIGKILL, so resume exercises the real path).
const KILL_STATUS: i32 = 137;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .env_remove("SPINDLE_FAULTS")
        .output()
        .expect("spawn experiments binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

/// A scratch journal path unique to this test process.
fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spindle-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}.jsonl"))
}

#[test]
fn killed_run_resumes_to_byte_identical_output() {
    let journal = journal_path("kill-resume");
    let _ = std::fs::remove_file(&journal);
    let journal = journal.to_str().unwrap();

    // Uninterrupted baseline.
    let baseline = run(&["--quick", "t1", "t2", "t3"]);
    assert!(baseline.status.success(), "baseline: {}", stderr(&baseline));
    let expected = stdout(&baseline);
    assert!(!expected.is_empty());

    // Journaled run, killed right after the second completion record
    // reaches the disk.
    let killed = run(&[
        "--quick", "--resume", journal, "--faults", "kill@1", "t1", "t2", "t3",
    ]);
    assert_eq!(
        killed.status.code(),
        Some(KILL_STATUS),
        "expected the injected kill: {}",
        stderr(&killed)
    );

    // Resume: replays the two journaled experiments, runs only the
    // third, and reproduces the uninterrupted stdout byte for byte.
    let resumed = run(&["--quick", "--resume", journal, "t1", "t2", "t3"]);
    assert!(resumed.status.success(), "resume: {}", stderr(&resumed));
    assert_eq!(
        stdout(&resumed),
        expected,
        "resumed stdout diverged from the uninterrupted run"
    );
    assert!(
        stderr(&resumed).contains("2 of 3 experiments already journaled, running 1"),
        "resume accounting missing: {}",
        stderr(&resumed)
    );

    // A second resume finds everything journaled and re-runs nothing,
    // still reproducing the same stdout.
    let replay = run(&["--quick", "--resume", journal, "t1", "t2", "t3"]);
    assert!(replay.status.success(), "replay: {}", stderr(&replay));
    assert_eq!(stdout(&replay), expected);
    assert!(
        stderr(&replay).contains("3 of 3 experiments already journaled, running 0"),
        "replay accounting missing: {}",
        stderr(&replay)
    );
}

#[test]
fn quarantined_experiment_is_retried_on_resume() {
    let journal = journal_path("retry-failed");
    let _ = std::fs::remove_file(&journal);
    let journal = journal.to_str().unwrap();

    let baseline = run(&["--quick", "t1", "t2"]);
    assert!(baseline.status.success());
    let expected = stdout(&baseline);

    // First attempt: t2 (ordinal 1) panics and is journaled as failed.
    let faulted = run(&[
        "--quick", "--resume", journal, "--faults", "panic@1", "t1", "t2",
    ]);
    assert_eq!(faulted.status.code(), Some(1));
    assert!(
        stderr(&faulted).contains("t2 FAILED"),
        "quarantine report missing: {}",
        stderr(&faulted)
    );

    // Resume: the failed experiment is re-run (failed journal entries
    // never count as complete), and the output now matches a clean run.
    let resumed = run(&["--quick", "--resume", journal, "t1", "t2"]);
    assert!(resumed.status.success(), "resume: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed), expected);
    assert!(
        stderr(&resumed).contains("1 of 2 experiments already journaled, running 1"),
        "only t2 should re-run: {}",
        stderr(&resumed)
    );
}

#[test]
fn mismatched_journal_fingerprint_refuses_to_resume() {
    let journal = journal_path("fingerprint");
    let _ = std::fs::remove_file(&journal);
    let journal = journal.to_str().unwrap();

    let first = run(&["--quick", "--resume", journal, "t1"]);
    assert!(first.status.success(), "first run: {}", stderr(&first));

    // Same journal, different config fingerprint (paper scale instead
    // of --quick): resuming would mix incompatible outputs.
    let clash = run(&["--resume", journal, "t1"]);
    assert_eq!(clash.status.code(), Some(2));
    assert!(
        stderr(&clash).contains("cannot resume"),
        "fingerprint clash not reported: {}",
        stderr(&clash)
    );
}
