//! End-to-end tests of the simulation-as-a-service daemon through the
//! real `spindle` binary: admission control under concurrency,
//! byte-identical artifacts, kill -9 crash recovery, fault-job
//! quarantine, a DELETE-vs-completion race, supervision (deadlines
//! and retries) over real children, and a 100-client load test.

#![cfg(unix)]

use spindle_obs::json::{self, Json};
use spindle_serve::client;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn spindle_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_spindle"))
}

/// The sibling `experiments` binary when the workspace build produced
/// one; matrix jobs need it.
fn experiments_bin() -> Option<PathBuf> {
    let path = spindle_bin().parent()?.join("experiments");
    path.is_file().then_some(path)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spindle-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A live `spindle serve` child plus the address it announced.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn boot(extra: &[&str]) -> Daemon {
        let mut child = Command::new(spindle_bin())
            .arg("serve")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("boot serve daemon");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("stderr is utf-8");
            if let Some(addr) = line.strip_prefix("# serving jobs on http://") {
                break addr.to_owned();
            }
        };
        // Keep draining stderr so the child never blocks on the pipe.
        std::thread::spawn(move || for _line in lines {});
        Daemon { child, addr }
    }

    fn get(&self, path: &str) -> client::Response {
        client::request(&self.addr, "GET", path, None).expect("GET against live daemon")
    }

    fn post(&self, path: &str, body: &str) -> client::Response {
        client::request(&self.addr, "POST", path, Some(body)).expect("POST against live daemon")
    }

    fn delete(&self, path: &str) -> client::Response {
        client::request(&self.addr, "DELETE", path, None).expect("DELETE against live daemon")
    }

    /// Submits a job spec, asserting admission, and returns the id.
    fn submit(&self, body: &str) -> String {
        let r = self.post("/jobs", body);
        assert_eq!(r.status, 201, "submit rejected: {}", r.body);
        json::parse(r.body.trim())
            .expect("submit response is JSON")
            .get("id")
            .and_then(Json::as_str)
            .expect("submit response has an id")
            .to_owned()
    }

    /// Polls `/jobs/ID` until the job reaches `state`, returning the
    /// job document. Panics when a different terminal state arrives.
    fn wait_state(&self, id: &str, state: &str) -> Json {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let r = self.get(&format!("/jobs/{id}"));
            assert_eq!(r.status, 200, "job {id} vanished: {}", r.body);
            let doc = json::parse(r.body.trim()).expect("job detail is JSON");
            let now = doc
                .get("state")
                .and_then(Json::as_str)
                .expect("job has a state")
                .to_owned();
            if now == state {
                return doc;
            }
            let terminal = ["done", "failed", "cancelled"];
            assert!(
                !terminal.contains(&now.as_str()),
                "job {id} ended `{now}` while waiting for `{state}`: {}",
                r.body
            );
            assert!(
                Instant::now() < deadline,
                "job {id} stuck in `{now}` waiting for `{state}`"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs the same spec through the CLI directly and returns its stdout.
fn direct_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(spindle_bin())
        .args(args)
        .output()
        .expect("run spindle directly");
    assert!(out.status.success(), "direct run failed: {args:?}");
    out.stdout
}

fn generate_spec(span: u64, seed: u64) -> String {
    format!("{{\"kind\":\"generate\",\"env\":\"web\",\"span\":{span},\"seed\":{seed}}}")
}

#[test]
fn full_queue_rejects_concurrent_submits_and_artifacts_match_the_cli() {
    let dir = fresh_dir("admit");
    let daemon = Daemon::boot(&[
        "--queue-bound",
        "4",
        "--parallel",
        "1",
        "--dir",
        dir.to_str().unwrap(),
    ]);

    // A long blocker pins the single runner so the queue can only
    // drain through admission decisions.
    let blocker = daemon.submit(&generate_spec(604_800, 99));
    daemon.wait_state(&blocker, "running");

    // Eight racing submitters against a bound of 4: exactly four fit.
    let workers: Vec<_> = (0..8u64)
        .map(|i| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                let seed = 100 + i;
                let r = client::request(&addr, "POST", "/jobs", Some(&generate_spec(5, seed)))
                    .expect("concurrent submit");
                (seed, r)
            })
        })
        .collect();
    let mut accepted: Vec<(u64, String)> = Vec::new();
    let mut rejected = 0;
    for worker in workers {
        let (seed, r) = worker.join().expect("submitter thread");
        match r.status {
            201 => {
                let id = json::parse(r.body.trim())
                    .expect("accept body is JSON")
                    .get("id")
                    .and_then(Json::as_str)
                    .expect("accept body has id")
                    .to_owned();
                accepted.push((seed, id));
            }
            429 => {
                // Structured rejection: Retry-After plus a JSON body.
                let retry: u64 = r
                    .header("retry-after")
                    .expect("429 carries Retry-After")
                    .parse()
                    .expect("Retry-After is integral seconds");
                assert!((1..=60).contains(&retry), "bad Retry-After {retry}");
                let doc = json::parse(r.body.trim()).expect("429 body is JSON");
                assert_eq!(doc.get("error").and_then(Json::as_str), Some("queue full"));
                assert!(doc.get("retry_after_secs").and_then(Json::as_u64).is_some());
                rejected += 1;
            }
            other => panic!("unexpected submit status {other}: {}", r.body),
        }
    }
    assert_eq!(accepted.len(), 4, "bound 4 admits exactly 4");
    assert_eq!(rejected, 4);

    // Cancel the blocker; the queue drains through the single runner.
    let r = daemon.delete(&format!("/jobs/{blocker}"));
    assert_eq!(r.status, 202, "running blocker cancels cooperatively");
    daemon.wait_state(&blocker, "cancelled");

    for (seed, id) in &accepted {
        daemon.wait_state(id, "done");
        let r = daemon.get(&format!("/jobs/{id}/result"));
        assert_eq!(r.status, 200);
        let artifact = daemon.get(&format!("/jobs/{id}/artifacts/stdout.txt"));
        assert_eq!(artifact.status, 200);
        // The service's artifact is byte-identical to running the same
        // spec through the CLI directly.
        let direct = direct_stdout(&[
            "generate",
            "--env",
            "web",
            "--span",
            "5",
            "--seed",
            &seed.to_string(),
        ]);
        assert_eq!(
            artifact.body.as_bytes(),
            &direct[..],
            "artifact for seed {seed} diverges from the CLI"
        );
    }

    let metrics = daemon.get("/metrics");
    assert_eq!(metrics.status, 200);
    for needle in [
        "serve_jobs_accepted 5",
        "serve_jobs_rejected 4",
        "serve_jobs_completed 4",
        "serve_jobs_cancelled 1",
    ] {
        assert!(metrics.body.contains(needle), "missing `{needle}`");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_job_then_resume_completes_byte_identical() {
    let dir = fresh_dir("resume");
    let spec = generate_spec(86_400, 7);
    let first = Daemon::boot(&["--parallel", "1", "--dir", dir.to_str().unwrap()]);
    let id = first.submit(&spec);
    first.wait_state(&id, "running");
    std::thread::sleep(Duration::from_millis(200));
    drop(first); // SIGKILL mid-job: no journal finish record is written.

    // A fresh start on a dir with history must refuse without
    // --resume-dir, pointing at the flag.
    let refused = Command::new(spindle_bin())
        .args(["serve", "127.0.0.1:0", "--dir", dir.to_str().unwrap()])
        .output()
        .expect("run serve against dirty dir");
    assert!(!refused.status.success(), "dirty dir must refuse to serve");
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(
        stderr.contains("--resume-dir"),
        "unhelpful refusal: {stderr}"
    );

    let second = Daemon::boot(&["--parallel", "1", "--resume-dir", dir.to_str().unwrap()]);
    let doc = second.wait_state(&id, "done");
    assert_eq!(
        doc.get("readopted"),
        Some(&Json::Bool(true)),
        "resumed job is flagged as re-adopted"
    );
    let artifact = second.get(&format!("/jobs/{id}/artifacts/stdout.txt"));
    assert_eq!(artifact.status, 200);
    let direct = direct_stdout(&["generate", "--env", "web", "--span", "86400", "--seed", "7"]);
    assert_eq!(
        artifact.body.as_bytes(),
        &direct[..],
        "re-run after crash diverges from the CLI"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_jobs_fail_in_quarantine_and_hostile_specs_bounce_while_the_daemon_survives() {
    let dir = fresh_dir("faults");
    let daemon = Daemon::boot(&["--parallel", "1", "--dir", dir.to_str().unwrap()]);

    // Hostile submissions are structured 400s, never daemon crashes.
    for (body, expected) in [
        ("{", "(body)"),
        ("{\"kind\":\"generate\"}", "env"),
        ("{\"kind\":\"generate\",\"env\":\"web\",\"nope\":1}", "nope"),
        (
            "{\"kind\":\"simulate\",\"input\":\"/no/such/file\"}",
            "input",
        ),
    ] {
        let r = daemon.post("/jobs", body);
        assert_eq!(r.status, 400, "hostile body `{body}` got {}", r.status);
        assert!(
            r.body.contains(expected),
            "rejection for `{body}` does not mention `{expected}`: {}",
            r.body
        );
    }

    // A matrix job whose fault plan panics the first task: the panic is
    // quarantined inside the child, the job ends failed, and the
    // daemon keeps serving.
    if experiments_bin().is_some() {
        let r = daemon.post(
            "/jobs",
            "{\"kind\":\"matrix\",\"quick\":true,\"ids\":[\"t1\"],\"faults\":\"panic@0\"}",
        );
        assert_eq!(r.status, 201, "matrix submit: {}", r.body);
        let id = json::parse(r.body.trim())
            .expect("matrix accept is JSON")
            .get("id")
            .and_then(Json::as_str)
            .expect("matrix accept has id")
            .to_owned();
        let doc = daemon.wait_state(&id, "failed");
        assert!(
            doc.get("error").and_then(Json::as_str).is_some(),
            "failed job reports an error: {doc}"
        );
    } else {
        eprintln!("skipping matrix fault job: no experiments binary next to spindle");
    }

    assert_eq!(daemon.get("/healthz").status, 200);
    let id = daemon.submit(&generate_spec(5, 1));
    daemon.wait_state(&id, "done");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delete_racing_completion_resolves_to_exactly_one_terminal_state() {
    let dir = fresh_dir("delrace");
    let daemon = Daemon::boot(&["--parallel", "2", "--dir", dir.to_str().unwrap()]);
    let terminal = [
        "done",
        "failed",
        "cancelled",
        "timed_out",
        "stalled",
        "quarantined",
    ];
    for i in 0..10u64 {
        let id = daemon.submit(&generate_spec(5, 200 + i));
        // Vary the race window from "still queued" to "surely done" so
        // the DELETE lands on every side of the finish line.
        std::thread::sleep(Duration::from_millis(i * 15));
        let r = daemon.delete(&format!("/jobs/{id}"));
        assert!(
            [200, 202, 409].contains(&r.status),
            "iteration {i}: DELETE got {}: {}",
            r.status,
            r.body
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        let state = loop {
            let g = daemon.get(&format!("/jobs/{id}"));
            assert_eq!(g.status, 200, "iteration {i}: job vanished");
            let doc = json::parse(g.body.trim()).expect("job detail is JSON");
            let now = doc
                .get("state")
                .and_then(Json::as_str)
                .expect("job has a state")
                .to_owned();
            if terminal.contains(&now.as_str()) {
                break now;
            }
            assert!(
                Instant::now() < deadline,
                "iteration {i}: job stuck in `{now}` after DELETE"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        // Exactly one clean outcome: the cancel won or the job did.
        assert!(
            ["done", "cancelled"].contains(&state.as_str()),
            "iteration {i}: job ended `{state}`"
        );
        // A 409 means the job beat the cancel to a terminal state.
        if r.status == 409 {
            assert_eq!(state, "done", "iteration {i}: 409 implies completion");
        }
        // A completed job's artifact survived the racing cancel.
        if state == "done" {
            let a = daemon.get(&format!("/jobs/{id}/artifacts/stdout.txt"));
            assert_eq!(a.status, 200, "iteration {i}: done job lost its artifact");
            assert!(!a.body.is_empty(), "iteration {i}: artifact is empty");
        }
        // The outcome is stable: a second DELETE is a clean 409 that
        // names the state and never flips it (no double-kill path).
        let again = daemon.delete(&format!("/jobs/{id}"));
        assert_eq!(again.status, 409, "iteration {i}: {}", again.body);
        assert!(
            again.body.contains(&state),
            "iteration {i}: 409 names the state: {}",
            again.body
        );
        let g = daemon.get(&format!("/jobs/{id}"));
        let doc = json::parse(g.body.trim()).expect("job detail is JSON");
        assert_eq!(
            doc.get("state").and_then(Json::as_str),
            Some(state.as_str()),
            "iteration {i}: state flipped after second DELETE"
        );
    }
    assert_eq!(daemon.get("/healthz").status, 200);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_and_retries_supervise_real_child_processes() {
    let dir = fresh_dir("supervise");
    let daemon = Daemon::boot(&[
        "--parallel",
        "1",
        "--dir",
        dir.to_str().unwrap(),
        "--max-retries",
        "2",
        "--retry-base-ms",
        "50",
    ]);

    // A week-long generate against a 1-second spec deadline: the
    // watchdog kills the real child and the job lands timed_out.
    let r = daemon.post(
        "/jobs",
        "{\"kind\":\"generate\",\"env\":\"web\",\"span\":604800,\"seed\":3,\"deadline_secs\":1}",
    );
    assert_eq!(r.status, 201, "{}", r.body);
    let id = json::parse(r.body.trim())
        .expect("accept body is JSON")
        .get("id")
        .and_then(Json::as_str)
        .expect("accept body has id")
        .to_owned();
    let doc = daemon.wait_state(&id, "timed_out");
    assert!(
        doc.get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("deadline of 1s exceeded")),
        "timed_out job explains itself: {doc}"
    );

    // A matrix job whose fault plan SIGKILLs the child after its first
    // journal record: the retry resumes past the completed record (the
    // kill site never re-fires) and the job completes.
    if experiments_bin().is_some() {
        let r = daemon.post(
            "/jobs",
            "{\"kind\":\"matrix\",\"quick\":true,\"ids\":[\"t1\"],\"faults\":\"kill@0\"}",
        );
        assert_eq!(r.status, 201, "matrix submit: {}", r.body);
        let id = json::parse(r.body.trim())
            .expect("matrix accept is JSON")
            .get("id")
            .and_then(Json::as_str)
            .expect("matrix accept has id")
            .to_owned();
        let doc = daemon.wait_state(&id, "done");
        assert!(
            doc.get("attempt").and_then(Json::as_u64).unwrap_or(0) >= 1,
            "retried job records its attempt ordinal: {doc}"
        );
        let metrics = daemon.get("/metrics");
        assert!(
            metrics.body.contains("serve_jobs_retried"),
            "retry counter registered"
        );
    } else {
        eprintln!("skipping matrix retry job: no experiments binary next to spindle");
    }

    assert_eq!(daemon.get("/healthz").status, 200);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadtest_with_a_hundred_clients_never_panics_the_daemon() {
    let dir = fresh_dir("loadtest");
    let mut daemon = Daemon::boot(&[
        "--queue-bound",
        "32",
        "--parallel",
        "4",
        "--dir",
        dir.to_str().unwrap(),
    ]);

    let mut config = spindle_serve::loadtest::LoadConfig::new(&format!("http://{}", daemon.addr));
    config.clients = 100;
    config.jobs = 150;
    config.span_secs = 1;
    let report = spindle_serve::loadtest::run(&config).expect("loadtest runs");

    assert_eq!(report.errors, 0, "no transport errors or bad statuses");
    assert_eq!(report.accepted + report.rejected, 150);
    assert!(report.accepted > 0, "some submissions must land");
    assert!(report.drained, "accepted jobs drain to terminal states");
    assert_eq!(report.failed, 0, "accepted jobs all succeed");
    assert_eq!(daemon.get("/healthz").status, 200);
    assert!(
        daemon.child.try_wait().expect("probe daemon").is_none(),
        "daemon survived the load"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
