//! Cross-scale consistency: the same workload viewed at the
//! millisecond, hour, and lifetime granularities must tell one
//! consistent story.

use spindle_core::multiscale::{rw_shares_hour, rw_shares_lifetime, rw_shares_ms};
use spindle_stats::timeseries::{aggregate_sum, counts_per_interval};
use spindle_synth::family::FamilySpec;
use spindle_synth::hourgen::{HourSeriesSpec, WEEK_HOURS};
use spindle_synth::presets::Environment;
use spindle_trace::lifetime::accumulate_lifetime;
use spindle_trace::{HourRecord, HourSeries, OpKind};

/// Builds an hour series directly from a millisecond trace — the bridge
/// between the two finest granularities.
fn hours_from_requests(requests: &[spindle_trace::Request], span_secs: f64) -> HourSeries {
    let hours = (span_secs / 3600.0).ceil() as u32;
    let drive = requests[0].drive;
    let records: Vec<HourRecord> = (0..hours.max(2))
        .map(|h| {
            let lo = h as u64 * 3_600_000_000_000;
            let hi = lo + 3_600_000_000_000;
            let mut reads = 0;
            let mut writes = 0;
            let mut sr = 0;
            let mut sw = 0;
            for r in requests
                .iter()
                .filter(|r| r.arrival_ns >= lo && r.arrival_ns < hi)
            {
                match r.op {
                    OpKind::Read => {
                        reads += 1;
                        sr += r.sectors as u64;
                    }
                    OpKind::Write => {
                        writes += 1;
                        sw += r.sectors as u64;
                    }
                }
            }
            HourRecord::new(drive, h, reads, writes, sr, sw, 0.0).unwrap()
        })
        .collect();
    HourSeries::new(records).unwrap()
}

#[test]
fn rw_shares_agree_when_scales_derive_from_one_trace() {
    let span = 7_200.0;
    let requests = Environment::Mail.spec(span).generate(11).unwrap();
    let hour_series = hours_from_requests(&requests, span);
    let lifetime = accumulate_lifetime(hour_series.records()).unwrap();

    let ms = rw_shares_ms(&requests).unwrap();
    let hr = rw_shares_hour(&hour_series).unwrap();
    let lt = rw_shares_lifetime(&[lifetime]).unwrap();

    // Derived from the same events: shares must agree exactly.
    assert!((ms.write_ops_share - hr.write_ops_share).abs() < 1e-12);
    assert!((hr.write_ops_share - lt.write_ops_share).abs() < 1e-12);
    assert!((ms.write_bytes_share - lt.write_bytes_share).abs() < 1e-12);
}

#[test]
fn event_counts_aggregate_consistently_across_scales() {
    let span = 4_096.0;
    let requests = Environment::Web.spec(span).generate(12).unwrap();
    let events: Vec<f64> = requests.iter().map(|r| r.arrival_secs()).collect();

    let per_second = counts_per_interval(&events, 0.0, span, 1.0).unwrap();
    let per_minute_direct = counts_per_interval(&events, 0.0, span, 64.0).unwrap();
    let per_minute_agg = aggregate_sum(&per_second, 64);

    assert_eq!(per_minute_direct.len(), per_minute_agg.len());
    for (a, b) in per_minute_direct.iter().zip(&per_minute_agg) {
        assert!((a - b).abs() < 1e-9, "direct {a} vs aggregated {b}");
    }
    let total: f64 = per_second.iter().sum();
    assert_eq!(total as usize, events.len());
}

#[test]
fn lifetime_accumulation_matches_hour_totals_for_the_family() {
    let family = FamilySpec {
        drives: 25,
        template: HourSeriesSpec {
            hours: WEEK_HOURS,
            ..Default::default()
        },
        ..Default::default()
    }
    .generate(13)
    .unwrap();
    for d in &family {
        assert_eq!(
            d.lifetime.operations(),
            d.series.total_operations(),
            "drive {}",
            d.lifetime.drive
        );
        let busy_hours: f64 = d
            .series
            .records()
            .iter()
            .map(|r| r.busy_secs / 3600.0)
            .sum();
        assert!((d.lifetime.busy_hours - busy_hours).abs() < 1e-6);
        assert!((d.lifetime.mean_utilization() - d.series.mean_utilization()).abs() < 1e-9);
    }
}

#[test]
fn hour_scale_burstiness_survives_aggregation_from_ms_scale() {
    // A bursty ms-level trace remains over-dispersed when viewed as
    // minute-level counts — burstiness across scales, measured across
    // an actual change of representation.
    let span = 4_096.0;
    let requests = Environment::Dev.spec(span).generate(14).unwrap();
    let events: Vec<f64> = requests.iter().map(|r| r.arrival_secs()).collect();
    let per_second = counts_per_interval(&events, 0.0, span, 1.0).unwrap();
    let per_minute = aggregate_sum(&per_second, 64);
    let idc_s = spindle_stats::dispersion::index_of_dispersion(&per_second).unwrap();
    let idc_m = spindle_stats::dispersion::index_of_dispersion(&per_minute).unwrap();
    assert!(idc_s > 1.5, "second-scale IDC {idc_s}");
    assert!(idc_m > idc_s, "minute-scale IDC {idc_m} did not grow");
}
