//! End-to-end integration: synthesize → simulate → characterize, and
//! assert the paper's qualitative claims hold for every environment.

use spindle_core::burstiness::BurstinessAnalysis;
use spindle_core::idle::IdleAnalysis;
use spindle_core::millisecond::MillisecondAnalysis;
use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig, SimResult};
use spindle_synth::presets::Environment;
use spindle_trace::Request;

const SPAN: f64 = 1_800.0;

fn run_env(env: Environment, seed: u64) -> (Vec<Request>, SimResult) {
    let requests = env.spec(SPAN).generate(seed).expect("generation succeeds");
    let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
    let result = sim.run(&requests).expect("simulation succeeds");
    (requests, result)
}

#[test]
fn moderate_utilization_in_every_environment() {
    // Paper claim 1: disk drives operate at moderate utilization.
    for env in Environment::all() {
        let (_, result) = run_env(env, 1);
        let util = result.utilization();
        assert!(
            util > 0.0 && util < 0.35,
            "{env}: utilization {util} is not moderate"
        );
    }
}

#[test]
fn long_stretches_of_idleness() {
    // Paper claim 2: drives experience long stretches of idleness —
    // most idle time is concentrated in intervals of seconds or more.
    // LRD traffic makes short windows wildly variable (that variability
    // is itself one of the paper's findings), so the claim is checked
    // on the median across seeds, with a loose floor per seed.
    for env in Environment::all() {
        let mut long_idle_shares = Vec::new();
        for seed in [2, 3, 4] {
            let (_, result) = run_env(env, seed);
            let idle = IdleAnalysis::new(&result.busy).expect("busy log is analyzable");
            assert!(
                idle.idle_fraction() > 0.6,
                "{env}: idle {}",
                idle.idle_fraction()
            );
            let share = idle.availability(&[1.0])[0].fraction_of_idle_time;
            assert!(
                share > 0.05,
                "{env} seed {seed}: only {share} of idle time in >=1s intervals"
            );
            long_idle_shares.push(share);
        }
        long_idle_shares.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = long_idle_shares[1];
        assert!(
            median > 0.35,
            "{env}: median long-idle share {median} across seeds {long_idle_shares:?}"
        );
    }
}

#[test]
fn burstiness_across_time_scales() {
    // Paper claim 3: arrivals are bursty across all evaluated scales.
    // Check the two high-rate environments (enough events for stable
    // estimates at this span).
    for env in [Environment::Mail, Environment::Web] {
        let (requests, result) = run_env(env, 3);
        let analysis = MillisecondAnalysis::new(&requests, &result).unwrap();
        let events = analysis.arrival_times_secs();
        let b = BurstinessAnalysis::new(&events, SPAN, 1.0).unwrap();
        assert!(
            b.is_bursty_across_scales().unwrap(),
            "{env}: not bursty across scales"
        );
        let summary = analysis.summary().unwrap();
        assert!(
            summary.interarrival_scv > 1.5,
            "{env}: interarrival SCV {} not bursty",
            summary.interarrival_scv
        );
    }
}

#[test]
fn disk_level_write_shares_reflect_environment() {
    let (mail_reqs, mail_result) = run_env(Environment::Mail, 4);
    let (web_reqs, web_result) = run_env(Environment::Web, 4);
    let mail = MillisecondAnalysis::new(&mail_reqs, &mail_result)
        .unwrap()
        .summary()
        .unwrap();
    let web = MillisecondAnalysis::new(&web_reqs, &web_result)
        .unwrap()
        .summary()
        .unwrap();
    assert!(mail.write_fraction > 0.5, "mail wf {}", mail.write_fraction);
    assert!(web.write_fraction < 0.5, "web wf {}", web.write_fraction);
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let (r1, s1) = run_env(Environment::Dev, 5);
    let (r2, s2) = run_env(Environment::Dev, 5);
    assert_eq!(r1, r2);
    assert_eq!(s1.completed, s2.completed);
    assert_eq!(s1.busy, s2.busy);
}

#[test]
fn every_request_is_serviced_exactly_once() {
    for env in Environment::all() {
        let (requests, result) = run_env(env, 6);
        assert_eq!(requests.len(), result.completed.len(), "{env}");
        // Completion ids cover every request (service may reorder).
        let mut seen: Vec<u64> = result
            .completed
            .iter()
            .map(|c| c.request.arrival_ns)
            .collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = requests.iter().map(|r| r.arrival_ns).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected, "{env}");
    }
}
