//! Flight-recorder determinism across worker counts.
//!
//! The trace-event exporter promises that the simulated-time tracks
//! are a pure function of the workload: recording order (and therefore
//! pool width) must not leak into the exported bytes. This is checked
//! at two levels — library (several simulators sharing one recorder
//! across a work-stealing pool) and binary (`spindle simulate
//! --trace-out` at `--jobs 1/2/8`). Wall-clock tracks honestly differ
//! run to run and are excluded from the comparison.

use spindle_disk::obs::SimObserver;
use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_engine::Pool;
use spindle_obs::json::{self, Json};
use spindle_obs::{FlightRecorder, MetricsRegistry, ObsConfig, TraceEventSink};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

/// Serialized simulated-time events of one export.
fn sim_events(trace_text: &str) -> String {
    let doc = json::parse(trace_text.trim()).expect("trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    let sim: Vec<String> = events
        .iter()
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(spindle_obs::trace_event::SIM_PID))
        .map(Json::to_string)
        .collect();
    assert!(!sim.is_empty(), "export carries simulated-time events");
    sim.join("\n")
}

/// Runs four differently-seeded simulations across a `jobs`-wide pool,
/// all recording into one shared recorder, and returns the sim-only
/// export.
fn pooled_export(jobs: usize) -> String {
    let env = spindle_synth::presets::parse_environment("mail").expect("preset exists");
    let workloads: Vec<Vec<spindle_trace::Request>> = (0..4u64)
        .map(|i| {
            env.spec(60.0)
                .generate(100 + i)
                .expect("generation succeeds")
        })
        .collect();
    let rec = Arc::new(FlightRecorder::new());
    let registry = MetricsRegistry::new();
    let completed = Pool::new(jobs).map(workloads, |_ord, requests| {
        let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        sim.attach_observer(
            SimObserver::new(&registry, &ObsConfig::enabled()).with_flight(Arc::clone(&rec)),
        );
        sim.run(&requests)
            .expect("simulation succeeds")
            .completed
            .len()
    });
    assert!(completed.iter().all(|&n| n > 0));
    TraceEventSink::sim_only()
        .export_string(&rec)
        .expect("export succeeds")
}

#[test]
fn pooled_sim_tracks_are_byte_identical_across_worker_counts() {
    let baseline = pooled_export(1);
    assert!(baseline.contains("drive.service"));
    assert!(baseline.contains("drive.events"));
    for jobs in [2, 8] {
        let export = pooled_export(jobs);
        assert_eq!(
            sim_events(&baseline),
            sim_events(&export),
            "sim-time tracks differ between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn cli_trace_export_sim_tracks_are_deterministic_across_jobs() {
    let bin = env!("CARGO_BIN_EXE_spindle");
    let dir = std::env::temp_dir().join("spindle-flight-recorder-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_in = dir.join("input.bin");
    let run = |args: &[&str]| {
        let out = Command::new(bin)
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spindle binary runs");
        assert!(
            out.status.success(),
            "spindle {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run(&[
        "generate",
        "--env=mail",
        "--span=60",
        "--seed=7",
        "--out",
        trace_in.to_str().unwrap(),
    ]);

    let mut exports = Vec::new();
    for jobs in ["1", "2", "8"] {
        let trace_out: PathBuf = dir.join(format!("trace-jobs{jobs}.json"));
        run(&[
            "simulate",
            "--in",
            trace_in.to_str().unwrap(),
            "--jobs",
            jobs,
            "--trace-out",
            trace_out.to_str().unwrap(),
        ]);
        exports.push(sim_events(&std::fs::read_to_string(&trace_out).unwrap()));
    }
    assert_eq!(exports[0], exports[1], "--jobs 1 vs --jobs 2");
    assert_eq!(exports[0], exports[2], "--jobs 1 vs --jobs 8");
    std::fs::remove_dir_all(&dir).unwrap();
}
