//! Telemetry must be an observer, never a participant: running the
//! `experiments` binary with `--serve`/`--live` enabled — which now
//! includes the multi-resolution rollup wheel and the per-request
//! latency attribution with its exemplars — has to produce
//! byte-identical stdout and byte-identical simulated-time trace
//! tracks at every `--jobs` value. Wall-clock tracks honestly differ
//! run to run and are excluded from the comparison.
//!
//! The `/timescales` endpoint must also agree with `/metrics`: the
//! exact-merge invariant means every resolution's merged histogram
//! totals equal the registry's final histograms.

use spindle_obs::frame::{Frame, FrameDecoder, SINK_ENV};
use spindle_obs::json::{self, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

/// Scratch path unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spindle-teldet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(tag)
}

/// Runs a quick two-experiment matrix with a trace export; `telemetry`
/// adds `--serve 127.0.0.1:0 --live` plus a rollup export on top.
fn run(jobs: &str, trace: &std::path::Path, telemetry: bool) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(["--quick", "--jobs", jobs, "--trace-out"])
        .arg(trace)
        .args(["t2", "f5"])
        .env_remove("SPINDLE_FAULTS")
        .env_remove(SINK_ENV)
        .env_remove(spindle_obs::context::TRACE_CONTEXT_ENV)
        .env("SPINDLE_SERVE_LINGER_MS", "0");
    if telemetry {
        cmd.args(["--serve", "127.0.0.1:0", "--live", "--timescales-out"])
            .arg(trace.with_extension("timescales.json"));
        // Causal tracing is an observer too: a minted trace context in
        // the environment must not move a single output byte either.
        cmd.env(
            spindle_obs::context::TRACE_CONTEXT_ENV,
            spindle_obs::TraceContext::mint("job-0001", 1).to_string(),
        );
    }
    let out = cmd.output().expect("run experiments binary");
    assert!(
        out.status.success(),
        "experiments --jobs {jobs} (telemetry: {telemetry}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Serialized simulated-time events of one trace export.
fn sim_events(trace: &std::path::Path) -> String {
    let text = std::fs::read_to_string(trace).expect("read trace export");
    let doc = json::parse(text.trim()).expect("trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    events
        .iter()
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(spindle_obs::trace_event::SIM_PID))
        .map(Json::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn serve_and_live_change_no_bytes_at_any_jobs_count() {
    let base_trace = scratch("base.json");
    let baseline = run("1", &base_trace, false);
    let expected_stdout = baseline.stdout;
    let expected_sim = sim_events(&base_trace);
    assert!(!expected_stdout.is_empty());
    assert!(!expected_sim.is_empty());

    for jobs in ["1", "2", "8"] {
        let trace = scratch(&format!("telemetry-{jobs}.json"));
        let out = run(jobs, &trace, true);
        assert_eq!(
            out.stdout, expected_stdout,
            "stdout differs with telemetry on at --jobs {jobs}"
        );
        assert_eq!(
            sim_events(&trace),
            expected_sim,
            "sim-time tracks differ with telemetry on at --jobs {jobs}"
        );
        // The telemetry side channel stayed on stderr.
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("# serving telemetry on http://127.0.0.1:"));
        // The rollup export is a valid multi-resolution document.
        let ts = std::fs::read_to_string(trace.with_extension("timescales.json"))
            .expect("timescales export written");
        let doc = json::parse(ts.trim()).expect("timescales export parses");
        let Some(Json::Arr(resolutions)) = doc.get("resolutions") else {
            panic!("timescales export lacks resolutions:\n{ts}");
        };
        assert!(resolutions.len() >= 2, "jobs {jobs}: {ts}");
    }

    // Plain runs at other jobs counts agree too, closing the square:
    // (telemetry × jobs) all map to one byte stream.
    for jobs in ["2", "8"] {
        let trace = scratch(&format!("plain-{jobs}.json"));
        let out = run(jobs, &trace, false);
        assert_eq!(
            out.stdout, expected_stdout,
            "stdout differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            sim_events(&trace),
            expected_sim,
            "sim-time tracks differ between --jobs 1 and --jobs {jobs}"
        );
    }
}

/// A frame sink for one child process: accepts the connection, decodes
/// every frame, and returns the kinds seen in order.
fn drain_sink(listener: TcpListener) -> std::thread::JoinHandle<Vec<&'static str>> {
    std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        let mut stream = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "child never connected"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("sink accept failed: {e}"),
            }
        };
        stream.set_nonblocking(false).expect("blocking stream");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let mut decoder = FrameDecoder::new();
        let mut kinds = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    decoder.push(&buf[..n]);
                    while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
                        kinds.push(match frame {
                            Frame::Hello { .. } => "hello",
                            Frame::Snapshot { .. } => "snapshot",
                            Frame::Windows(_) => "windows",
                            Frame::Progress { .. } => "progress",
                            Frame::Log { .. } => "log",
                            Frame::Span(_) => "span",
                            Frame::Bye { .. } => "bye",
                        });
                    }
                }
            }
        }
        kinds
    })
}

#[test]
fn frame_exporter_changes_no_bytes_at_any_jobs_count() {
    let base_trace = scratch("exp-base.json");
    let baseline = run("1", &base_trace, false);
    let expected_stdout = baseline.stdout;
    let expected_sim = sim_events(&base_trace);

    for jobs in ["1", "2", "8"] {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
        let addr = listener.local_addr().expect("sink addr").to_string();
        let sink = drain_sink(listener);
        let trace = scratch(&format!("exp-sink-{jobs}.json"));
        let mut cmd = Command::new(bin());
        cmd.args(["--quick", "--jobs", jobs, "--trace-out"])
            .arg(&trace)
            .args(["t2", "f5"])
            .env_remove("SPINDLE_FAULTS")
            .env("SPINDLE_SERVE_LINGER_MS", "0")
            .env(SINK_ENV, &addr);
        let out = cmd.output().expect("run experiments binary");
        assert!(
            out.status.success(),
            "experiments --jobs {jobs} with sink failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, expected_stdout,
            "stdout differs with the frame exporter on at --jobs {jobs}"
        );
        assert_eq!(
            sim_events(&trace),
            expected_sim,
            "sim-time tracks differ with the frame exporter on at --jobs {jobs}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !stderr.contains("telemetry export"),
            "exporter failed to reach the sink:\n{stderr}"
        );
        // The protocol actually ran: session open, at least one
        // metrics snapshot, and a clean goodbye.
        let kinds = sink.join().expect("sink thread");
        assert_eq!(kinds.first(), Some(&"hello"), "{kinds:?}");
        assert_eq!(kinds.last(), Some(&"bye"), "{kinds:?}");
        assert!(kinds.contains(&"snapshot"), "{kinds:?}");
    }
}

/// One HTTP request against a serve daemon; returns the status line
/// and the body.
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to serve daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or("").to_owned();
    (status, body.to_owned())
}

/// The `run` (lifetime) resolution of a rollup document.
fn run_resolution(rollups: &Json) -> &Json {
    let Some(Json::Arr(resolutions)) = rollups.get("resolutions") else {
        panic!("rollup document lacks resolutions: {rollups}");
    };
    resolutions
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("run"))
        .expect("run resolution present")
}

/// The stable families of one merged rollup window: `disk.*` and
/// `matrix.*` counters plus `disk.*` histogram count/sum totals.
/// Wall-clock-shaped series (spans, engine worker timings, percentile
/// estimates) honestly differ run to run and are excluded.
fn stable_totals(merged: &Json) -> Vec<(String, u64)> {
    let mut totals = Vec::new();
    if let Some(Json::Obj(counters)) = merged.get("counters") {
        for (name, v) in counters {
            if name.starts_with("disk.") || name.starts_with("matrix.") {
                totals.push((name.clone(), v.as_u64().expect("counter value")));
            }
        }
    }
    if let Some(Json::Obj(histograms)) = merged.get("histograms") {
        for (name, h) in histograms {
            if !name.starts_with("disk.") {
                continue;
            }
            let count = h.get("count").and_then(Json::as_u64).expect("count");
            let sum = h.get("sum").and_then(Json::as_u64).expect("sum");
            totals.push((format!("{name}#count"), count));
            totals.push((format!("{name}#sum"), sum));
        }
    }
    totals.sort();
    totals
}

#[test]
fn served_job_timescales_match_cli_rollup_totals() {
    // Reference: the same matrix run through the plain CLI path, with
    // --metrics attaching the simulator observers and --timescales-out
    // banking the lifetime totals.
    let reference = scratch("served-ref.timescales.json");
    let out = Command::new(bin())
        .args(["--quick", "--jobs", "2", "--metrics", "--timescales-out"])
        .arg(&reference)
        .arg("t2")
        .env_remove("SPINDLE_FAULTS")
        .env_remove(SINK_ENV)
        .env("SPINDLE_SERVE_LINGER_MS", "0")
        .output()
        .expect("run reference experiments");
    assert!(
        out.status.success(),
        "reference run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ref_doc = json::parse(
        std::fs::read_to_string(&reference)
            .expect("reference timescales written")
            .trim(),
    )
    .expect("reference timescales parses");
    let expected = stable_totals(run_resolution(&ref_doc).get("merged").expect("merged"));
    assert!(
        expected
            .iter()
            .any(|(name, v)| name.starts_with("disk.") && *v > 0),
        "reference run produced no disk totals: {expected:?}"
    );

    // Served: the identical spec as a daemon job; the child streams
    // its registry over the telemetry sink and the daemon rebuilds the
    // rollup wheel from the snapshot deltas.
    let dir = scratch("served-jobs");
    let mut config = spindle_serve::ServeConfig::new("127.0.0.1:0", &dir);
    config.experiments_bin = Some(PathBuf::from(bin()));
    let handle = spindle_serve::serve(config).expect("daemon starts");
    let addr = handle.local_addr().to_string();
    let (status, body) = http(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"kind":"matrix","quick":true,"ids":["t2"],"jobs":2}"#),
    );
    assert!(status.contains("201"), "{status}: {body}");
    let id = json::parse(&body)
        .expect("submission parses")
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_owned();

    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(&addr, "GET", &format!("/jobs/{id}"), None);
        assert!(status.contains("200"), "{status}: {body}");
        let state = json::parse(&body)
            .expect("job doc parses")
            .get("state")
            .and_then(Json::as_str)
            .expect("state")
            .to_owned();
        match state.as_str() {
            "done" => break,
            "queued" | "running" => {
                assert!(std::time::Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(100));
            }
            other => panic!("job ended {other}: {body}"),
        }
    }

    let (status, body) = http(&addr, "GET", &format!("/jobs/{id}/timescales"), None);
    assert!(status.contains("200"), "{status}: {body}");
    let doc = json::parse(&body).expect("timescales doc parses");
    assert!(
        doc.get("frames").and_then(Json::as_u64).unwrap_or(0) > 0,
        "the child never streamed a frame: {body}"
    );
    assert_eq!(
        doc.get("torn").map(Json::to_string).as_deref(),
        Some("false"),
        "{body}"
    );
    let got = stable_totals(
        run_resolution(doc.get("rollups").expect("rollups"))
            .get("merged")
            .expect("merged"),
    );
    assert_eq!(
        got, expected,
        "served lifetime totals differ from the CLI rollup export"
    );
    handle.stop();
}

/// One blocking HTTP GET against the embedded server; returns the body
/// (panics on a non-200 status).
fn get_ok(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "GET {path}: {}",
        head.lines().next().unwrap_or("")
    );
    body.to_owned()
}

/// The `NAME VALUE` sample of one un-labeled metric line in a
/// Prometheus exposition.
fn prom_value(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn timescales_scrape_agrees_with_final_metrics() {
    // --metrics turns the simulator observers on, so the run actually
    // produces the disk histograms the rollup wheel windows.
    let mut child = Command::new(bin())
        .args(["--quick", "--serve", "127.0.0.1:0", "--metrics", "t2", "f5"])
        .env_remove("SPINDLE_FAULTS")
        .env("SPINDLE_SERVE_LINGER_MS", "20000")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn experiments binary");
    let stderr = child.stderr.take().expect("stderr is piped");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    for _ in 0..100 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stderr") == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("# serving telemetry on http://") {
            addr = Some(rest.trim().to_owned());
            break;
        }
    }
    let addr = addr.expect("bind announcement on stderr");

    // Wait for the matrix to drain (the session flips /status to
    // "idle" for the linger window once the run is done), then scrape
    // both endpoints inside the linger.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = json::parse(&get_ok(&addr, "/status")).expect("status parses");
        if status.get("phase").and_then(Json::as_str) == Some("idle") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "run never finished");
        std::thread::sleep(Duration::from_millis(100));
    }
    let metrics = get_ok(&addr, "/metrics");
    let timescales = get_ok(&addr, "/timescales");
    let doc = json::parse(&timescales).expect("timescales parses as JSON");
    let rollups = doc.get("rollups").expect("rollups section");
    assert_eq!(rollups.get("axis").and_then(Json::as_str), Some("wall"));
    let Some(Json::Arr(resolutions)) = rollups.get("resolutions") else {
        panic!("resolutions missing:\n{timescales}");
    };
    assert!(resolutions.len() >= 2, "{timescales}");

    // Exact-merge cross-check: every resolution's merged histogram
    // totals equal the final /metrics exposition's, for every disk
    // histogram the run produced.
    let mut checked = 0;
    for res in resolutions {
        let name = res.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(Json::Obj(histograms)) = res.get("merged").and_then(|m| m.get("histograms"))
        else {
            panic!("merged histograms missing at {name}");
        };
        for (metric, h) in histograms {
            if !metric.starts_with("disk.") {
                continue;
            }
            let flat = metric.replace('.', "_");
            let count = h.get("count").and_then(Json::as_u64).unwrap();
            let sum = h.get("sum").and_then(Json::as_u64).unwrap();
            assert_eq!(
                prom_value(&metrics, &format!("{flat}_count")),
                Some(count),
                "{metric} count mismatch at resolution {name}"
            );
            assert_eq!(
                prom_value(&metrics, &format!("{flat}_sum")),
                Some(sum),
                "{metric} sum mismatch at resolution {name}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "no disk histograms to cross-check:\n{timescales}"
    );

    child.kill().ok();
    child.wait().expect("reap experiments");
}
