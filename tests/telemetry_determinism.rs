//! Telemetry must be an observer, never a participant: running the
//! `experiments` binary with `--serve`/`--live` enabled has to produce
//! byte-identical stdout and byte-identical simulated-time trace
//! tracks at every `--jobs` value. Wall-clock tracks honestly differ
//! run to run and are excluded from the comparison.

use spindle_obs::json::{self, Json};
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

/// Scratch path unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spindle-teldet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(tag)
}

/// Runs a quick two-experiment matrix with a trace export; `telemetry`
/// adds `--serve 127.0.0.1:0 --live` on top.
fn run(jobs: &str, trace: &std::path::Path, telemetry: bool) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(["--quick", "--jobs", jobs, "--trace-out"])
        .arg(trace)
        .args(["t2", "f5"])
        .env_remove("SPINDLE_FAULTS")
        .env("SPINDLE_SERVE_LINGER_MS", "0");
    if telemetry {
        cmd.args(["--serve", "127.0.0.1:0", "--live"]);
    }
    let out = cmd.output().expect("run experiments binary");
    assert!(
        out.status.success(),
        "experiments --jobs {jobs} (telemetry: {telemetry}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Serialized simulated-time events of one trace export.
fn sim_events(trace: &std::path::Path) -> String {
    let text = std::fs::read_to_string(trace).expect("read trace export");
    let doc = json::parse(text.trim()).expect("trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    events
        .iter()
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(spindle_obs::trace_event::SIM_PID))
        .map(Json::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn serve_and_live_change_no_bytes_at_any_jobs_count() {
    let base_trace = scratch("base.json");
    let baseline = run("1", &base_trace, false);
    let expected_stdout = baseline.stdout;
    let expected_sim = sim_events(&base_trace);
    assert!(!expected_stdout.is_empty());
    assert!(!expected_sim.is_empty());

    for jobs in ["1", "2", "8"] {
        let trace = scratch(&format!("telemetry-{jobs}.json"));
        let out = run(jobs, &trace, true);
        assert_eq!(
            out.stdout, expected_stdout,
            "stdout differs with telemetry on at --jobs {jobs}"
        );
        assert_eq!(
            sim_events(&trace),
            expected_sim,
            "sim-time tracks differ with telemetry on at --jobs {jobs}"
        );
        // The telemetry side channel stayed on stderr.
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("# serving telemetry on http://127.0.0.1:"));
    }

    // Plain runs at other jobs counts agree too, closing the square:
    // (telemetry × jobs) all map to one byte stream.
    for jobs in ["2", "8"] {
        let trace = scratch(&format!("plain-{jobs}.json"));
        let out = run(jobs, &trace, false);
        assert_eq!(
            out.stdout, expected_stdout,
            "stdout differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            sim_events(&trace),
            expected_sim,
            "sim-time tracks differ between --jobs 1 and --jobs {jobs}"
        );
    }
}
