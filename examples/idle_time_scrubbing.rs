//! Idle-time engineering: can a background media scrub finish inside the
//! idle periods the workload leaves behind?
//!
//! This is the downstream use-case the paper's idleness analysis
//! motivates: background tasks (scrubbing, rebuilds, power management)
//! live entirely inside idle intervals, and only intervals longer than
//! the task's setup cost are usable. The example measures, for each
//! environment, the scrub throughput available from qualifying idle
//! intervals and how long a full-disk scrub would take.
//!
//! ```text
//! cargo run --release --example idle_time_scrubbing
//! ```

use spindle_core::idle::IdleAnalysis;
use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_synth::presets::Environment;

/// Idle time the drive waits before starting background work, plus the
/// time to re-park when a request arrives (seconds).
const SETUP_SECS: f64 = 0.5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DriveProfile::cheetah_15k();
    let capacity_bytes = profile.geometry()?.capacity_bytes() as f64;
    // Scrubbing reads sequentially at (approximately) the media rate.
    let scrub_rate = profile.peak_media_rate()? * 0.8;
    let span = 3_600.0;

    println!(
        "drive: {} ({:.0} GB, scrub rate {:.0} MB/s, setup cost {SETUP_SECS} s)\n",
        profile.name,
        capacity_bytes / 1e9,
        scrub_rate / 1e6
    );

    for env in Environment::all() {
        let requests = env.spec(span).generate(99)?;
        let mut sim = DiskSim::new(profile.clone(), SimConfig::default());
        let result = sim.run(&requests)?;
        let idle = IdleAnalysis::new(&result.busy)?;

        // Usable scrub seconds: for every idle interval longer than the
        // setup cost, everything past the setup is scrub time.
        let usable_secs: f64 = idle
            .idle_durations()
            .iter()
            .filter(|&&d| d > SETUP_SECS)
            .map(|&d| d - SETUP_SECS)
            .sum();
        let observed = result.busy.span_ns() as f64 / 1e9;
        let scrub_bytes_per_hour = usable_secs / observed * 3600.0 * scrub_rate;
        let full_scrub_hours = capacity_bytes / scrub_bytes_per_hour;

        println!("{:>8}:", env.name());
        println!(
            "  idle {:>5.1}% of the hour, {:>6.1} s usable for scrubbing",
            idle.idle_fraction() * 100.0,
            usable_secs
        );
        println!(
            "  scrub budget {:>6.1} GB/hour -> full-disk scrub in {:>6.1} hours",
            scrub_bytes_per_hour / 1e9,
            full_scrub_hours
        );
    }

    println!(
        "\n(The archive profile leaves the most idle time per interval; the\n\
         mail profile fragments it, so setup cost matters most there.)"
    );
    Ok(())
}
