//! Fleet view: generate a drive family and reproduce the lifetime-scale
//! findings — wide cross-drive variability with a saturated
//! sub-population.
//!
//! ```text
//! cargo run --release --example drive_family_lifetime
//! ```

use spindle_core::lifetime::{saturation_curve, FamilyAnalysis};
use spindle_core::multiscale::rw_shares_lifetime;
use spindle_synth::family::FamilySpec;
use spindle_synth::hourgen::{HourSeriesSpec, WEEK_HOURS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = FamilySpec {
        drives: 300,
        template: HourSeriesSpec {
            hours: 4 * WEEK_HOURS,
            ..Default::default()
        },
        ..Default::default()
    };
    let family = spec.generate(2009)?;
    let lifetimes: Vec<_> = family.iter().map(|d| d.lifetime).collect();
    let analysis = FamilyAnalysis::new(&lifetimes)?;

    println!(
        "family of {} drives, 4 weeks of deployment\n",
        analysis.drives()
    );
    println!("lifetime utilization percentiles:");
    for p in analysis.percentiles()? {
        println!(
            "  p{:<4.0} util {:>7.4}   {:>9.1} MB/h   {:>9.0} ops/h",
            p.level * 100.0,
            p.utilization,
            p.mb_per_hour,
            p.ops_per_hour
        );
    }
    println!(
        "\np95/p50 utilization ratio: {:.1}x (cross-drive variability)",
        analysis.tail_to_median_ratio()?
    );
    if let Some(wf) = analysis.mean_write_fraction() {
        println!("mean lifetime write fraction: {:.2}", wf);
    }
    let shares = rw_shares_lifetime(&lifetimes)?;
    println!(
        "family-wide write share: {:.2} of ops, {:.2} of bytes",
        shares.write_ops_share, shares.write_bytes_share
    );

    println!("\nfraction of drives with >= k consecutive saturated hours:");
    let series: Vec<_> = family.iter().map(|d| d.series.clone()).collect();
    for p in saturation_curve(&series, 0.99, 24)? {
        if [1, 2, 4, 8, 12, 24].contains(&p.run_hours) {
            println!(
                "  k = {:>2} h : {:>5.1}%",
                p.run_hours,
                p.fraction_of_drives * 100.0
            );
        }
    }

    // Identify the busiest and quietest drives.
    let mut by_util = lifetimes.clone();
    by_util.sort_by(|a, b| {
        a.mean_utilization()
            .partial_cmp(&b.mean_utilization())
            .expect("utilization is finite")
    });
    let quiet = by_util.first().expect("non-empty family");
    let busy = by_util.last().expect("non-empty family");
    println!(
        "\nquietest drive {}: {:.4} utilization, {:.0} ops/h",
        quiet.drive,
        quiet.mean_utilization(),
        quiet.ops_per_hour()
    );
    println!(
        "busiest  drive {}: {:.4} utilization, {:.0} ops/h",
        busy.drive,
        busy.mean_utilization(),
        busy.ops_per_hour()
    );
    Ok(())
}
