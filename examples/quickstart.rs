//! Quickstart: generate a synthetic disk workload, run it through the
//! drive simulator, and characterize it — the whole pipeline in ~40
//! lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spindle_core::idle::{IdleAnalysis, AVAILABILITY_THRESHOLDS};
use spindle_core::millisecond::MillisecondAnalysis;
use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_synth::presets::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize 10 minutes of e-mail-server disk traffic.
    let spec = Environment::Mail.spec(600.0);
    let requests = spec.generate(42)?;
    println!("generated {} requests", requests.len());

    // 2. Replay them against a 15k RPM enterprise drive model.
    let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
    let result = sim.run(&requests)?;

    // 3. Characterize.
    let analysis = MillisecondAnalysis::new(&requests, &result)?;
    let s = analysis.summary()?;
    println!(
        "rate {:.1} req/s | {:.0}% writes | utilization {:.1}% | mean response {:.2} ms",
        s.arrival_rate,
        s.write_fraction * 100.0,
        s.mean_utilization * 100.0,
        s.mean_response_ms,
    );

    let idle = IdleAnalysis::new(&result.busy)?;
    println!(
        "idle {:.1}% of the time across {} intervals (mean {:.2} s)",
        idle.idle_fraction() * 100.0,
        idle.idle_intervals(),
        idle.mean_idle_secs().unwrap_or(0.0),
    );
    for row in idle.availability(&AVAILABILITY_THRESHOLDS) {
        println!(
            "  {:>6.2} s+ intervals hold {:>5.1}% of idle time",
            row.threshold_secs,
            row.fraction_of_idle_time * 100.0
        );
    }
    Ok(())
}
