//! A day in the life of a mail-server disk: diurnal utilization,
//! burstiness across scales, and the read/write mix drift.
//!
//! Reproduces the millisecond-scale portion of the evaluation on a
//! single environment, with terminal sparklines.
//!
//! ```text
//! cargo run --release --example mail_server_day
//! ```

use spindle_core::burstiness::BurstinessAnalysis;
use spindle_core::millisecond::MillisecondAnalysis;
use spindle_core::report::Figure;
use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_synth::presets::Environment;
use spindle_trace::OpKind;

const SPAN: f64 = 21_600.0; // six hours keeps the debug-build runtime low

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Environment::Mail.spec(SPAN);
    let requests = spec.generate(7)?;
    let mut sim = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
    let result = sim.run(&requests)?;
    let analysis = MillisecondAnalysis::new(&requests, &result)?;

    // Utilization per minute, rendered as a figure with a sparkline.
    let util = analysis.utilization_series(60.0)?;
    let mut fig = Figure::new("utilization over the day", "minute", "utilization");
    fig.push_series(
        "mail",
        util.iter()
            .enumerate()
            .map(|(i, &u)| (i as f64, u))
            .collect(),
    );
    // Print only the header + sparkline lines, not the full dump.
    let rendered = fig.to_string();
    for line in rendered.lines().take(3) {
        println!("{line}");
    }

    // Burstiness of the arrival process.
    let events = analysis.arrival_times_secs();
    let b = BurstinessAnalysis::new(&events, SPAN, 1.0)?;
    let h = b.hurst()?;
    println!(
        "\nHurst estimates: R/S {:.2}, aggregated-variance {:.2}, periodogram {:.2}",
        h.rs, h.aggregated_variance, h.periodogram
    );
    println!("bursty across scales: {}", b.is_bursty_across_scales()?);
    println!("\nIDC across aggregation scales:");
    for p in b.idc_curve()? {
        println!("  scale {:>5} s : IDC {:>10.1}", p.scale, p.idc);
    }

    // Read/write mix drift over the day (hourly windows).
    println!("\nhourly write share:");
    for hour in 0..(SPAN as usize / 3600) {
        let lo = hour as u64 * 3_600_000_000_000;
        let hi = lo + 3_600_000_000_000;
        let window: Vec<_> = requests
            .iter()
            .filter(|r| r.arrival_ns >= lo && r.arrival_ns < hi)
            .collect();
        if window.is_empty() {
            println!("  hour {hour:>2}: idle");
            continue;
        }
        let writes = window.iter().filter(|r| r.op == OpKind::Write).count();
        println!(
            "  hour {hour:>2}: {:>5.1}% of {:>6} requests",
            writes as f64 / window.len() as f64 * 100.0,
            window.len()
        );
    }
    Ok(())
}
