//! Array view: stripe one volume's workload over a small disk array and
//! compare utilization, balance, and response time against a single
//! drive — the controller-level perspective on the same traffic the
//! paper characterizes per drive.
//!
//! ```text
//! cargo run --release --example striped_array
//! ```

use spindle_disk::array::{ArraySim, StripedVolume};
use spindle_disk::profile::DriveProfile;
use spindle_disk::sim::{DiskSim, SimConfig};
use spindle_synth::presets::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One busy volume: mail traffic at 4× the usual intensity, as a
    // consolidated server would see it.
    let mut spec = Environment::Mail.spec(900.0);
    if let spindle_synth::arrival::ArrivalModel::Gated { inner, .. } = &mut spec.arrival {
        if let spindle_synth::arrival::ArrivalModel::FgnRate { mean_rate, .. } = inner.as_mut() {
            *mean_rate *= 4.0;
        }
    }
    let volume_requests = spec.generate(11)?;
    println!(
        "volume workload: {} requests over 15 minutes\n",
        volume_requests.len()
    );

    // Baseline: everything on one drive.
    let mut single = DiskSim::new(DriveProfile::cheetah_15k(), SimConfig::default());
    let solo = single.run(&volume_requests)?;
    println!(
        "single drive : util {:>5.1}%  mean response {:>6.2} ms",
        solo.utilization() * 100.0,
        solo.mean_response_ms()
    );

    // Striped over 2, 4, and 8 drives with 128 KiB chunks.
    for drives in [2u32, 4, 8] {
        let volume = StripedVolume::new(drives, 256)?;
        let array = ArraySim::new(DriveProfile::cheetah_15k(), SimConfig::default());
        let result = array.run_striped(&volume_requests, volume)?;
        let imbalance = result
            .utilization_imbalance()
            .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.2}x"));
        println!(
            "{drives} drives      : mean util {:>5.1}%  imbalance {imbalance:>6}  mean response {:>6.2} ms",
            result.mean_utilization() * 100.0,
            result.mean_response_ms()
        );
        for d in &result.drives {
            println!(
                "    {}: {:>6} requests, util {:>5.1}%",
                d.drive,
                d.requests,
                d.result.utilization() * 100.0
            );
        }
    }
    println!(
        "\nStriping divides the same traffic across spindles: per-drive\n\
         utilization drops roughly linearly while queueing delay shrinks."
    );
    Ok(())
}
