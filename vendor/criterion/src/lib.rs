//! Offline stand-in for `criterion` 0.5 (see `vendor/README.md`).
//!
//! Keeps `cargo bench` working without the crates.io dependency: each
//! benchmark runs a short warm-up, then a fixed number of timed
//! iterations, and prints the mean wall-clock time per iteration. No
//! statistical analysis, outlier detection, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: one untimed iteration.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(body());
        }
        self.mean = Some(start.elapsed() / self.sample_size as u32);
    }
}

fn report(id: &str, throughput: Option<&Throughput>, mean: Option<Duration>) {
    match mean {
        Some(mean) => {
            let per_elem = throughput.and_then(|t| match t {
                Throughput::Elements(n) if *n > 0 => Some(format!(
                    " ({:.1} Melem/s)",
                    *n as f64 / mean.as_secs_f64() / 1e6
                )),
                _ => None,
            });
            println!(
                "bench: {id:<50} {:>12.3?}/iter{}",
                mean,
                per_elem.unwrap_or_default()
            );
        }
        None => println!("bench: {id:<50} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: None,
        };
        f(&mut b);
        report(id, None, b.mean);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: None,
        };
        f(&mut b);
        report(
            &format!("{}/{id}", self.name),
            self.throughput.as_ref(),
            b.mean,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: None,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.0),
            self.throughput.as_ref(),
            b.mean,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(10));
        group.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("sptf").0, "sptf");
    }
}
