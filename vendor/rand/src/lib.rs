//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the subset of the `rand` API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic across platforms and thread
//! counts. It is deliberately **not** bit-compatible with upstream
//! `rand`'s ChaCha12-based `StdRng`; all expected outputs in this
//! repository were regenerated against this generator.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; kept for
    /// signature compatibility).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (the only
    /// constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can produce uniform samples of `T`, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); the
/// tiny modulo bias of the plain multiply is removed by rejection.
fn uniform_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(span, rng) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(span + 1, rng) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(span + 1, rng) as $t)
            }
        }
    )*};
}

impl_signed_ranges!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end {
                    <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full uniform range
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]` (matching upstream).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng`; see the
    /// crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_honor_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn every_value_of_a_small_range_appears() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
