//! Offline stand-in for `serde` 1 (see `vendor/README.md`).
//!
//! Marker traits plus no-op derive macros. Nothing in this workspace
//! actually serializes through serde, so the traits carry no methods;
//! the derive annotations on the trace record types remain valid and
//! documenting.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
