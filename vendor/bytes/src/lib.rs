//! Offline stand-in for `bytes` 1 (see `vendor/README.md`).
//!
//! Provides the [`Buf`]/[`BufMut`] accessor subset the binary trace
//! codec uses: little-endian integer get/put on `&[u8]` and `Vec<u8>`.

/// Read-side cursor over a byte source, advancing as values are read.
///
/// # Panics
///
/// All accessors panic when fewer bytes remain than requested, matching
/// upstream `bytes` semantics; the codec checks lengths before reading.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side sink for bytes and little-endian integers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
