//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use rand::Rng;

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Object-safe sampling, used to erase strategy types in
/// [`prop_oneof!`](crate::prop_oneof).
pub trait AnyStrategy<V> {
    /// Draws one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> AnyStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice among erased strategies of one value type.
pub struct Union<V> {
    branches: Vec<Box<dyn AnyStrategy<V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} branches)", self.branches.len())
    }
}

impl<V> Union<V> {
    /// A union over `branches` (must be non-empty).
    pub fn new(branches: Vec<Box<dyn AnyStrategy<V>>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.branches.len());
        self.branches[idx].sample_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_tuples_map_and_just_compose() {
        let mut rng = test_rng("compose");
        let strat = (1u32..5, (0.0f64..1.0).prop_map(|x| x * 10.0), Just(7u8));
        for _ in 0..200 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..10.0).contains(&b));
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut rng = test_rng("union");
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
