//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// A length specification for [`vec`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = test_rng("vec");
        let strat = vec(0u8..10, 2..5);
        let mut lens = [0usize; 6];
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            lens[v.len()] += 1;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(lens[2] > 0 && lens[3] > 0 && lens[4] > 0);

        let fixed = vec(0u8..10, 3usize);
        assert_eq!(fixed.sample(&mut rng).len(), 3);
    }
}
