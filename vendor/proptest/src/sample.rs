//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Strategy choosing uniformly among the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn select_covers_all_options() {
        let mut rng = test_rng("select");
        let strat = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
