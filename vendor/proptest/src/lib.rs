//! Offline stand-in for `proptest` 1 (see `vendor/README.md`).
//!
//! Implements the property-testing surface this workspace uses:
//! the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map`, range / tuple / [`collection::vec`] / [`sample::select`]
//! / [`bool::ANY`] / [`prop_oneof!`] / [`strategy::Just`] strategies,
//! the `prop_assert*!` / [`prop_assume!`] macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted: sampling is
//! deterministic (the per-test RNG is seeded from the test's name, so
//! failures reproduce exactly), there is no shrinking, and rejected
//! cases ([`prop_assume!`]) simply don't count toward the case budget.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Modules re-exported under `prop::` by the prelude.
pub mod collection;
pub mod sample;

#[allow(clippy::module_inception)]
pub mod bool {
    //! Boolean strategies.

    /// Strategy producing both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random booleans.
    pub const ANY: AnyBool = AnyBool;

    impl crate::strategy::Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rand::Rng::gen(rng)
        }
    }
}

/// The RNG handed to strategies (the workspace's deterministic
/// generator).
pub type TestRng = StdRng;

/// Marker returned by [`prop_assume!`] when a sampled case does not
/// satisfy the property's precondition.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for one property, seeded from the
/// test's name so every run (and every platform) replays the same
/// cases.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };

    /// The `prop::` module hierarchy (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $test_name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $test_name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(stringify!($test_name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $parm =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::Rejected> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest {}: every sampled case was rejected by prop_assume!",
                    stringify!($test_name)
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a property; failure panics with the
/// condition (and optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!("proptest assertion failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "proptest assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "proptest assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            );
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "proptest assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::AnyStrategy<_>>),+
        ])
    };
}
