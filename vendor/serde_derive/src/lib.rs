//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in (see `vendor/README.md`).
//!
//! Nothing in this workspace serializes through serde; the derives
//! exist so record types keep their `#[derive(Serialize, Deserialize)]`
//! annotations (documenting intent and preserving source compatibility
//! with the real crate) without pulling a network dependency.

use proc_macro::TokenStream;

/// Accepts the input and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
